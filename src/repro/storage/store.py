"""In-memory column store over many tables.

§5.2.2 of the paper motivates holding warehouse extracts in an in-memory
column store: join-discovery access patterns are column-oriented.  The store
provides per-column access by :class:`ColumnRef`, registration/eviction, and
aggregate memory accounting.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ColumnNotFoundError, TableNotFoundError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table

__all__ = ["ColumnStore"]


class ColumnStore:
    """A registry of tables with column-granular access.

    Tables are keyed by ``(database, table_name)``; an empty database name is
    valid for flat corpora.
    """

    def __init__(self) -> None:
        self._tables: dict[tuple[str, str], Table] = {}

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._tables

    def add_table(self, table: Table, *, database: str = "") -> None:
        """Register (or replace) a table under ``database``."""
        self._tables[(database, table.name)] = table

    def remove_table(self, name: str, *, database: str = "") -> None:
        """Evict a table; raises :class:`TableNotFoundError` if absent."""
        try:
            del self._tables[(database, name)]
        except KeyError:
            raise TableNotFoundError(name, database or None) from None

    def table(self, name: str, *, database: str = "") -> Table:
        """Look up a table; raises :class:`TableNotFoundError` if absent."""
        try:
            return self._tables[(database, name)]
        except KeyError:
            raise TableNotFoundError(name, database or None) from None

    def column(self, ref: ColumnRef) -> Column:
        """Resolve a :class:`ColumnRef` to its concrete column."""
        table = self.table(ref.table, database=ref.database)
        try:
            return table.column(ref.column)
        except ColumnNotFoundError:
            raise ColumnNotFoundError(ref.column, str(ref.table_key)) from None

    def tables(self) -> Iterator[tuple[str, Table]]:
        """Iterate ``(database, table)`` pairs in insertion order."""
        for (database, _name), table in self._tables.items():
            yield database, table

    def column_refs(self) -> Iterator[ColumnRef]:
        """Iterate refs of every column in the store."""
        for (database, _name), table in self._tables.items():
            for column in table.columns:
                yield ColumnRef(database, table.name, column.name)

    @property
    def table_count(self) -> int:
        """Number of registered tables."""
        return len(self._tables)

    @property
    def column_count(self) -> int:
        """Total number of columns across all tables."""
        return sum(table.column_count for table in self._tables.values())

    @property
    def row_count(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.row_count for table in self._tables.values())

    def estimated_bytes(self) -> int:
        """Aggregate estimated memory footprint."""
        return sum(table.estimated_bytes() for table in self._tables.values())

    def clear(self) -> None:
        """Evict everything."""
        self._tables.clear()
