"""Storage substrate: typed columns, tables, CSV codec, in-memory column store.

The paper (§5.2.2) argues that join discovery is column-oriented and that an
in-memory column store is the right representation for data pulled out of a
CDW.  This package is that representation: a :class:`Table` is a named
collection of typed :class:`Column` objects, and :class:`ColumnStore` holds
many tables with per-column access and summary statistics.
"""

from repro.storage.column import Column
from repro.storage.csv_codec import read_csv, read_csv_file, write_csv, write_csv_file
from repro.storage.inference import coerce_value, infer_type, infer_types
from repro.storage.schema import ColumnRef, ColumnSchema, TableSchema
from repro.storage.store import ColumnStore
from repro.storage.table import Table
from repro.storage.types import DataType

__all__ = [
    "Column",
    "ColumnRef",
    "ColumnSchema",
    "ColumnStore",
    "DataType",
    "Table",
    "TableSchema",
    "coerce_value",
    "infer_type",
    "infer_types",
    "read_csv",
    "read_csv_file",
    "write_csv",
    "write_csv_file",
]
