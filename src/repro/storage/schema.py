"""Schema descriptors: column references, column schemas, table schemas.

A :class:`ColumnRef` is the global address of a column —
``database.table.column`` — and is the identifier currency of the whole
discovery pipeline: indexes store refs, ground truth maps refs to refs, and
results rank refs.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.storage.types import DataType

__all__ = ["ColumnRef", "ColumnSchema", "TableSchema", "ForeignKey"]


@dataclass(frozen=True, slots=True, order=True)
class ColumnRef:
    """Fully qualified column address ``database.table.column``.

    ``database`` may be empty for corpora without a database level (e.g.
    flat CSV repositories like the NextiaJD testbeds).
    """

    database: str
    table: str
    column: str

    def __str__(self) -> str:
        if self.database:
            return f"{self.database}.{self.table}.{self.column}"
        return f"{self.table}.{self.column}"

    @classmethod
    def parse(cls, text: str) -> "ColumnRef":
        """Parse ``db.table.column`` or ``table.column``.

        >>> ColumnRef.parse("sales.account.name")
        ColumnRef(database='sales', table='account', column='name')
        """
        parts = text.split(".")
        if len(parts) == 3:
            return cls(*parts)
        if len(parts) == 2:
            return cls("", parts[0], parts[1])
        raise SchemaError(f"cannot parse column ref {text!r}")

    @property
    def table_key(self) -> tuple[str, str]:
        """(database, table) pair identifying the owning table."""
        return (self.database, self.table)

    def same_table(self, other: "ColumnRef") -> bool:
        """True when both refs address columns of the same table."""
        return self.table_key == other.table_key

    def same_database(self, other: "ColumnRef") -> bool:
        """True when both refs live in the same database."""
        return self.database == other.database


@dataclass(frozen=True, slots=True)
class ColumnSchema:
    """Declared name and type of one column, with key markers."""

    name: str
    dtype: DataType
    is_primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """A declared FK: ``column`` of this table references ``target``."""

    column: str
    target: ColumnRef

    def __str__(self) -> str:
        return f"{self.column} -> {self.target}"


@dataclass(frozen=True)
class TableSchema:
    """Declared schema of a table: ordered columns plus key constraints."""

    name: str
    columns: tuple[ColumnSchema, ...]
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [column.name for column in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(
                f"table {self.name!r} declares duplicate columns: {sorted(duplicates)}"
            )
        declared = set(names)
        for foreign_key in self.foreign_keys:
            if foreign_key.column not in declared:
                raise SchemaError(
                    f"table {self.name!r} declares FK on unknown column "
                    f"{foreign_key.column!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(column.name for column in self.columns)

    @property
    def primary_key_columns(self) -> tuple[str, ...]:
        """Names of columns flagged as primary keys."""
        return tuple(col.name for col in self.columns if col.is_primary_key)

    def column(self, name: str) -> ColumnSchema:
        """Look up one column schema by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """True when the schema declares ``name``."""
        return any(column.name == name for column in self.columns)


def validate_unique_names(names: Iterable[str], *, kind: str) -> None:
    """Raise :class:`SchemaError` if ``names`` contains duplicates."""
    seen: set[str] = set()
    duplicates: set[str] = set()
    for name in names:
        if name in seen:
            duplicates.add(name)
        seen.add(name)
    if duplicates:
        raise SchemaError(f"duplicate {kind} names: {sorted(duplicates)}")
