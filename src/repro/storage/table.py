"""Table: a named, ordered collection of equally long typed columns."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from functools import cached_property

from repro.errors import ColumnNotFoundError, SchemaError
from repro.storage.column import Column
from repro.storage.schema import ColumnSchema, ForeignKey, TableSchema
from repro.storage.types import DataType

__all__ = ["Table"]


class Table:
    """An in-memory, column-oriented relational table.

    Immutable after construction: transformation methods return new tables.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        *,
        foreign_keys: Iterable[ForeignKey] = (),
        primary_key: str | None = None,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(
                f"table {name!r} has ragged columns: lengths {sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"table {name!r} has duplicate columns: {duplicates}")
        if primary_key is not None and primary_key not in names:
            raise SchemaError(
                f"table {name!r} declares primary key on unknown column {primary_key!r}"
            )
        self.name = name
        self._columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, Column] = {column.name: column for column in columns}
        self.primary_key = primary_key
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for foreign_key in self.foreign_keys:
            if foreign_key.column not in self._by_name:
                raise SchemaError(
                    f"table {name!r} declares FK on unknown column "
                    f"{foreign_key.column!r}"
                )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        header: Sequence[str],
        rows: Sequence[Sequence[object]],
        *,
        dtypes: Sequence[DataType] | None = None,
    ) -> "Table":
        """Build a table from row-major data, inferring types when absent."""
        if not header:
            raise SchemaError(f"table {name!r} needs a non-empty header")
        column_values: list[list[object]] = [[] for _ in header]
        for row in rows:
            if len(row) != len(header):
                raise SchemaError(
                    f"table {name!r}: row width {len(row)} != header width {len(header)}"
                )
            for index, value in enumerate(row):
                column_values[index].append(value)
        columns = []
        for index, column_name in enumerate(header):
            if dtypes is not None:
                columns.append(
                    Column(column_name, column_values[index], dtypes[index], coerce=True)
                )
            else:
                columns.append(Column.from_raw(column_name, column_values[index]))
        return cls(name, columns)

    @classmethod
    def from_mapping(cls, name: str, data: Mapping[str, Sequence[object]]) -> "Table":
        """Build a table from a column-name → values mapping."""
        columns = [Column.from_raw(col_name, values) for col_name, values in data.items()]
        return cls(name, columns)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.column_count} cols x {self.row_count} rows)"

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._by_name

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return len(self._columns[0])

    @property
    def column_count(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def columns(self) -> tuple[Column, ...]:
        """Ordered column tuple."""
        return self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(column.name for column in self._columns)

    def column(self, name: str) -> Column:
        """Look up a column by name; raises :class:`ColumnNotFoundError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.name) from None

    def row(self, index: int) -> tuple[object, ...]:
        """Materialize one row by position."""
        return tuple(column[index] for column in self._columns)

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows (materializing tuples lazily)."""
        for index in range(self.row_count):
            yield self.row(index)

    @cached_property
    def schema(self) -> TableSchema:
        """Declared schema derived from the concrete columns."""
        return TableSchema(
            name=self.name,
            columns=tuple(
                ColumnSchema(
                    name=column.name,
                    dtype=column.dtype,
                    is_primary_key=(column.name == self.primary_key),
                )
                for column in self._columns
            ),
            foreign_keys=self.foreign_keys,
        )

    # -- transformations --------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Projection: new table with only the named columns, in order."""
        picked = [self.column(name) for name in names]
        return Table(self.name, picked)

    def take(self, indices: Sequence[int]) -> "Table":
        """Row selection by positional indices (preserving given order)."""
        return Table(
            self.name,
            [column.sample(indices) for column in self._columns],
            foreign_keys=self.foreign_keys,
            primary_key=self.primary_key,
        )

    def head(self, n: int) -> "Table":
        """First ``n`` rows."""
        return self.take(range(min(n, self.row_count)))

    def rename(self, name: str) -> "Table":
        """Copy of this table under a new name."""
        return Table(
            name,
            self._columns,
            foreign_keys=self.foreign_keys,
            primary_key=self.primary_key,
        )

    def with_column(self, column: Column) -> "Table":
        """New table with ``column`` appended (lengths must match)."""
        if len(column) != self.row_count:
            raise SchemaError(
                f"cannot append column of length {len(column)} to table "
                f"{self.name!r} with {self.row_count} rows"
            )
        if column.name in self._by_name:
            raise SchemaError(
                f"table {self.name!r} already has a column {column.name!r}"
            )
        return Table(
            self.name,
            [*self._columns, column],
            foreign_keys=self.foreign_keys,
            primary_key=self.primary_key,
        )

    def estimated_bytes(self) -> int:
        """Rough serialized size of the whole table."""
        return sum(column.estimated_bytes() for column in self._columns)
