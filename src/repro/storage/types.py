"""Column data types and scalar coercion rules.

The type lattice is deliberately small — the discovery pipeline only needs
to distinguish textual, integral, floating, boolean, and date-like columns
(D3L routes numeric columns to a distribution evidence and everything else
to value-based evidences).
"""

from __future__ import annotations

import re
from datetime import date, datetime
from enum import Enum

from repro.errors import TypeInferenceError

__all__ = ["DataType", "parse_date", "DATE_FORMATS"]


class DataType(Enum):
    """Logical type of a column."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        """True for INTEGER and FLOAT columns."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_textual(self) -> bool:
        """True for STRING columns (the embedding-friendly kind)."""
        return self is DataType.STRING

    def python_type(self) -> type:
        """The Python scalar type used to represent values of this type."""
        return {
            DataType.STRING: str,
            DataType.INTEGER: int,
            DataType.FLOAT: float,
            DataType.BOOLEAN: bool,
            DataType.DATE: date,
        }[self]


DATE_FORMATS: tuple[str, ...] = (
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%m/%d/%Y",
    "%d-%m-%Y",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M:%S",
)

_DATE_HINT_RE = re.compile(r"^\s*\d{1,4}[-/]\d{1,2}[-/]\d{1,4}")

_TRUE_LITERALS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_LITERALS = frozenset({"false", "f", "no", "n", "0"})
_BOOL_LITERALS = _TRUE_LITERALS | _FALSE_LITERALS

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


def parse_date(text: str) -> date:
    """Parse a date string in any supported format.

    Raises :class:`TypeInferenceError` when no format matches.
    """
    candidate = text.strip()
    if not _DATE_HINT_RE.match(candidate):
        raise TypeInferenceError(f"not a date: {text!r}")
    for fmt in DATE_FORMATS:
        try:
            return datetime.strptime(candidate, fmt).date()
        except ValueError:
            continue
    raise TypeInferenceError(f"unparseable date: {text!r}")


def looks_like_int(text: str) -> bool:
    """Cheap syntactic check for integer literals."""
    return bool(_INT_RE.match(text.strip()))


def looks_like_float(text: str) -> bool:
    """Cheap syntactic check for float literals (includes integers)."""
    return bool(_FLOAT_RE.match(text.strip()))


def looks_like_bool(text: str) -> bool:
    """Cheap syntactic check for boolean literals."""
    return text.strip().lower() in _BOOL_LITERALS


def parse_bool(text: str) -> bool:
    """Parse a boolean literal; raises :class:`TypeInferenceError` otherwise."""
    lowered = text.strip().lower()
    if lowered in _TRUE_LITERALS:
        return True
    if lowered in _FALSE_LITERALS:
        return False
    raise TypeInferenceError(f"not a boolean: {text!r}")


def looks_like_date(text: str) -> bool:
    """Cheap syntactic check before attempting full date parsing."""
    if not _DATE_HINT_RE.match(text.strip()):
        return False
    try:
        parse_date(text)
    except TypeInferenceError:
        return False
    return True
