"""Type inference over raw (string) column values.

CSV payloads and warehouse scans deliver strings; the inference here decides
one :class:`DataType` per column by majority vote with a fallback to STRING,
mirroring the defensive sniffing real loaders do.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from datetime import date

from repro.errors import TypeInferenceError
from repro.storage.types import (
    DataType,
    looks_like_bool,
    looks_like_date,
    looks_like_float,
    looks_like_int,
    parse_bool,
    parse_date,
)

__all__ = ["infer_type", "infer_types", "coerce_value", "NULL_LITERALS"]

NULL_LITERALS = frozenset({"", "null", "none", "na", "n/a", "nan", "\\n"})

# Upper bound on values examined per column during inference; beyond this the
# verdict is already stable and scanning more rows only costs time.
_INFERENCE_CAP = 1000


def is_null_literal(value: object) -> bool:
    """True when ``value`` is None or a conventional null spelling."""
    if value is None:
        return True
    if isinstance(value, str):
        return value.strip().lower() in NULL_LITERALS
    return False


def infer_type(values: Iterable[object], *, cap: int = _INFERENCE_CAP) -> DataType:
    """Infer the :class:`DataType` of a column from its raw values.

    Every non-null value must satisfy the candidate type's syntax; candidates
    are tried narrowest-first (BOOLEAN before INTEGER before FLOAT before
    DATE), and STRING is the universal fallback.  An all-null column infers
    as STRING.
    """
    could_be_bool = True
    could_be_int = True
    could_be_float = True
    could_be_date = True
    saw_value = False

    for index, value in enumerate(values):
        if index >= cap:
            break
        if is_null_literal(value):
            continue
        saw_value = True
        if isinstance(value, bool):
            could_be_int = could_be_float = could_be_date = False
            continue
        if isinstance(value, int):
            could_be_bool = could_be_date = False
            continue
        if isinstance(value, float):
            could_be_bool = could_be_int = could_be_date = False
            continue
        if isinstance(value, date):
            could_be_bool = could_be_int = could_be_float = False
            continue
        text = str(value)
        if could_be_bool and not looks_like_bool(text):
            could_be_bool = False
        if could_be_int and not looks_like_int(text):
            could_be_int = False
        if could_be_float and not looks_like_float(text):
            could_be_float = False
        if could_be_date and not looks_like_date(text):
            could_be_date = False
        if not (could_be_bool or could_be_int or could_be_float or could_be_date):
            return DataType.STRING

    if not saw_value:
        return DataType.STRING
    if could_be_bool:
        return DataType.BOOLEAN
    if could_be_int:
        return DataType.INTEGER
    if could_be_float:
        return DataType.FLOAT
    if could_be_date:
        return DataType.DATE
    return DataType.STRING


def infer_types(
    rows: Sequence[Sequence[object]], n_columns: int, *, cap: int = _INFERENCE_CAP
) -> list[DataType]:
    """Infer one type per column from row-major data."""
    return [
        infer_type((row[col] for row in rows if col < len(row)), cap=cap)
        for col in range(n_columns)
    ]


def coerce_value(value: object, dtype: DataType) -> object:
    """Coerce one raw value to ``dtype``; nulls pass through as None.

    Raises :class:`TypeInferenceError` when coercion is impossible, so bad
    data fails loudly at load time instead of corrupting profiles later.
    """
    if is_null_literal(value):
        return None
    if dtype is DataType.STRING:
        return value if isinstance(value, str) else str(value)
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        return parse_bool(str(value))
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            raise TypeInferenceError(f"boolean {value!r} is not an integer")
        if isinstance(value, int):
            return value
        text = str(value).strip()
        try:
            return int(text)
        except ValueError as exc:
            raise TypeInferenceError(f"not an integer: {value!r}") from exc
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeInferenceError(f"boolean {value!r} is not a float")
        if isinstance(value, (int, float)):
            return float(value)
        try:
            return float(str(value).strip())
        except ValueError as exc:
            raise TypeInferenceError(f"not a float: {value!r}") from exc
    if dtype is DataType.DATE:
        if isinstance(value, date):
            return value
        return parse_date(str(value))
    raise TypeInferenceError(f"unsupported dtype {dtype!r}")
