"""Typed column: the unit of storage, profiling, and embedding.

A :class:`Column` owns its values (Python scalars, None for null), its
:class:`DataType`, and lazily computed summary statistics.  The statistics
cover everything the discovery systems profile: distinct counts, null
fraction, numeric moments, and value-length moments.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import TypeInferenceError
from repro.storage.inference import coerce_value, infer_type
from repro.storage.types import DataType

__all__ = ["Column", "ColumnStats"]


@dataclass(frozen=True, slots=True)
class ColumnStats:
    """Summary statistics of a column.

    ``minimum``/``maximum``/``mean``/``std`` are None for non-numeric
    columns; length moments are computed over the string form of non-null
    values.
    """

    row_count: int
    null_count: int
    distinct_count: int
    minimum: float | None
    maximum: float | None
    mean: float | None
    std: float | None
    mean_length: float
    max_length: int

    @property
    def null_fraction(self) -> float:
        """Fraction of null values; 0.0 for an empty column."""
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def uniqueness(self) -> float:
        """Distinct values per non-null row — 1.0 marks a key-like column."""
        non_null = self.row_count - self.null_count
        return self.distinct_count / non_null if non_null else 0.0


class Column:
    """A named, typed sequence of values with lazy statistics."""

    __slots__ = ("name", "dtype", "_values", "__dict__")

    def __init__(
        self,
        name: str,
        values: Sequence[object],
        dtype: DataType | None = None,
        *,
        coerce: bool = False,
    ) -> None:
        if not name:
            raise ValueError("column name must be non-empty")
        self.name = name
        resolved = dtype if dtype is not None else infer_type(values)
        if coerce:
            values = [coerce_value(value, resolved) for value in values]
        self.dtype = resolved
        self._values: tuple[object, ...] = tuple(values)

    @classmethod
    def from_raw(cls, name: str, raw_values: Sequence[object]) -> "Column":
        """Build a column from raw strings: infer the type, then coerce.

        Falls back to STRING wholesale if any value resists coercion, which
        matches the forgiving behaviour of warehouse CSV loaders.
        """
        dtype = infer_type(raw_values)
        try:
            return cls(name, raw_values, dtype, coerce=True)
        except TypeInferenceError:
            return cls(name, raw_values, DataType.STRING, coerce=True)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __getitem__(self, index: int | slice) -> object:
        return self._values[index]

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.dtype == other.dtype
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype, self._values))

    @property
    def values(self) -> tuple[object, ...]:
        """The immutable value tuple (None encodes null)."""
        return self._values

    def non_null_values(self) -> Iterator[object]:
        """Iterate over non-null values in storage order."""
        return (value for value in self._values if value is not None)

    def head(self, n: int) -> tuple[object, ...]:
        """First ``n`` values."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return self._values[:n]

    @cached_property
    def distinct_values(self) -> frozenset[object]:
        """The set of distinct non-null values."""
        return frozenset(self.non_null_values())

    @cached_property
    def string_values(self) -> tuple[str, ...]:
        """Non-null values rendered as strings (profiling currency)."""
        return tuple(str(value) for value in self.non_null_values())

    @cached_property
    def stats(self) -> ColumnStats:
        """Compute (once) the summary statistics of this column."""
        row_count = len(self._values)
        non_null = [value for value in self._values if value is not None]
        null_count = row_count - len(non_null)
        distinct_count = len(self.distinct_values)
        minimum = maximum = mean = std = None
        if self.dtype.is_numeric and non_null:
            array = np.asarray(non_null, dtype=np.float64)
            minimum = float(array.min())
            maximum = float(array.max())
            mean = float(array.mean())
            std = float(array.std())
        lengths = [len(str(value)) for value in non_null]
        mean_length = float(np.mean(lengths)) if lengths else 0.0
        max_length = max(lengths) if lengths else 0
        return ColumnStats(
            row_count=row_count,
            null_count=null_count,
            distinct_count=distinct_count,
            minimum=minimum,
            maximum=maximum,
            mean=mean,
            std=std,
            mean_length=mean_length,
            max_length=max_length,
        )

    def numeric_array(self) -> np.ndarray:
        """Non-null values as a float64 array (numeric columns only)."""
        if not self.dtype.is_numeric:
            raise TypeInferenceError(
                f"column {self.name!r} has dtype {self.dtype.value}, not numeric"
            )
        return np.asarray(list(self.non_null_values()), dtype=np.float64)

    def sample(self, indices: Iterable[int]) -> "Column":
        """New column restricted to ``indices`` (in the given order)."""
        picked = [self._values[index] for index in indices]
        return Column(self.name, picked, self.dtype)

    def rename(self, name: str) -> "Column":
        """Copy of this column under a new name."""
        return Column(name, self._values, self.dtype)

    def estimated_bytes(self) -> int:
        """Rough serialized size, used by the warehouse scan cost model."""
        # 8 bytes per numeric/bool/date cell, string length otherwise; +1
        # overhead per cell for delimiters/null bitmap.
        total = len(self._values)
        if self.dtype in (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN, DataType.DATE):
            return total * 9
        return total + sum(len(str(v)) for v in self.non_null_values())
