"""CSV encode/decode for tables.

The paper (§5.2.2) notes CSV is the lingua franca of open table repositories
but a poor storage format; this codec is the ingestion edge that turns CSV
payloads into typed, column-oriented :class:`Table` objects.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.errors import CsvFormatError
from repro.storage.table import Table
from repro.storage.types import DataType

__all__ = ["read_csv", "write_csv", "read_csv_file", "write_csv_file"]


def read_csv(
    payload: str,
    name: str,
    *,
    delimiter: str = ",",
    infer_types: bool = True,
) -> Table:
    """Parse a CSV string (with header row) into a typed :class:`Table`.

    Type inference runs per column unless ``infer_types=False``, which
    loads every column as STRING (exact round-trips, staging loads).
    Unparseable payloads raise :class:`CsvFormatError`.
    """
    if not payload.strip():
        raise CsvFormatError(f"empty CSV payload for table {name!r}")
    reader = csv.reader(io.StringIO(payload), delimiter=delimiter)
    try:
        rows = list(reader)
    except csv.Error as exc:
        raise CsvFormatError(f"malformed CSV for table {name!r}: {exc}") from exc
    if not rows:
        raise CsvFormatError(f"no rows in CSV payload for table {name!r}")
    header, *data = rows
    if not header or any(not cell.strip() for cell in header):
        raise CsvFormatError(f"blank header cell in CSV for table {name!r}")
    width = len(header)
    for line_number, row in enumerate(data, start=2):
        if len(row) != width:
            raise CsvFormatError(
                f"table {name!r} line {line_number}: expected {width} cells, "
                f"got {len(row)}"
            )
    try:
        dtypes = None if infer_types else [DataType.STRING] * width
        return Table.from_rows(
            name, [cell.strip() for cell in header], data, dtypes=dtypes
        )
    except Exception as exc:  # schema errors become CSV format errors here
        raise CsvFormatError(f"cannot build table {name!r}: {exc}") from exc


def write_csv(table: Table, *, delimiter: str = ",") -> str:
    """Serialize a table to a CSV string with a header row.

    Nulls serialize to empty cells; round-trips through :func:`read_csv`
    preserve values up to type-faithful string rendering.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(table.column_names)
    for row in table.rows():
        writer.writerow(["" if value is None else str(value) for value in row])
    return buffer.getvalue()


def read_csv_file(path: str | Path, *, name: str | None = None) -> Table:
    """Load a CSV file; the table name defaults to the file stem."""
    path = Path(path)
    table_name = name if name is not None else path.stem
    try:
        payload = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CsvFormatError(f"cannot read CSV file {path}: {exc}") from exc
    return read_csv(payload, table_name)


def write_csv_file(table: Table, path: str | Path) -> None:
    """Write a table to a CSV file."""
    Path(path).write_text(write_csv(table), encoding="utf-8")
