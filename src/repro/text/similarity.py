"""Set and string similarity measures used across the discovery systems.

Jaccard and containment back the syntactic joinability notions (Aurum, D3L,
NextiaJD ground-truth labelling); Levenshtein and Jaro-Winkler back
column-name evidence.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Collection, Set

__all__ = [
    "jaccard",
    "containment",
    "cosine_of_counts",
    "levenshtein",
    "normalized_levenshtein",
    "jaro_winkler",
]


def jaccard(left: Set, right: Set) -> float:
    """Jaccard similarity |L ∩ R| / |L ∪ R|; 1.0 when both sets are empty."""
    if not left and not right:
        return 1.0
    if not left or not right:
        return 0.0
    intersection = len(left & right)
    union = len(left) + len(right) - intersection
    return intersection / union


def containment(query: Set, candidate: Set) -> float:
    """Containment of ``query`` in ``candidate``: |Q ∩ C| / |Q|.

    This is the directional measure used by NextiaJD-style join-quality
    labelling: a high value means most query values find a join partner.
    Returns 0.0 when the query set is empty.
    """
    if not query:
        return 0.0
    return len(query & candidate) / len(query)


def cosine_of_counts(left: Counter, right: Counter) -> float:
    """Cosine similarity between two sparse count vectors.

    >>> cosine_of_counts(Counter("aa"), Counter("aa"))
    1.0
    """
    if not left or not right:
        return 0.0
    # Iterate over the smaller counter for the dot product.
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    dot = sum(count * large.get(key, 0) for key, count in small.items())
    if dot == 0:
        return 0.0
    norm_left = math.sqrt(sum(count * count for count in left.values()))
    norm_right = math.sqrt(sum(count * count for count in right.values()))
    return dot / (norm_left * norm_right)


def levenshtein(left: str, right: str) -> int:
    """Edit distance with unit insert/delete/substitute costs.

    Uses the classic two-row dynamic program: O(len(left) * len(right)) time,
    O(min(len)) memory.
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) > len(right):
        left, right = right, left
    previous = list(range(len(left) + 1))
    for row, char_right in enumerate(right, start=1):
        current = [row] + [0] * len(left)
        for col, char_left in enumerate(left, start=1):
            substitution = previous[col - 1] + (char_left != char_right)
            current[col] = min(previous[col] + 1, current[col - 1] + 1, substitution)
        previous = current
    return previous[-1]


def normalized_levenshtein(left: str, right: str) -> float:
    """Levenshtein similarity scaled to [0, 1]; 1.0 for two empty strings."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein(left, right) / longest


def _jaro(left: str, right: str) -> float:
    """Jaro similarity (helper for Jaro-Winkler)."""
    if left == right:
        return 1.0
    len_left, len_right = len(left), len(right)
    if not len_left or not len_right:
        return 0.0
    window = max(len_left, len_right) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len_left
    right_matches = [False] * len_right
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len_right)
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_left):
        if not left_matches[i]:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_left
        + matches / len_right
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(left: str, right: str, *, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity, boosting shared prefixes up to 4 chars.

    >>> jaro_winkler("customer", "customer") == 1.0
    True
    """
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = _jaro(left, right)
    prefix = 0
    for char_left, char_right in zip(left, right):
        if char_left != char_right or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def overlap_coefficient(left: Collection, right: Collection) -> float:
    """Szymkiewicz-Simpson overlap: |L ∩ R| / min(|L|, |R|)."""
    left_set = left if isinstance(left, (set, frozenset)) else set(left)
    right_set = right if isinstance(right, (set, frozenset)) else set(right)
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / min(len(left_set), len(right_set))
