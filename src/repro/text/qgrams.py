"""Character q-gram shingles.

D3L's column-name evidence and Aurum's content signatures both operate on
q-gram sets.  We pad with sentinel characters so short strings still produce
a usable shingle set.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["qgram_set", "qgram_multiset"]

_PAD = "\x00"


def qgram_set(text: str, q: int = 3, *, pad: bool = True) -> frozenset[str]:
    """Return the set of character q-grams of ``text``.

    With ``pad=True`` the string is wrapped in ``q - 1`` sentinel characters
    on each side, so prefixes and suffixes are represented distinctly.

    >>> sorted(qgram_set("ab", q=2, pad=False))
    ['ab']
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if not text:
        return frozenset()
    padded = (_PAD * (q - 1) + text + _PAD * (q - 1)) if pad else text
    if len(padded) < q:
        return frozenset({padded})
    return frozenset(padded[i : i + q] for i in range(len(padded) - q + 1))


def qgram_multiset(text: str, q: int = 3, *, pad: bool = True) -> Counter[str]:
    """Return the multiset (Counter) of character q-grams of ``text``."""
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if not text:
        return Counter()
    padded = (_PAD * (q - 1) + text + _PAD * (q - 1)) if pad else text
    if len(padded) < q:
        return Counter({padded: 1})
    return Counter(padded[i : i + q] for i in range(len(padded) - q + 1))
