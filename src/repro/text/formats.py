"""Format-pattern abstraction of string values.

D3L's fourth evidence type compares columns by the *shape* of their values
rather than their content: "AB-1234" abstracts to "UU-DDDD".  Two columns of
phone numbers match on format even when their extents are disjoint.

We abstract each character into a class and run-length compress the result,
giving compact patterns such as ``U+l+ d+`` for "Main 42".
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["FormatPattern", "infer_format", "format_histogram"]


def _char_class(char: str) -> str:
    """Map a character to its class symbol."""
    if char.isdigit():
        return "d"
    if char.isalpha():
        return "U" if char.isupper() else "l"
    if char.isspace():
        return "s"
    return char  # punctuation is kept verbatim: '-' differs from '/'


@dataclass(frozen=True, slots=True)
class FormatPattern:
    """A run-length-compressed character-class pattern.

    ``signature`` is the compressed pattern string; ``raw_length`` records
    the length of the originating value (used by distribution comparisons).
    """

    signature: str
    raw_length: int

    def __str__(self) -> str:
        return self.signature


def infer_format(value: object) -> FormatPattern:
    """Abstract a single value to its :class:`FormatPattern`.

    >>> infer_format("AB-1234").signature
    'U+-d+'
    >>> infer_format("2021-03-05").signature
    'd+-d+-d+'
    """
    text = "" if value is None else str(value)
    classes = [_char_class(char) for char in text]
    compressed: list[str] = []
    previous = None
    for symbol in classes:
        if symbol == previous and symbol in ("d", "U", "l", "s"):
            if not compressed[-1].endswith("+"):
                compressed[-1] = symbol + "+"
            continue
        compressed.append(symbol)
        previous = symbol
    return FormatPattern("".join(compressed), len(text))


def format_histogram(values: Iterable[object], *, limit: int | None = None) -> Counter[str]:
    """Histogram of format signatures over ``values``.

    ``limit`` optionally caps the number of values inspected, mirroring
    sampled profiling.
    """
    histogram: Counter[str] = Counter()
    for index, value in enumerate(values):
        if limit is not None and index >= limit:
            break
        if value is None or value == "":
            continue
        histogram[infer_format(value).signature] += 1
    return histogram
