"""String substrate: tokenization, q-grams, similarities, format patterns.

These utilities back both the WarpGate embedding pipeline (tokenizing cell
values before embedding) and the Aurum/D3L baselines (q-gram name
similarity, Jaccard extent overlap, format-pattern evidence).
"""

from repro.text.formats import FormatPattern, format_histogram, infer_format
from repro.text.qgrams import qgram_multiset, qgram_set
from repro.text.similarity import (
    containment,
    cosine_of_counts,
    jaccard,
    jaro_winkler,
    levenshtein,
    normalized_levenshtein,
)
from repro.text.tokenize import (
    normalize_identifier,
    normalize_value,
    split_identifier,
    tokenize_value,
    tokenize_values,
)

__all__ = [
    "FormatPattern",
    "format_histogram",
    "infer_format",
    "qgram_multiset",
    "qgram_set",
    "containment",
    "cosine_of_counts",
    "jaccard",
    "jaro_winkler",
    "levenshtein",
    "normalized_levenshtein",
    "normalize_identifier",
    "normalize_value",
    "split_identifier",
    "tokenize_value",
    "tokenize_values",
]
