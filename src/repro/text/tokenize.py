"""Tokenization and normalization for cell values and identifiers.

The embedding pipeline serializes a column into a token sequence; these
functions define that serialization.  Identifier splitting handles the
``camelCase`` / ``snake_case`` / ``kebab-case`` column names common in
warehouse schemas.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

__all__ = [
    "normalize_value",
    "tokenize_value",
    "tokenize_values",
    "split_identifier",
    "normalize_identifier",
]

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_CAMEL_RE = re.compile(
    r"[A-Z]+(?=[A-Z][a-z0-9])|[A-Z]?[a-z0-9]+|[A-Z]+|[0-9]+"
)
_WS_RE = re.compile(r"\s+")


def normalize_value(value: object) -> str:
    """Normalize a raw cell value to a canonical lowercase string.

    ``None`` maps to the empty string; everything else is stringified,
    lowercased, and whitespace-collapsed.
    """
    if value is None:
        return ""
    text = value if isinstance(value, str) else str(value)
    return _WS_RE.sub(" ", text.strip().lower())


def tokenize_value(value: object) -> list[str]:
    """Split a cell value into lowercase word tokens.

    Punctuation is dropped; apostrophes inside words are preserved so
    "O'Brien" stays one token.

    >>> tokenize_value("Acme Corp. (US-West)")
    ['acme', 'corp', 'us', 'west']
    """
    normalized = normalize_value(value)
    if not normalized:
        return []
    return _WORD_RE.findall(normalized)


def tokenize_values(values: Iterable[object]) -> Iterator[str]:
    """Tokenize an iterable of cell values into one flat token stream."""
    for value in values:
        yield from tokenize_value(value)


def split_identifier(identifier: str) -> list[str]:
    """Split a schema identifier into lowercase word parts.

    Handles snake_case, kebab-case, camelCase, PascalCase, and embedded
    digits.

    >>> split_identifier("customerAccountID")
    ['customer', 'account', 'id']
    >>> split_identifier("BILLING_ADDRESS_2")
    ['billing', 'address', '2']
    """
    if not identifier:
        return []
    parts: list[str] = []
    for chunk in re.split(r"[\s_\-./]+", identifier):
        if not chunk:
            continue
        parts.extend(match.lower() for match in _CAMEL_RE.findall(chunk))
    return parts


def normalize_identifier(identifier: str) -> str:
    """Canonical space-joined lowercase form of an identifier.

    >>> normalize_identifier("Company-Name")
    'company name'
    """
    return " ".join(split_identifier(identifier))
