"""WarpGate reproduction: semantic join discovery for cloud data warehouses.

Reproduces Cong et al., *WarpGate: A Semantic Join Discovery System for
Cloud Data Warehouses* (CIDR 2023) as a self-contained Python library:

* :class:`repro.core.WarpGate` — the embedding + SimHash-LSH discovery
  system, over a simulated, scan-metered cloud data warehouse;
* :class:`repro.baselines.Aurum` / :class:`repro.baselines.D3L` — the two
  comparison systems;
* :mod:`repro.datasets` — deterministic regenerations of the NextiaJD
  testbeds, Spider, the Sigma Sample Database, and the web-table
  pretraining corpus;
* :mod:`repro.eval` — the paper's metrics and experiment runner.

Quickstart::

    from repro import WarpGate, generate_testbed

    corpus = generate_testbed("XS")
    system = WarpGate()
    system.index_corpus(corpus.connector())
    result = system.search(corpus.queries[0].ref, k=5)
    print(result.describe())
"""

from repro.baselines import Aurum, D3L
from repro.core import (
    DiscoveryResult,
    JoinCandidate,
    LookupService,
    WarpGate,
    WarpGateConfig,
)
from repro.datasets import (
    generate_sigma_sample_database,
    generate_spider_corpus,
    generate_testbed,
)
from repro.eval import evaluate_system

__version__ = "1.0.0"

__all__ = [
    "Aurum",
    "D3L",
    "DiscoveryResult",
    "JoinCandidate",
    "LookupService",
    "WarpGate",
    "WarpGateConfig",
    "evaluate_system",
    "generate_sigma_sample_database",
    "generate_spider_corpus",
    "generate_testbed",
    "__version__",
]
