"""WarpGate reproduction: semantic join discovery for cloud data warehouses.

Reproduces Cong et al., *WarpGate: A Semantic Join Discovery System for
Cloud Data Warehouses* (CIDR 2023) as a self-contained Python library:

* :class:`repro.service.DiscoveryService` — the recommended entry point:
  a session-based serving facade with typed requests/responses,
  incremental index mutation (``add_table`` / ``drop_table`` /
  ``refresh_column`` without a full re-index), batch search, a
  thread-safe read path, and a stdlib JSON-over-HTTP server
  (``python -m repro serve``);
* :class:`repro.core.WarpGate` — the embedding + SimHash-LSH discovery
  core the service wraps, over a simulated, scan-metered cloud data
  warehouse;
* :class:`repro.baselines.Aurum` / :class:`repro.baselines.D3L` — the two
  comparison systems;
* :mod:`repro.datasets` — deterministic regenerations of the NextiaJD
  testbeds, Spider, the Sigma Sample Database, and the web-table
  pretraining corpus;
* :mod:`repro.eval` — the paper's metrics and experiment runner.

Quickstart::

    from repro import DiscoveryService, generate_testbed

    corpus = generate_testbed("XS")
    service = DiscoveryService()
    service.open(corpus.connector())
    response = service.search(corpus.queries[0].ref, k=5)
    print(response.describe())

The one-shot library flow (``WarpGate().index_corpus(...)`` then
``.search(...)``) keeps working unchanged underneath.
"""

from repro.baselines import Aurum, D3L
from repro.core import (
    DiscoveryResult,
    JoinCandidate,
    LookupService,
    WarpGate,
    WarpGateConfig,
)
from repro.datasets import (
    generate_sigma_sample_database,
    generate_spider_corpus,
    generate_testbed,
)
from repro.eval import evaluate_system
from repro.service import (
    DiscoveryService,
    IndexStats,
    SearchRequest,
    SearchResponse,
    ServiceError,
)

__version__ = "1.0.0"

__all__ = [
    "Aurum",
    "D3L",
    "DiscoveryResult",
    "DiscoveryService",
    "IndexStats",
    "JoinCandidate",
    "LookupService",
    "SearchRequest",
    "SearchResponse",
    "ServiceError",
    "WarpGate",
    "WarpGateConfig",
    "evaluate_system",
    "generate_sigma_sample_database",
    "generate_spider_corpus",
    "generate_testbed",
    "__version__",
]
