"""Exception hierarchy for the WarpGate reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subclasses are grouped
by subsystem: storage, warehouse, embedding, index, and discovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Base class for errors in the storage substrate."""


class TypeInferenceError(StorageError):
    """Raised when a value cannot be coerced to the inferred column type."""


class SchemaError(StorageError):
    """Raised for malformed schemas: duplicate column names, bad refs, etc."""


class CsvFormatError(StorageError):
    """Raised when a CSV payload cannot be parsed into a table."""


class ColumnNotFoundError(StorageError):
    """Raised when a column lookup by name or ref fails."""

    def __init__(self, column: str, table: str | None = None) -> None:
        self.column = column
        self.table = table
        location = f" in table {table!r}" if table else ""
        super().__init__(f"column {column!r} not found{location}")


class TableNotFoundError(StorageError):
    """Raised when a table lookup by name fails."""

    def __init__(self, table: str, database: str | None = None) -> None:
        self.table = table
        self.database = database
        location = f" in database {database!r}" if database else ""
        super().__init__(f"table {table!r} not found{location}")


class WarehouseError(ReproError):
    """Base class for errors in the simulated cloud data warehouse."""


class DatabaseNotFoundError(WarehouseError):
    """Raised when a database lookup by name fails."""

    def __init__(self, database: str) -> None:
        self.database = database
        super().__init__(f"database {database!r} not found in warehouse")


class ScanBudgetExceededError(WarehouseError):
    """Raised when a connector scan would exceed the configured byte budget."""

    def __init__(self, requested: int, remaining: int) -> None:
        self.requested = requested
        self.remaining = remaining
        super().__init__(
            f"scan of {requested} bytes exceeds remaining budget of "
            f"{remaining} bytes"
        )


class EmbeddingError(ReproError):
    """Base class for errors in the embedding substrate."""


class ModelNotTrainedError(EmbeddingError):
    """Raised when an embedding model is used before ``fit`` / training."""


class UnknownModelError(EmbeddingError):
    """Raised when the model registry cannot resolve a model name."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = available
        hint = f"; available: {', '.join(available)}" if available else ""
        super().__init__(f"unknown embedding model {name!r}{hint}")


class IndexError_(ReproError):
    """Base class for errors in the index substrate.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class EmptyIndexError(IndexError_):
    """Raised when querying an index with no entries."""


class DimensionMismatchError(IndexError_):
    """Raised when a vector's dimensionality does not match the index."""

    def __init__(self, expected: int, actual: int) -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"vector dimension mismatch: index expects {expected}, got {actual}"
        )


class WorkerCrashError(IndexError_):
    """Raised when a shard worker process dies (or stalls) mid-request.

    Carries the shard id so the pool's restart path and the serving
    layer's error envelope can name the failed partition.  The pool
    reaps the dead worker before raising, so the next query respawns it
    from the last published segment — callers see one failed request,
    never a hang.
    """

    def __init__(self, shard_id: int, reason: str) -> None:
        self.shard_id = shard_id
        self.reason = reason
        super().__init__(f"shard worker {shard_id} crashed: {reason}")


class DiscoveryError(ReproError):
    """Base class for errors in the discovery layer (WarpGate + baselines)."""


class NotIndexedError(DiscoveryError):
    """Raised when searching a discovery system before indexing a corpus."""


class InvalidQueryError(DiscoveryError):
    """Raised when a join query references unknown tables or columns."""


class DeadlineExceededError(DiscoveryError):
    """Raised when a request's deadline expires before its work completes.

    Carries how far past the deadline the request was when the expiry
    was observed; the serving boundary maps this to HTTP 504.
    """

    def __init__(self, message: str = "", *, overrun_s: float = 0.0) -> None:
        self.overrun_s = overrun_s
        detail = message or (
            f"request deadline exceeded by {overrun_s * 1e3:.1f} ms"
        )
        super().__init__(detail)


class PersistenceError(DiscoveryError):
    """Base class for errors loading or saving index artifacts."""


class ArtifactCorruptionError(PersistenceError):
    """Raised when an index artifact fails structural or checksum validation.

    Carries the artifact path and, when known, the archive member whose
    bytes failed — a truncated download and a bit-flipped vector block
    produce the same typed error instead of a raw ``zipfile``/``numpy``
    traceback deep inside the loader.
    """

    def __init__(self, path, member: str | None = None, detail: str = "") -> None:
        self.path = str(path)
        self.member = member
        suspect = f" (member {member!r})" if member else ""
        tail = f": {detail}" if detail else ""
        super().__init__(f"corrupt index artifact {self.path}{suspect}{tail}")


class DurabilityError(PersistenceError):
    """Base class for errors in the durable (WAL + segment) store."""


class WalCorruptionError(DurabilityError):
    """Raised when a *complete* WAL frame fails its CRC or framing checks.

    A torn tail (crash mid-append) is expected damage and is discarded
    silently during recovery; a full frame whose checksum mismatches is
    real corruption and must surface, never be skipped.
    """

    def __init__(self, path, offset: int, detail: str = "") -> None:
        self.path = str(path)
        self.offset = offset
        tail = f": {detail}" if detail else ""
        super().__init__(
            f"corrupt WAL record in {self.path} at byte {offset}{tail}"
        )


class SegmentChecksumError(DurabilityError):
    """Raised when a manifest-listed segment fails its size/CRC check."""

    def __init__(self, path, expected: int, actual: int) -> None:
        self.path = str(path)
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"segment {self.path} failed its checksum: manifest says "
            f"{expected:#010x}, file hashes to {actual:#010x}"
        )


class ManifestError(DurabilityError):
    """Raised when the store manifest is missing, unparseable, or invalid."""

    def __init__(self, path, detail: str) -> None:
        self.path = str(path)
        super().__init__(f"bad manifest {self.path}: {detail}")


class RespawnLimitError(IndexError_):
    """Raised when a worker's respawn circuit breaker trips.

    A worker crash-looping on a poisoned artifact would otherwise respawn
    in a hot spin; past ``max_respawns`` failures inside the breaker
    window the slot is disabled and this error names the budget that ran
    out, so the operator sees one clear failure instead of a busy loop.
    """

    def __init__(self, what: str, failures: int, window_s: float) -> None:
        self.what = what
        self.failures = failures
        self.window_s = window_s
        super().__init__(
            f"{what}: respawn circuit breaker open after {failures} "
            f"crash(es) within {window_s:.0f}s; not respawning "
            "(suspect a poisoned artifact or persistent startup failure)"
        )


class EvaluationError(ReproError):
    """Base class for errors in the evaluation harness."""


class MissingGroundTruthError(EvaluationError):
    """Raised when metrics are requested for a corpus without ground truth."""
