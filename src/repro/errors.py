"""Exception hierarchy for the WarpGate reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subclasses are grouped
by subsystem: storage, warehouse, embedding, index, and discovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Base class for errors in the storage substrate."""


class TypeInferenceError(StorageError):
    """Raised when a value cannot be coerced to the inferred column type."""


class SchemaError(StorageError):
    """Raised for malformed schemas: duplicate column names, bad refs, etc."""


class CsvFormatError(StorageError):
    """Raised when a CSV payload cannot be parsed into a table."""


class ColumnNotFoundError(StorageError):
    """Raised when a column lookup by name or ref fails."""

    def __init__(self, column: str, table: str | None = None) -> None:
        self.column = column
        self.table = table
        location = f" in table {table!r}" if table else ""
        super().__init__(f"column {column!r} not found{location}")


class TableNotFoundError(StorageError):
    """Raised when a table lookup by name fails."""

    def __init__(self, table: str, database: str | None = None) -> None:
        self.table = table
        self.database = database
        location = f" in database {database!r}" if database else ""
        super().__init__(f"table {table!r} not found{location}")


class WarehouseError(ReproError):
    """Base class for errors in the simulated cloud data warehouse."""


class DatabaseNotFoundError(WarehouseError):
    """Raised when a database lookup by name fails."""

    def __init__(self, database: str) -> None:
        self.database = database
        super().__init__(f"database {database!r} not found in warehouse")


class ScanBudgetExceededError(WarehouseError):
    """Raised when a connector scan would exceed the configured byte budget."""

    def __init__(self, requested: int, remaining: int) -> None:
        self.requested = requested
        self.remaining = remaining
        super().__init__(
            f"scan of {requested} bytes exceeds remaining budget of "
            f"{remaining} bytes"
        )


class EmbeddingError(ReproError):
    """Base class for errors in the embedding substrate."""


class ModelNotTrainedError(EmbeddingError):
    """Raised when an embedding model is used before ``fit`` / training."""


class UnknownModelError(EmbeddingError):
    """Raised when the model registry cannot resolve a model name."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = available
        hint = f"; available: {', '.join(available)}" if available else ""
        super().__init__(f"unknown embedding model {name!r}{hint}")


class IndexError_(ReproError):
    """Base class for errors in the index substrate.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class EmptyIndexError(IndexError_):
    """Raised when querying an index with no entries."""


class DimensionMismatchError(IndexError_):
    """Raised when a vector's dimensionality does not match the index."""

    def __init__(self, expected: int, actual: int) -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"vector dimension mismatch: index expects {expected}, got {actual}"
        )


class WorkerCrashError(IndexError_):
    """Raised when a shard worker process dies (or stalls) mid-request.

    Carries the shard id so the pool's restart path and the serving
    layer's error envelope can name the failed partition.  The pool
    reaps the dead worker before raising, so the next query respawns it
    from the last published segment — callers see one failed request,
    never a hang.
    """

    def __init__(self, shard_id: int, reason: str) -> None:
        self.shard_id = shard_id
        self.reason = reason
        super().__init__(f"shard worker {shard_id} crashed: {reason}")


class DiscoveryError(ReproError):
    """Base class for errors in the discovery layer (WarpGate + baselines)."""


class NotIndexedError(DiscoveryError):
    """Raised when searching a discovery system before indexing a corpus."""


class InvalidQueryError(DiscoveryError):
    """Raised when a join query references unknown tables or columns."""


class EvaluationError(ReproError):
    """Base class for errors in the evaluation harness."""


class MissingGroundTruthError(EvaluationError):
    """Raised when metrics are requested for a corpus without ground truth."""
