"""Join-path primitives: edges, paths, and bounded path enumeration.

A :class:`JoinEdge` records one high-confidence joinable column pair
between two distinct tables; a :class:`JoinPath` is a chain of such
edges scored by a pluggable combiner.  The enumeration here is pure —
it walks an adjacency mapping produced by
:class:`repro.graph.joingraph.JoinGraph` and never touches the engine,
so it is trivially testable and reusable over exported graphs.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.storage.schema import ColumnRef

TableKey = tuple[str, str]


def format_table(key: TableKey) -> str:
    """Render ``(database, table)`` as ``database.table`` (or bare name)."""
    database, table = key
    return f"{database}.{table}" if database else table


def parse_table(text: str) -> TableKey:
    """Parse ``database.table`` (or a bare table name) into a key."""
    cleaned = text.strip()
    if not cleaned:
        raise ValueError("table name must be non-empty")
    if "." in cleaned:
        database, _, table = cleaned.partition(".")
        return (database, table)
    return ("", cleaned)


@dataclass(frozen=True)
class JoinEdge:
    """One joinable column pair; ``left < right`` by string order.

    ``confidence`` blends the cosine score with a MinHash Jaccard
    estimate when column values were scanned; membership in the graph
    is decided by ``cosine`` alone so the edge set is independent of
    whether a connector is attached.
    """

    left: ColumnRef
    right: ColumnRef
    cosine: float
    jaccard: float | None
    confidence: float

    @property
    def tables(self) -> tuple[TableKey, TableKey]:
        return (self.left.table_key, self.right.table_key)

    def other_table(self, key: TableKey) -> TableKey:
        """The endpoint table that is not ``key``."""
        left_key, right_key = self.tables
        if key == left_key:
            return right_key
        if key == right_key:
            return left_key
        raise KeyError(key)

    def to_dict(self) -> dict:
        return {
            "left": str(self.left),
            "right": str(self.right),
            "cosine": self.cosine,
            "jaccard": self.jaccard,
            "confidence": self.confidence,
        }


@dataclass(frozen=True)
class JoinPath:
    """A ranked chain of join edges from ``tables[0]`` to ``tables[-1]``."""

    tables: tuple[TableKey, ...]
    edges: tuple[JoinEdge, ...]
    score: float

    @property
    def hops(self) -> int:
        return len(self.edges)

    def describe(self) -> str:
        """Human-oriented one-liner: ``a.t -[0.97]- b.u -[0.91]- c.v``."""
        parts = [format_table(self.tables[0])]
        for edge, table in zip(self.edges, self.tables[1:]):
            parts.append(f"-[{edge.confidence:.3f}]-")
            parts.append(format_table(table))
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "tables": [format_table(key) for key in self.tables],
            "edges": [edge.to_dict() for edge in self.edges],
            "hops": self.hops,
            "score": self.score,
        }


def _product(scores: Iterable[float]) -> float:
    return math.prod(scores)


COMBINERS: dict[str, Callable[[Iterable[float]], float]] = {
    "product": _product,
    "min": min,
}

Adjacency = Mapping[TableKey, Mapping[TableKey, JoinEdge]]


def resolve_combiner(
    combiner: str | Callable[[Iterable[float]], float],
) -> Callable[[Iterable[float]], float]:
    """Look up a named combiner, or pass a callable through."""
    if callable(combiner):
        return combiner
    try:
        return COMBINERS[combiner]
    except KeyError:
        known = ", ".join(sorted(COMBINERS))
        raise ValueError(f"unknown combiner {combiner!r} (expected one of: {known})") from None


def enumerate_paths(
    adjacency: Adjacency,
    src: TableKey,
    dst: TableKey,
    *,
    max_hops: int = 3,
    limit: int | None = 5,
    combiner: str | Callable[[Iterable[float]], float] = "product",
) -> list[JoinPath]:
    """All simple paths from ``src`` to ``dst`` within ``max_hops`` edges.

    Paths are ranked by descending combined score, ties broken by the
    lexical table sequence so results are deterministic.

    With a ``limit`` and a named monotone combiner (``product`` over
    confidences ≤ 1, or ``min``), the DFS prunes by best-possible score:
    once ``limit`` paths are known, a subtree whose prefix score already
    sits *strictly* below the current ``limit``-th best cannot contribute
    — extending a path can never raise a monotone combiner's score — so
    it is skipped wholesale.  Ties with the boundary are always expanded
    (the lexical tie-break needs them), and the returned list is
    identical to the unpruned enumeration (property-tested).  Custom
    callable combiners disable pruning.
    """
    if max_hops < 1:
        raise ValueError("max_hops must be >= 1")
    if src == dst:
        raise ValueError("src and dst must name different tables")
    combine = resolve_combiner(combiner)
    # Monotone combiners admit a prefix bound: "min" unconditionally,
    # "product" only while every factor is ≤ 1 (true for confidences by
    # construction, but the enumeration is pure — verify, don't assume).
    prune_mode = combiner if limit is not None and combiner in ("product", "min") else None
    if prune_mode == "product" and any(
        edge.confidence > 1.0
        for neighbors in adjacency.values()
        for edge in neighbors.values()
    ):
        prune_mode = None
    found: list[JoinPath] = []
    # Min-heap of the `limit` best completed scores; its root is the
    # pruning boundary once full.
    best_scores: list[float] = []
    visited: list[TableKey] = [src]
    edges: list[JoinEdge] = []
    on_path = {src}
    # Running prefix score, multiplied/min-ed edge by edge in the same
    # left-to-right order combine() uses, so bound arithmetic is
    # bit-identical to the final scores.
    prefix = [1.0 if prune_mode == "product" else math.inf]

    def walk(node: TableKey) -> None:
        for neighbor in sorted(adjacency.get(node, {})):
            edge = adjacency[node][neighbor]
            if neighbor == dst:
                chain = (*edges, edge)
                score = float(combine([step.confidence for step in chain]))
                found.append(JoinPath((*visited, dst), chain, score))
                if prune_mode is not None:
                    if len(best_scores) < limit:
                        heapq.heappush(best_scores, score)
                    else:
                        heapq.heappushpop(best_scores, score)
            elif len(edges) + 1 < max_hops and neighbor not in on_path:
                if prune_mode == "product":
                    bound = prefix[-1] * edge.confidence
                elif prune_mode == "min":
                    bound = min(prefix[-1], edge.confidence)
                else:
                    bound = None
                if (
                    bound is not None
                    and len(best_scores) >= limit
                    and bound < best_scores[0]
                ):
                    # No completion through this subtree can reach the
                    # current top-`limit` (strict: boundary ties expand).
                    continue
                visited.append(neighbor)
                edges.append(edge)
                on_path.add(neighbor)
                if bound is not None:
                    prefix.append(bound)
                walk(neighbor)
                if bound is not None:
                    prefix.pop()
                on_path.discard(neighbor)
                edges.pop()
                visited.pop()

    walk(src)
    found.sort(key=lambda path: (-path.score, tuple(map(format_table, path.tables))))
    return found if limit is None else found[:limit]


def reachable_tables(
    adjacency: Adjacency,
    src: TableKey,
    *,
    max_hops: int = 3,
) -> dict[TableKey, int]:
    """Tables reachable from ``src`` within ``max_hops``, with hop counts."""
    if max_hops < 1:
        raise ValueError("max_hops must be >= 1")
    hops: dict[TableKey, int] = {}
    frontier: deque[tuple[TableKey, int]] = deque([(src, 0)])
    seen = {src}
    while frontier:
        node, depth = frontier.popleft()
        if depth == max_hops:
            continue
        for neighbor in sorted(adjacency.get(node, {})):
            if neighbor not in seen:
                seen.add(neighbor)
                hops[neighbor] = depth + 1
                frontier.append((neighbor, depth + 1))
    return hops
