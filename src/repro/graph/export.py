"""Serialize a :class:`JoinGraph` to Graphviz DOT or plain JSON."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.graph.paths import format_table

if TYPE_CHECKING:
    from repro.graph.joingraph import JoinGraph

EXPORT_FORMATS = ("dot", "json")


def to_dot(graph: "JoinGraph") -> str:
    """An undirected Graphviz rendering; edge labels carry confidence."""
    lines = ["graph joingraph {", "  node [shape=box];"]
    for table in graph.tables():
        lines.append(f'  "{format_table(table)}";')
    for edge in graph.edges():
        left, right = edge.tables
        label = f"{edge.left.column}~{edge.right.column} {edge.confidence:.3f}"
        lines.append(
            f'  "{format_table(left)}" -- "{format_table(right)}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_json(graph: "JoinGraph") -> str:
    """A stable JSON document: nodes, edges, and graph counters."""
    payload = {
        "nodes": [format_table(table) for table in graph.tables()],
        "edges": [edge.to_dict() for edge in graph.edges()],
        "stats": graph.stats(),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def export_graph(graph: "JoinGraph", fmt: str = "dot") -> str:
    """Dispatch on ``fmt`` (one of :data:`EXPORT_FORMATS`)."""
    if fmt == "dot":
        return to_dot(graph)
    if fmt == "json":
        return to_json(graph)
    raise ValueError(f"unknown export format {fmt!r} (expected one of: dot, json)")
