"""Join-path graph engine: multi-hop discovery over the indexed corpus.

Nodes are indexed tables; edges are high-confidence joinable column
pairs materialized through the batched ``search_vectors`` kernel and
maintained incrementally against ``WarpGate.index_generation``.
"""

from repro.graph.export import EXPORT_FORMATS, export_graph, to_dot, to_json
from repro.graph.joingraph import JoinGraph, bulk_graph
from repro.graph.paths import (
    COMBINERS,
    JoinEdge,
    JoinPath,
    enumerate_paths,
    format_table,
    parse_table,
    reachable_tables,
)

__all__ = [
    "COMBINERS",
    "EXPORT_FORMATS",
    "JoinEdge",
    "JoinGraph",
    "JoinPath",
    "bulk_graph",
    "enumerate_paths",
    "export_graph",
    "format_table",
    "parse_table",
    "reachable_tables",
    "to_dot",
    "to_json",
]
