"""The join graph: tables as nodes, joinable column pairs as edges.

Edges are materialized from the engine's batched ``search_vectors``
path — one GEMM sweep per table, not a Python loop per column — and
maintained lazily: mutations mark table neighborhoods dirty, and
``ensure_current`` rebuilds exactly the touched tables by diffing the
indexed membership against the last synced snapshot, keyed off
``WarpGate.index_generation``.

Exactness contract: the edge set after any sequence of incremental
rebuilds is *identical* to a from-scratch rebuild.  Two properties make
that hold:

* sweeps are truncation-free — every sweep asks for ``indexed_count``
  neighbors at a slightly sub-threshold floor, so no qualifying pair is
  ever cut by ``k`` or lost to float asymmetry in the sweep direction;
* the score stored on an edge is recomputed canonically (left operand
  = lexically smaller ref), so the same pair gets the same bits no
  matter which table's sweep discovered it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.graph.paths import (
    JoinEdge,
    JoinPath,
    TableKey,
    enumerate_paths,
    format_table,
    parse_table,
    reachable_tables,
)
from repro.index.minhash import MinHashSignature
from repro.storage.schema import ColumnRef

if TYPE_CHECKING:
    from repro.core.warpgate import WarpGate

#: Sweep floor sits this far below the edge threshold; membership is then
#: re-decided on the canonical recomputed cosine, so pairs sitting within
#: one float32 ulp of the threshold are classified identically regardless
#: of sweep direction.
_SWEEP_SLACK = 1e-4

PairKey = tuple[ColumnRef, ColumnRef]


def _pair_key(a: ColumnRef, b: ColumnRef) -> PairKey:
    return (a, b) if str(a) <= str(b) else (b, a)


class JoinGraph:
    """Lazily-maintained graph of joinable tables over a WarpGate engine.

    Not thread-safe by itself: callers serialize query-side access (the
    service wraps it in a dedicated lock).  The one exception is
    :meth:`invalidate_table`, which only touches a private dirty set
    under its own mutex so mutators can call it while holding write
    locks that graph queries also sit behind.
    """

    def __init__(
        self,
        engine: "WarpGate",
        *,
        edge_threshold: float = 0.7,
        semantic_weight: float = 0.6,
        minhash_perm: int = 128,
    ) -> None:
        if not 0.0 <= semantic_weight <= 1.0:
            raise ValueError("semantic_weight must be within [0, 1]")
        self.engine = engine
        self.edge_threshold = float(edge_threshold)
        self.semantic_weight = float(semantic_weight)
        self.minhash_perm = int(minhash_perm)
        self._tables: dict[TableKey, frozenset[ColumnRef]] = {}
        self._edges: dict[PairKey, JoinEdge] = {}
        self._incident: dict[TableKey, set[PairKey]] = {}
        self._signatures: dict[ColumnRef, MinHashSignature] = {}
        self._adjacency_cache: dict[TableKey, dict[TableKey, JoinEdge]] | None = None
        self._synced_generation: int | None = None
        self._rebuilds = 0
        self._dirty: set[TableKey] = set()
        self._dirty_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Invalidation

    def invalidate_table(self, table_key: TableKey) -> None:
        """Mark one table's neighborhood stale (cheap; safe under any lock)."""
        with self._dirty_lock:
            self._dirty.add(tuple(table_key))

    def invalidate_all(self) -> None:
        """Force the next sync to rebuild the graph from scratch."""
        with self._dirty_lock:
            self._dirty.clear()
        self._tables = {}
        self._edges = {}
        self._incident = {}
        self._signatures = {}
        self._adjacency_cache = None
        self._synced_generation = None

    # ------------------------------------------------------------------
    # Synchronization

    def ensure_current(self) -> bool:
        """Bring the graph up to date with the engine; True if work was done.

        Stale tables are the union of explicitly invalidated ones and
        those whose indexed-column membership changed since the last
        sync.  If the engine generation moved with no such table (an
        in-place change the membership diff cannot localize), the whole
        graph is rebuilt — always correct, never silently stale.
        """
        generation = self.engine.index_generation
        with self._dirty_lock:
            dirty = set(self._dirty)
            self._dirty.clear()
        if generation == self._synced_generation and not dirty:
            return False
        current = self._current_membership()
        stale = {key for key in dirty if key in current or key in self._tables}
        stale |= {key for key, refs in self._tables.items() if current.get(key) != refs}
        stale |= {key for key in current if key not in self._tables}
        if self._synced_generation is not None and generation != self._synced_generation:
            if not stale:
                stale = set(current) | set(self._tables)
        if stale or current.keys() != self._tables.keys():
            self._adjacency_cache = None
        try:
            for key in stale:
                self._drop_table_state(key)
            self._tables = current
            for key in sorted(stale):
                refs = current.get(key)
                if refs:
                    self._sweep_table(key, refs)
                    self._rebuilds += 1
        except Exception:
            # Partial rebuild: make sure the next sync redoes the work.
            with self._dirty_lock:
                self._dirty |= stale
            raise
        self._synced_generation = generation
        return True

    def _current_membership(self) -> dict[TableKey, frozenset[ColumnRef]]:
        grouped: dict[TableKey, set[ColumnRef]] = {}
        for ref in self.engine.indexed_refs:
            grouped.setdefault(ref.table_key, set()).add(ref)
        return {key: frozenset(refs) for key, refs in grouped.items()}

    def _drop_table_state(self, key: TableKey) -> None:
        for pair in self._incident.pop(key, set()):
            self._edges.pop(pair, None)
            other = pair[0].table_key if pair[0].table_key != key else pair[1].table_key
            bucket = self._incident.get(other)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._incident[other]
        for ref in [ref for ref in self._signatures if ref.table_key == key]:
            del self._signatures[ref]

    def _sweep_table(self, key: TableKey, refs: frozenset[ColumnRef]) -> None:
        """One batched GEMM over the whole index for all of a table's columns."""
        ordered = sorted(refs, key=str)
        k = self.engine.indexed_count
        if k <= len(ordered):  # nothing outside this table to join with
            return
        vectors = [self.engine.vector_of(ref) for ref in ordered]
        floor = max(-1.0, self.edge_threshold - _SWEEP_SLACK)
        results = self.engine.search_vectors(vectors, k, threshold=floor, excludes=ordered)
        for ref, result in zip(ordered, results):
            for candidate in result.candidates:
                self._consider_edge(ref, candidate.ref)

    def _consider_edge(self, a: ColumnRef, b: ColumnRef) -> None:
        pair = _pair_key(a, b)
        cosine = float(self.engine.similarity(pair[0], pair[1]))
        if cosine < self.edge_threshold:
            return
        jaccard = self._jaccard_of(pair[0], pair[1])
        if jaccard is None:
            confidence = cosine
        else:
            confidence = self.semantic_weight * cosine + (1.0 - self.semantic_weight) * jaccard
        self._edges[pair] = JoinEdge(pair[0], pair[1], cosine, jaccard, confidence)
        self._incident.setdefault(pair[0].table_key, set()).add(pair)
        self._incident.setdefault(pair[1].table_key, set()).add(pair)

    def _jaccard_of(self, left: ColumnRef, right: ColumnRef) -> float | None:
        """MinHash Jaccard estimate over scanned values; None without a connector."""
        left_sig = self._signature_of(left)
        right_sig = self._signature_of(right)
        if left_sig is None or right_sig is None:
            return None
        if left_sig.is_empty or right_sig.is_empty:
            return 0.0
        return float(left_sig.jaccard_estimate(right_sig))

    def _signature_of(self, ref: ColumnRef) -> MinHashSignature | None:
        connector = self.engine.connector_or_none
        if connector is None:
            return None
        cached = self._signatures.get(ref)
        if cached is None:
            column, _receipt = connector.scan_column(ref)
            items = [value for value in column if value is not None]
            cached = MinHashSignature.of(items, n_perm=self.minhash_perm)
            self._signatures[ref] = cached
        return cached

    # ------------------------------------------------------------------
    # Queries (each syncs first)

    def tables(self) -> list[TableKey]:
        self.ensure_current()
        return sorted(self._tables)

    def edges(self) -> list[JoinEdge]:
        self.ensure_current()
        return sorted(
            self._edges.values(),
            key=lambda edge: (-edge.confidence, str(edge.left), str(edge.right)),
        )

    def neighbors(self, table: TableKey | str) -> list[tuple[TableKey, JoinEdge]]:
        """Adjacent tables with the best edge to each, ranked by confidence."""
        self.ensure_current()
        key = self._node(table)
        best = self._best_edges_from(key)
        return sorted(
            best.items(), key=lambda item: (-item[1].confidence, format_table(item[0]))
        )

    def find_paths(
        self,
        src: TableKey | str,
        dst: TableKey | str,
        *,
        max_hops: int = 3,
        limit: int | None = 5,
        combiner: str = "product",
    ) -> list[JoinPath]:
        self.ensure_current()
        src_key, dst_key = self._node(src), self._node(dst)
        return enumerate_paths(
            self._adjacency(),
            src_key,
            dst_key,
            max_hops=max_hops,
            limit=limit,
            combiner=combiner,
        )

    def reachable(self, src: TableKey | str, *, max_hops: int = 3) -> dict[TableKey, int]:
        self.ensure_current()
        return reachable_tables(self._adjacency(), self._node(src), max_hops=max_hops)

    def stats(self) -> dict:
        """Counters snapshot; deliberately does *not* force a sync."""
        with self._dirty_lock:
            pending = len(self._dirty)
        return {
            "tables": len(self._tables),
            "edges": len(self._edges),
            "edge_threshold": self.edge_threshold,
            "semantic_weight": self.semantic_weight,
            "synced_generation": self._synced_generation,
            "pending_invalidations": pending,
            "table_rebuilds": self._rebuilds,
            "signatures_cached": len(self._signatures),
        }

    # ------------------------------------------------------------------
    # Internals

    def _node(self, table: TableKey | str) -> TableKey:
        key = parse_table(table) if isinstance(table, str) else tuple(table)
        if key not in self._tables:
            from repro.errors import TableNotFoundError

            raise TableNotFoundError(key[1], key[0] or None)
        return key

    def _best_edges_from(self, key: TableKey) -> dict[TableKey, JoinEdge]:
        best: dict[TableKey, JoinEdge] = {}
        for pair in self._incident.get(key, ()):
            edge = self._edges[pair]
            other = edge.other_table(key)
            kept = best.get(other)
            if (
                kept is None
                or edge.confidence > kept.confidence
                or (
                    edge.confidence == kept.confidence
                    and (str(edge.left), str(edge.right)) < (str(kept.left), str(kept.right))
                )
            ):
                best[other] = edge
        return best

    def _adjacency(self) -> dict[TableKey, dict[TableKey, JoinEdge]]:
        """Best-edge-per-table-pair view; cached until the edge set changes."""
        if self._adjacency_cache is None:
            self._adjacency_cache = {
                key: self._best_edges_from(key) for key in self._tables
            }
        return self._adjacency_cache


def bulk_graph(engine: "WarpGate", **kwargs) -> JoinGraph:
    """Convenience: a fresh, fully-built graph over an already-indexed engine."""
    graph = JoinGraph(engine, **kwargs)
    graph.ensure_current()
    return graph
