"""Warehouse catalog: a hierarchy of databases and tables.

Mirrors the structure a Sigma user sees when connecting to a CDW: one
warehouse holds many databases, each holding many tables (Figure 1 of the
paper).  Only metadata operations live here — data access goes through the
:class:`~repro.warehouse.connector.WarehouseConnector` so that every byte
read is metered.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import DatabaseNotFoundError, TableNotFoundError
from repro.storage.schema import ColumnRef
from repro.storage.table import Table

__all__ = ["Database", "Warehouse"]


class Database:
    """A named collection of tables inside a warehouse."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("database name must be non-empty")
        self.name = name
        self._tables: dict[str, Table] = {}

    def __repr__(self) -> str:
        return f"Database({self.name!r}, {len(self._tables)} tables)"

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def add_table(self, table: Table) -> None:
        """Register (or replace) a table."""
        self._tables[table.name] = table

    def drop_table(self, name: str) -> Table:
        """Remove and return a table; raises :class:`TableNotFoundError`."""
        try:
            return self._tables.pop(name)
        except KeyError:
            raise TableNotFoundError(name, self.name) from None

    def table(self, name: str) -> Table:
        """Look up a table; raises :class:`TableNotFoundError` if absent."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name, self.name) from None

    def tables(self) -> Iterator[Table]:
        """Iterate tables in insertion order."""
        return iter(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all registered tables."""
        return tuple(self._tables)


class Warehouse:
    """A simulated cloud data warehouse: the root of the catalog."""

    def __init__(self, name: str = "warehouse") -> None:
        self.name = name
        self._databases: dict[str, Database] = {}

    def __repr__(self) -> str:
        return (
            f"Warehouse({self.name!r}, {len(self._databases)} databases, "
            f"{self.table_count} tables)"
        )

    def __contains__(self, database_name: str) -> bool:
        return database_name in self._databases

    def create_database(self, name: str) -> Database:
        """Create (or return the existing) database ``name``."""
        if name not in self._databases:
            self._databases[name] = Database(name)
        return self._databases[name]

    def database(self, name: str) -> Database:
        """Look up a database; raises :class:`DatabaseNotFoundError`."""
        try:
            return self._databases[name]
        except KeyError:
            raise DatabaseNotFoundError(name) from None

    def databases(self) -> Iterator[Database]:
        """Iterate databases in creation order."""
        return iter(self._databases.values())

    @property
    def database_names(self) -> tuple[str, ...]:
        """Names of all databases."""
        return tuple(self._databases)

    @property
    def table_count(self) -> int:
        """Total number of tables across databases."""
        return sum(len(database) for database in self._databases.values())

    @property
    def column_count(self) -> int:
        """Total number of columns across all tables."""
        return sum(
            table.column_count
            for database in self._databases.values()
            for table in database.tables()
        )

    @property
    def row_count(self) -> int:
        """Total number of rows across all tables."""
        return sum(
            table.row_count
            for database in self._databases.values()
            for table in database.tables()
        )

    def add_table(self, database_name: str, table: Table) -> None:
        """Convenience: create the database if needed and add the table."""
        self.create_database(database_name).add_table(table)

    def drop_table(self, database_name: str, table_name: str) -> Table:
        """Remove and return a table; raises if the database or table is absent."""
        return self.database(database_name).drop_table(table_name)

    def resolve(self, ref: ColumnRef) -> Table:
        """Return the table owning ``ref`` (metadata-level resolution)."""
        return self.database(ref.database).table(ref.table)

    def column_refs(self) -> Iterator[ColumnRef]:
        """Iterate refs of every column in the warehouse."""
        for database in self._databases.values():
            for table in database.tables():
                for column in table.columns:
                    yield ColumnRef(database.name, table.name, column.name)

    def table_refs(self) -> Iterator[tuple[str, Table]]:
        """Iterate ``(database_name, table)`` pairs."""
        for database in self._databases.values():
            for table in database.tables():
                yield database.name, table
