"""Warehouse connector: the metered data-access path.

All data leaving the simulated CDW flows through here.  Each scan:

* counts the bytes of the cells actually fetched (sampling fetches fewer
  rows and therefore meters fewer bytes),
* charges the configured :class:`~repro.warehouse.cost.UsageMeter`,
* models scan latency as ``base + bytes / bandwidth`` and *accrues it as
  simulated seconds* in the receipt (never sleeps — benchmarks read the
  simulated component separately from measured wall-clock),
* optionally enforces a byte budget, raising
  :class:`~repro.errors.ScanBudgetExceededError` when a scan would blow it.

This reproduces the paper's central operational constraint: loading data out
of a CDW dominates end-to-end discovery time, and sampling is the lever that
removes that bottleneck.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ScanBudgetExceededError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.cost import UsageMeter
from repro.warehouse.sampling import Sampler

__all__ = ["WarehouseConnector", "ScanReceipt", "ScanStats"]

# Latency model defaults: per-scan setup (network round trip + query
# compilation) and effective unload bandwidth.  These are only used to
# *simulate* load time and are surfaced separately from real wall-clock.
# The base latency is scaled down with the corpora (generators shrink row
# counts ~100-1000x from the paper's testbeds), keeping the paper's
# proportions: load time dominates lookup, and response time grows roughly
# linearly with table size.
_DEFAULT_BASE_LATENCY_S = 0.008
_DEFAULT_BANDWIDTH_BYTES_PER_S = 200 * 1024**2

# Per-scan receipts kept for inspection; older ones are discarded so a
# long-lived serving process cannot accumulate them without bound.
_MAX_RETAINED_RECEIPTS = 10_000


@dataclass(frozen=True, slots=True)
class ScanReceipt:
    """Outcome of one scan: what was fetched and what it cost."""

    ref: str
    rows_fetched: int
    rows_total: int
    scanned_bytes: int
    simulated_seconds: float
    charged_dollars: float

    @property
    def sampled(self) -> bool:
        """True when the scan fetched fewer rows than the table holds."""
        return self.rows_fetched < self.rows_total


@dataclass
class ScanStats:
    """Aggregate scan counters for a connector."""

    scan_count: int = 0
    rows_fetched: int = 0
    scanned_bytes: int = 0
    simulated_seconds: float = 0.0

    def record(self, receipt: ScanReceipt) -> None:
        """Fold one receipt into the aggregate."""
        self.scan_count += 1
        self.rows_fetched += receipt.rows_fetched
        self.scanned_bytes += receipt.scanned_bytes
        self.simulated_seconds += receipt.simulated_seconds

    def reset(self) -> None:
        """Zero all counters."""
        self.scan_count = 0
        self.rows_fetched = 0
        self.scanned_bytes = 0
        self.simulated_seconds = 0.0


class WarehouseConnector:
    """Metered access to a :class:`Warehouse`."""

    def __init__(
        self,
        warehouse: Warehouse,
        *,
        meter: UsageMeter | None = None,
        scan_budget_bytes: int | None = None,
        base_latency_s: float = _DEFAULT_BASE_LATENCY_S,
        bandwidth_bytes_per_s: float = _DEFAULT_BANDWIDTH_BYTES_PER_S,
    ) -> None:
        if scan_budget_bytes is not None and scan_budget_bytes < 0:
            raise ValueError("scan_budget_bytes must be non-negative or None")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.warehouse = warehouse
        self.meter = meter if meter is not None else UsageMeter()
        self.scan_budget_bytes = scan_budget_bytes
        self.base_latency_s = base_latency_s
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.stats = ScanStats()
        # Bounded: a long-lived serving process scans on every cache-miss
        # query, and an unbounded audit trail would grow until OOM.
        # Aggregates in ``stats``/``meter`` still cover the full lifetime.
        self._receipts: deque[ScanReceipt] = deque(maxlen=_MAX_RETAINED_RECEIPTS)

    # -- internal ----------------------------------------------------------------

    def _charge(self, ref: str, column_bytes: int, rows_fetched: int, rows_total: int) -> ScanReceipt:
        if self.scan_budget_bytes is not None:
            remaining = self.scan_budget_bytes - self.stats.scanned_bytes
            if column_bytes > remaining:
                raise ScanBudgetExceededError(column_bytes, max(remaining, 0))
        simulated = self.base_latency_s + column_bytes / self.bandwidth_bytes_per_s
        dollars = self.meter.record_scan(column_bytes)
        receipt = ScanReceipt(
            ref=ref,
            rows_fetched=rows_fetched,
            rows_total=rows_total,
            scanned_bytes=column_bytes,
            simulated_seconds=simulated,
            charged_dollars=dollars,
        )
        self.stats.record(receipt)
        self._receipts.append(receipt)
        return receipt

    # -- public API -----------------------------------------------------------------

    def scan_column(
        self,
        ref: ColumnRef,
        *,
        sampler: Sampler | None = None,
    ) -> tuple[Column, ScanReceipt]:
        """Fetch one column (optionally sampled) and meter the scan.

        Returns the fetched column and the :class:`ScanReceipt`.
        """
        table = self.warehouse.resolve(ref)
        column = table.column(ref.column)
        total_rows = len(column)
        fetched = (
            sampler.sample_column(column, seed_key=str(ref)) if sampler else column
        )
        receipt = self._charge(str(ref), fetched.estimated_bytes(), len(fetched), total_rows)
        return fetched, receipt

    def scan_table(
        self,
        database: str,
        table_name: str,
        *,
        sampler: Sampler | None = None,
    ) -> tuple[Table, ScanReceipt]:
        """Fetch a whole table (optionally row-sampled) and meter the scan.

        Sampling picks one shared set of row indices so the fetched table
        stays rectangular, matching how ``TABLESAMPLE`` behaves.
        """
        table = self.warehouse.database(database).table(table_name)
        total_rows = table.row_count
        if sampler is not None and sampler.sample_size is not None and (
            total_rows > sampler.sample_size
        ):
            indices = sampler.select_indices(
                total_rows, seed_key=f"{database}.{table_name}"
            )
            fetched = table.take(indices)
        else:
            fetched = table
        receipt = self._charge(
            f"{database}.{table_name}.*",
            fetched.estimated_bytes(),
            fetched.row_count,
            total_rows,
        )
        return fetched, receipt

    def peek_schema(self, database: str, table_name: str) -> tuple[str, ...]:
        """Metadata read (free): column names of a table."""
        return self.warehouse.database(database).table(table_name).column_names

    @property
    def receipts(self) -> tuple[ScanReceipt, ...]:
        """The most recent receipts (up to 10k), in scan order."""
        return tuple(self._receipts)

    def reset_metering(self) -> None:
        """Zero stats, receipts, and the usage meter."""
        self.stats.reset()
        self.meter.reset()
        self._receipts.clear()
