"""Column sampling strategies.

§3.1.3 and §4.4 of the paper study how sample size affects embedding-based
discovery.  A :class:`Sampler` maps a column's row count to the row indices
to fetch; the connector then scans only those rows, so sampling directly
reduces metered bytes.

Strategies:

* :class:`HeadSampler` — first ``n`` rows (the cheapest scan pattern; models
  a ``LIMIT n`` query).
* :class:`UniformSampler` — ``n`` indices uniformly without replacement
  (models ``TABLESAMPLE``).
* :class:`ReservoirSampler` — classic Algorithm R; statistically identical
  to uniform but implementable over a stream, included because profiling
  literature (and the MinHash sensitivity result the paper cites) uses it.
* :class:`DistinctSampler` — greedily prefers previously unseen values, a
  cheap stand-in for distinct-aware sampling in warehouses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro._util import rng_for
from repro.storage.column import Column

__all__ = [
    "Sampler",
    "HeadSampler",
    "UniformSampler",
    "ReservoirSampler",
    "DistinctSampler",
    "make_sampler",
]


class Sampler(ABC):
    """Strategy interface: pick row indices to scan for one column."""

    def __init__(self, sample_size: int | None) -> None:
        if sample_size is not None and sample_size <= 0:
            raise ValueError(f"sample_size must be positive or None, got {sample_size}")
        self.sample_size = sample_size

    @property
    def name(self) -> str:
        """Short strategy name used in configs and reports."""
        return type(self).__name__.removesuffix("Sampler").lower()

    def effective_size(self, row_count: int) -> int:
        """Number of rows that will actually be fetched."""
        if self.sample_size is None:
            return row_count
        return min(self.sample_size, row_count)

    @abstractmethod
    def select_indices(self, row_count: int, *, seed_key: str = "") -> Sequence[int]:
        """Return the row indices to fetch from a column of ``row_count`` rows.

        ``seed_key`` keys the per-column RNG so different columns draw
        independent samples deterministically.
        """

    def sample_column(self, column: Column, *, seed_key: str = "") -> Column:
        """Apply the strategy to a concrete column."""
        if self.sample_size is None or len(column) <= self.sample_size:
            return column
        indices = self.select_indices(len(column), seed_key=seed_key)
        return column.sample(indices)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(sample_size={self.sample_size})"


class HeadSampler(Sampler):
    """First-n sampling — models ``SELECT ... LIMIT n``."""

    def select_indices(self, row_count: int, *, seed_key: str = "") -> Sequence[int]:
        return range(self.effective_size(row_count))


class UniformSampler(Sampler):
    """Uniform sampling without replacement — models ``TABLESAMPLE (n ROWS)``."""

    def select_indices(self, row_count: int, *, seed_key: str = "") -> Sequence[int]:
        size = self.effective_size(row_count)
        if size >= row_count:
            return range(row_count)
        rng = rng_for("uniform-sampler", seed_key, row_count)
        indices = rng.choice(row_count, size=size, replace=False)
        indices.sort()
        return indices.tolist()


class ReservoirSampler(Sampler):
    """Algorithm R reservoir sampling over a simulated stream of rows."""

    def select_indices(self, row_count: int, *, seed_key: str = "") -> Sequence[int]:
        size = self.effective_size(row_count)
        if size >= row_count:
            return range(row_count)
        rng = rng_for("reservoir-sampler", seed_key, row_count)
        reservoir = list(range(size))
        for index in range(size, row_count):
            slot = int(rng.integers(0, index + 1))
            if slot < size:
                reservoir[slot] = index
        reservoir.sort()
        return reservoir


class DistinctSampler(Sampler):
    """Prefers rows with values not yet seen, then fills uniformly.

    Needs the column contents, so :meth:`select_indices` falls back to
    uniform; the value-aware path lives in :meth:`sample_column`.
    """

    def select_indices(self, row_count: int, *, seed_key: str = "") -> Sequence[int]:
        return UniformSampler(self.sample_size).select_indices(
            row_count, seed_key=seed_key
        )

    def sample_column(self, column: Column, *, seed_key: str = "") -> Column:
        if self.sample_size is None or len(column) <= self.sample_size:
            return column
        size = self.effective_size(len(column))
        seen: set[object] = set()
        fresh: list[int] = []
        repeats: list[int] = []
        for index, value in enumerate(column.values):
            if value is None:
                repeats.append(index)
            elif value not in seen:
                seen.add(value)
                fresh.append(index)
            else:
                repeats.append(index)
        picked = fresh[:size]
        if len(picked) < size:
            rng = rng_for("distinct-sampler", seed_key, len(column))
            need = size - len(picked)
            filler = rng.choice(len(repeats), size=min(need, len(repeats)), replace=False)
            picked.extend(repeats[int(i)] for i in filler)
        picked.sort()
        return column.sample(picked)


_STRATEGIES: dict[str, type[Sampler]] = {
    "head": HeadSampler,
    "uniform": UniformSampler,
    "reservoir": ReservoirSampler,
    "distinct": DistinctSampler,
}


def make_sampler(strategy: str, sample_size: int | None) -> Sampler:
    """Factory: build a sampler from a strategy name.

    >>> make_sampler("head", 100).name
    'head'
    """
    try:
        cls = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown sampling strategy {strategy!r}; "
            f"available: {', '.join(sorted(_STRATEGIES))}"
        ) from None
    return cls(sample_size)
