"""Simulated cloud data warehouse (CDW) substrate.

The paper's system pulls data out of Snowflake-style warehouses where scans
are billed per byte and full passes over billion-row tables are infeasible.
This package simulates that environment faithfully enough to exercise the
same code paths:

* :class:`Warehouse` / :class:`Database` — catalog hierarchy;
* :class:`WarehouseConnector` — the only sanctioned data access path, with
  bytes-scanned metering, a latency model, and optional scan budgets;
* sampling strategies (head / uniform / reservoir / distinct) that trade
  scan cost against profile fidelity;
* :class:`PricingModel` — usage-based pricing, used by the §5.1 scale study.
"""

from repro.warehouse.catalog import Database, Warehouse
from repro.warehouse.connector import ScanReceipt, ScanStats, WarehouseConnector
from repro.warehouse.cost import PricingModel, UsageMeter
from repro.warehouse.sampling import (
    DistinctSampler,
    HeadSampler,
    ReservoirSampler,
    Sampler,
    UniformSampler,
    make_sampler,
)

__all__ = [
    "Database",
    "Warehouse",
    "WarehouseConnector",
    "ScanReceipt",
    "ScanStats",
    "PricingModel",
    "UsageMeter",
    "Sampler",
    "HeadSampler",
    "UniformSampler",
    "ReservoirSampler",
    "DistinctSampler",
    "make_sampler",
]
