"""Usage-based pricing for warehouse scans.

CDW vendors with pay-as-you-go pricing charge per byte scanned (the paper
cites this as the reason full-corpus profiling is monetarily expensive).
:class:`PricingModel` converts scanned bytes to dollars and
:class:`UsageMeter` accumulates charges across an indexing run, which the
§5.1 scale benchmark uses to compare full-scan vs sampled indexing cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PricingModel", "UsageMeter"]

_GB = 1024**3


@dataclass(frozen=True, slots=True)
class PricingModel:
    """Per-GB-scanned pricing with a per-query minimum, BigQuery-style.

    ``dollars_per_gb`` defaults to the common on-demand rate of $5/TB =
    ~$0.005/GB scanned; ``minimum_bytes`` models the 10 MB per-query floor.
    """

    dollars_per_gb: float = 5.0 / 1024.0
    minimum_bytes: int = 10 * 1024**2

    def cost_of_scan(self, scanned_bytes: int) -> float:
        """Dollar cost of a single scan of ``scanned_bytes``."""
        if scanned_bytes < 0:
            raise ValueError(f"scanned_bytes must be non-negative, got {scanned_bytes}")
        billed = max(scanned_bytes, self.minimum_bytes) if scanned_bytes > 0 else 0
        return billed / _GB * self.dollars_per_gb


@dataclass
class UsageMeter:
    """Accumulates scan counts, bytes, and dollar charges."""

    pricing: PricingModel = field(default_factory=PricingModel)
    scan_count: int = 0
    scanned_bytes: int = 0
    charged_dollars: float = 0.0

    def record_scan(self, scanned_bytes: int) -> float:
        """Record one scan; returns the dollar charge for it."""
        charge = self.pricing.cost_of_scan(scanned_bytes)
        self.scan_count += 1
        self.scanned_bytes += scanned_bytes
        self.charged_dollars += charge
        return charge

    def reset(self) -> None:
        """Zero all counters (pricing model is kept)."""
        self.scan_count = 0
        self.scanned_bytes = 0
        self.charged_dollars = 0.0
