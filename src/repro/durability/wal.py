"""Append-only write-ahead log with length+CRC framing.

One fsync'd record per acknowledged index mutation.  A record is one
frame::

    <u32 payload length, little-endian> <u32 crc32(payload)> <payload>

where the payload is UTF-8 JSON describing the mutation's *effect* (the
refs and exact float32 vector bytes, not the command that produced
them), so replay needs no warehouse access and is bitwise-deterministic.

Frames are appended with a single ``os.write`` call; a crash mid-append
therefore leaves a *short* final frame (torn tail), never a complete
frame with garbage inside it.  :func:`scan_wal` exploits that asymmetry:

* a frame whose header or payload extends past EOF is a **torn tail** —
  expected crash damage, reported and discarded;
* a *complete* frame whose CRC mismatches is **corruption** — a typed
  :class:`~repro.errors.WalCorruptionError`, never silently skipped.
"""

from __future__ import annotations

import base64
import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.durability import faultpoints
from repro.errors import WalCorruptionError

__all__ = ["WriteAheadLog", "decode_vectors", "encode_vectors", "scan_wal"]

_HEADER = struct.Struct("<II")
#: Upper bound on one record's payload; a complete frame claiming more is
#: corruption (the biggest legitimate record is one table's worth of
#: float32 vectors — far below this).
_MAX_PAYLOAD = 256 * 1024 * 1024
_FSYNC_POLICIES = ("always", "never")


def encode_vectors(vectors: np.ndarray) -> str:
    """Base64 of the exact float32 bytes (replay is bitwise-faithful)."""
    array = np.ascontiguousarray(vectors, dtype=np.float32)
    return base64.b64encode(array.tobytes()).decode("ascii")


def decode_vectors(encoded: str, n_rows: int, dim: int) -> np.ndarray:
    """Inverse of :func:`encode_vectors`."""
    raw = base64.b64decode(encoded.encode("ascii"))
    return np.frombuffer(raw, dtype=np.float32).reshape(n_rows, dim).copy()


class WriteAheadLog:
    """The store's append-only log; one instance owns the file handle.

    Parameters
    ----------
    path:
        Log file location (created empty on first append).
    fsync:
        ``always`` (default: every append is fsync'd before it returns —
        the acknowledged-mutation durability contract) or ``never``
        (OS-buffered appends; crash may lose the tail — bench/test use).
    """

    def __init__(self, path: str | Path, *, fsync: str = "always") -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; choose from {_FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._fd: int | None = None

    # -- handle management --------------------------------------------------------

    def _handle(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- append -------------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Frame, write, and (policy permitting) fsync one record.

        The frame ships in a single ``os.write`` so a crash leaves a
        short tail, not an interleaved half-frame.  The caller must not
        acknowledge the mutation until this returns.
        """
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        faultpoints.fire("wal.append.before_write")
        fd = self._handle()
        os.write(fd, frame)
        faultpoints.fire("wal.append.after_write")
        if self.fsync == "always":
            os.fsync(fd)
        faultpoints.fire("wal.append.after_fsync")

    # -- truncation (checkpoint) --------------------------------------------------

    def truncate(self) -> None:
        """Discard every record (the manifest has absorbed them)."""
        faultpoints.fire("wal.truncate.before")
        self.close()
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        faultpoints.fire("wal.truncate.after")


def scan_wal(path: str | Path) -> tuple[list[dict], dict]:
    """Parse every complete record; report (and tolerate) a torn tail.

    Returns ``(records, info)`` where ``info`` carries ``torn_tail_bytes``
    (0 when the log ends on a frame boundary) and ``scanned_bytes``.
    Raises :class:`WalCorruptionError` for a complete frame with a CRC
    mismatch, an over-limit length on a complete frame, unparseable
    JSON, or out-of-order sequence numbers.
    """
    path = Path(path)
    if not path.exists():
        return [], {"torn_tail_bytes": 0, "scanned_bytes": 0}
    data = path.read_bytes()
    records: list[dict] = []
    offset = 0
    last_seq = None
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            break  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > len(data):
            break  # torn payload (covers a garbage length at the tail too)
        if length > _MAX_PAYLOAD:
            raise WalCorruptionError(
                path, offset, f"frame claims {length} payload bytes"
            )
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError(path, offset, "payload CRC mismatch")
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WalCorruptionError(path, offset, str(error)) from error
        if not isinstance(record, dict) or "seq" not in record:
            raise WalCorruptionError(path, offset, "record is not a mutation")
        seq = record["seq"]
        if last_seq is not None and seq <= last_seq:
            raise WalCorruptionError(
                path, offset, f"sequence went backwards ({last_seq} -> {seq})"
            )
        last_seq = seq
        records.append(record)
        offset = end
    return records, {
        "torn_tail_bytes": len(data) - offset,
        "scanned_bytes": offset,
    }
