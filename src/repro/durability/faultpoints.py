"""Deterministic fault injection for the durability subsystem.

Every write/fsync/rename site in the durable store fires a named *crash
point* through :func:`fire`.  Unarmed, a fire is one dictionary lookup —
effectively free on the hot path.  Tests arm a point with
:func:`crash_at` (or :func:`arm` with a custom action) and the next fire
raises :class:`InjectedCrash`, which derives from :class:`BaseException`
so ordinary ``except Exception`` recovery code cannot swallow it — the
injection simulates the process dying at exactly that instruction, and
nothing downstream of the crash point may run.

The registry is the crash-matrix test's source of truth: the matrix in
``tests/test_failure_injection.py`` iterates :data:`CRASH_POINTS`, so a
new durability code path that adds a fire site is automatically covered
(and a typo'd point name fails loudly at arm time).
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from contextlib import contextmanager

__all__ = [
    "CRASH_POINTS",
    "InjectedCrash",
    "arm",
    "armed",
    "crash_at",
    "disarm",
    "disarm_all",
    "fire",
]

#: Every registered crash point, in the order the write paths reach them.
#: ``*.before*`` points crash with the effect not yet durable;
#: ``*.after*`` points crash with the effect durable but the caller
#: never acknowledged — both must recover to a well-defined state.
CRASH_POINTS = (
    # WAL append: before the frame is written, after the write but before
    # the fsync, and after the fsync (durable, unacknowledged).
    "wal.append.before_write",
    "wal.append.after_write",
    "wal.append.after_fsync",
    # Segment seal: before the temp payload is written, after the temp is
    # written+fsynced but not yet visible, and after the atomic rename.
    "segment.seal.before_write",
    "segment.seal.after_write",
    "segment.seal.after_rename",
    # Manifest publish: before the temp manifest is written, after it is
    # written+fsynced but the old manifest still rules, and after the
    # os.replace made the new manifest the store's truth.
    "manifest.publish.before_write",
    "manifest.publish.before_replace",
    "manifest.publish.after_replace",
    # WAL truncation at the end of a checkpoint.
    "wal.truncate.before",
    "wal.truncate.after",
    # Atomic artifact save (save_index): around its os.replace.
    "artifact.save.before_replace",
    "artifact.save.after_replace",
)

_lock = threading.Lock()
_hooks: dict[str, Callable[[str], None]] = {}


class InjectedCrash(BaseException):
    """A simulated process death at a registered crash point.

    Deliberately *not* an :class:`Exception`: recovery code that guards
    I/O with ``except Exception`` must not be able to absorb an injected
    crash and keep running past the point of death.
    """

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"injected crash at {point}")


def _check(point: str) -> None:
    if point not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {point!r}; registered: {list(CRASH_POINTS)}"
        )


def fire(point: str) -> None:
    """Hit a crash point; raises/acts only if a test armed it."""
    hook = _hooks.get(point)
    if hook is not None:
        hook(point)


def arm(point: str, action: Callable[[str], None] | None = None) -> None:
    """Arm ``point`` with ``action`` (default: raise :class:`InjectedCrash`)."""
    _check(point)
    with _lock:
        _hooks[point] = action if action is not None else _raise


def _raise(point: str) -> None:
    raise InjectedCrash(point)


def disarm(point: str) -> None:
    """Disarm one point (idempotent)."""
    _check(point)
    with _lock:
        _hooks.pop(point, None)


def disarm_all() -> None:
    """Disarm every point (test teardown)."""
    with _lock:
        _hooks.clear()


@contextmanager
def armed(point: str, action: Callable[[str], None] | None = None):
    """Context manager: arm ``point`` for the body, disarm on exit."""
    arm(point, action)
    try:
        yield
    finally:
        disarm(point)


def crash_at(point: str, *, after: int = 0) -> None:
    """Arm ``point`` to raise on its ``after``-th subsequent fire.

    ``after=0`` crashes on the next fire; ``after=2`` lets two fires
    pass and crashes on the third — so a test can survive setup traffic
    and kill exactly the mutation under scrutiny.
    """
    remaining = {"n": int(after)}

    def action(name: str) -> None:
        if remaining["n"] <= 0:
            raise InjectedCrash(name)
        remaining["n"] -= 1

    arm(point, action)
