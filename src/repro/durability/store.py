"""Crash-safe durable index store: segments + manifest + WAL.

Directory layout::

    <durable_dir>/
        MANIFEST            # JSON, published atomically (temp -> os.replace)
        wal.log             # append-only mutation log (see repro.durability.wal)
        segments/
            seg-000001.npz  # immutable, checksummed, mmap-able payload

**Invariants.**  The manifest is the store's only source of truth: it
names the segment files that make up the checkpointed state (with their
byte sizes and CRC32s) and the WAL sequence number already absorbed into
them (``wal_applied_seq``).  Segments are immutable once renamed into
place; every state change is either

* a **WAL append** — one fsync'd, CRC-framed record per acknowledged
  mutation (the ack barrier: the serving layer returns success only
  after the record is durable), or
* a **checkpoint** — seal the engine's current payload as a fresh
  segment (write temp, fsync, ``os.replace``, fsync directory), publish
  a new manifest pointing at it with ``wal_applied_seq`` advanced past
  every logged record, then truncate the WAL.

A crash at *any* point leaves a recoverable store: the old manifest
rules until the ``os.replace`` lands (rename is atomic on POSIX), WAL
records with ``seq <= wal_applied_seq`` are skipped on replay (so a
crash between manifest publish and WAL truncation is harmless), and a
torn WAL tail — the unacknowledged mutation in flight — is discarded.
Every write/fsync/rename site fires a named crash point
(:mod:`repro.durability.faultpoints`); the crash-matrix test kills the
process at each one and asserts recovery restores exactly the
last-acknowledged state.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.durability import faultpoints
from repro.durability.wal import (
    WriteAheadLog,
    decode_vectors,
    encode_vectors,
    scan_wal,
)
from repro.errors import (
    ArtifactCorruptionError,
    DurabilityError,
    ManifestError,
    SegmentChecksumError,
)
from repro.storage.schema import ColumnRef

__all__ = ["DurableIndexStore", "fsck_store", "read_manifest_file"]

MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
SEGMENT_DIR = "segments"
_MANIFEST_FORMAT = 1


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _file_crc32(path: Path, chunk_size: int = 1 << 20) -> int:
    crc = 0
    with path.open("rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc


def read_manifest_file(path: Path) -> dict:
    """Parse and structurally validate a manifest file."""
    if not path.exists():
        raise ManifestError(path, "missing (store was never checkpointed)")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ManifestError(path, f"unparseable JSON: {error}") from error
    if not isinstance(manifest, dict):
        raise ManifestError(path, "not a JSON object")
    if manifest.get("format_version") != _MANIFEST_FORMAT:
        raise ManifestError(
            path,
            f"unsupported format_version {manifest.get('format_version')!r}",
        )
    for key in ("config", "segments", "wal_applied_seq", "manifest_seq"):
        if key not in manifest:
            raise ManifestError(path, f"missing key {key!r}")
    return manifest


def _refs_to_parts(refs: list[ColumnRef]) -> np.ndarray:
    return np.array(
        [[ref.database, ref.table, ref.column] for ref in refs], dtype=np.str_
    ).reshape(len(refs), 3)


def _parts_to_refs(parts: np.ndarray) -> list[ColumnRef]:
    parts = np.asarray(parts)
    return list(map(ColumnRef, *parts.T.tolist())) if parts.size else []


class DurableIndexStore:
    """One durable store rooted at ``directory`` (single writer).

    Parameters
    ----------
    directory:
        Store root; created (with its ``segments/`` subdirectory) when
        missing.
    fsync:
        WAL fsync policy — ``always`` (acknowledged mutations survive a
        crash; default) or ``never`` (OS-buffered; bench/test use).
    checkpoint_every:
        Auto-compact after this many WAL records (0 disables; call
        :meth:`checkpoint` explicitly).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        checkpoint_every: int = 0,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / SEGMENT_DIR).mkdir(exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self._wal = WriteAheadLog(self.directory / WAL_NAME, fsync=fsync)
        self._manifest: dict | None = None
        self._next_seq = 1
        self._pending_records = 0
        if self.has_manifest:
            manifest = self.read_manifest()
            applied = int(manifest.get("wal_applied_seq", 0))
            records, _info = scan_wal(self.wal_path)
            live = [r for r in records if int(r["seq"]) > applied]
            self._next_seq = max([applied, *(int(r["seq"]) for r in records)]) + 1
            self._pending_records = len(live)

    # -- paths / introspection ----------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_NAME

    @property
    def segment_dir(self) -> Path:
        return self.directory / SEGMENT_DIR

    @property
    def has_manifest(self) -> bool:
        return self.manifest_path.exists()

    @property
    def fsync(self) -> str:
        return self._wal.fsync

    @property
    def pending_records(self) -> int:
        """WAL records appended (or replayable) since the last checkpoint."""
        return self._pending_records

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "DurableIndexStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def read_manifest(self) -> dict:
        """Parse and structurally validate the manifest (cached)."""
        if self._manifest is None:
            self._manifest = read_manifest_file(self.manifest_path)
        return self._manifest

    def stats(self) -> dict:
        """Counters for the serving layer's ``IndexStats.durability``."""
        manifest = self.read_manifest() if self.has_manifest else None
        return {
            "directory": str(self.directory),
            "fsync": self.fsync,
            "checkpoint_every": self.checkpoint_every,
            "manifest_seq": manifest.get("manifest_seq") if manifest else None,
            "wal_pending_records": self._pending_records,
        }

    # -- WAL append (the ack barrier) ---------------------------------------------

    def ensure_base(self, system) -> None:
        """Checkpoint once when the store is empty, establishing a base.

        The first WAL record needs a manifest to replay onto; a brand-new
        store absorbs the engine's current (possibly bulk-indexed) state
        as segment + manifest before any record is appended.
        """
        if not self.has_manifest:
            self.checkpoint(system)

    def log_upsert(self, refs: list[ColumnRef], vectors: np.ndarray) -> int:
        """Durably record ``refs`` now carrying ``vectors`` (exact bytes)."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[0] != len(refs):
            raise DurabilityError(
                f"upsert shape mismatch: {len(refs)} refs, "
                f"vectors {vectors.shape}"
            )
        return self._append(
            {
                "op": "upsert",
                "refs": [[r.database, r.table, r.column] for r in refs],
                "dim": int(vectors.shape[1]),
                "vectors": encode_vectors(vectors),
            }
        )

    def log_remove(self, refs: list[ColumnRef]) -> int:
        """Durably record the eviction of ``refs``."""
        return self._append(
            {
                "op": "remove",
                "refs": [[r.database, r.table, r.column] for r in refs],
            }
        )

    def _append(self, record: dict) -> int:
        seq = self._next_seq
        record["seq"] = seq
        self._wal.append(record)
        self._next_seq = seq + 1
        self._pending_records += 1
        return seq

    def maybe_checkpoint(self, system) -> bool:
        """Auto-checkpoint when the pending-record budget is spent."""
        if (
            self.checkpoint_every > 0
            and self._pending_records >= self.checkpoint_every
        ):
            self.checkpoint(system)
            return True
        return False

    # -- checkpoint ---------------------------------------------------------------

    def checkpoint(self, system) -> dict:
        """Compact the engine's state into a fresh segment + manifest.

        Publish order is the crash-safety argument:

        1. seal the segment (temp + fsync + rename + dir fsync) — a crash
           here leaves an orphan file the old manifest never references;
        2. publish the manifest naming it, with ``wal_applied_seq`` set
           past every logged record — a crash *before* the replace keeps
           the old manifest + full WAL (replay as if no checkpoint),
           *after* it the new manifest rules and stale WAL records are
           skipped by sequence number;
        3. truncate the WAL and delete superseded segments — pure
           cleanup; a crash here is absorbed by the seq skip / fsck's
           orphan report.
        """
        from repro.core.persistence import _export_sorted

        system = getattr(system, "engine", system)
        refs, vectors, _signatures = _export_sorted(system)
        applied_seq = self._next_seq - 1
        manifest_seq = 1
        previous_segments: list[str] = []
        if self.has_manifest:
            manifest = self.read_manifest()
            manifest_seq = int(manifest["manifest_seq"]) + 1
            previous_segments = [
                entry["name"] for entry in manifest["segments"]
            ]
        segment = self._seal_segment(manifest_seq, refs, vectors)
        from dataclasses import asdict

        manifest = {
            "format_version": _MANIFEST_FORMAT,
            "manifest_seq": manifest_seq,
            "config": asdict(system.config),
            "segments": [segment],
            "wal_applied_seq": applied_seq,
        }
        self._publish_manifest(manifest)
        self._wal.truncate()
        self._pending_records = 0
        for name in previous_segments:
            if name != segment["name"]:
                (self.segment_dir / name).unlink(missing_ok=True)
        return manifest

    def _seal_segment(
        self, manifest_seq: int, refs: list[ColumnRef], vectors: np.ndarray
    ) -> dict:
        name = f"seg-{manifest_seq:06d}.npz"
        final = self.segment_dir / name
        tmp = self.segment_dir / f".{name}.tmp"
        header = {"rows": len(refs), "dim": int(vectors.shape[1]) if len(refs) else 0}
        faultpoints.fire("segment.seal.before_write")
        with tmp.open("wb") as handle:
            np.savez(
                handle,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                refs=_refs_to_parts(refs),
                vectors=np.ascontiguousarray(vectors, dtype=np.float32),
            )
            handle.flush()
            os.fsync(handle.fileno())
        faultpoints.fire("segment.seal.after_write")
        os.replace(tmp, final)
        faultpoints.fire("segment.seal.after_rename")
        _fsync_dir(self.segment_dir)
        return {
            "name": name,
            "rows": len(refs),
            "bytes": final.stat().st_size,
            "crc32": _file_crc32(final),
        }

    def _publish_manifest(self, manifest: dict) -> None:
        payload = json.dumps(manifest, indent=2).encode("utf-8")
        tmp = self.directory / f".{MANIFEST_NAME}.tmp"
        faultpoints.fire("manifest.publish.before_write")
        with tmp.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        faultpoints.fire("manifest.publish.before_replace")
        os.replace(tmp, self.manifest_path)
        faultpoints.fire("manifest.publish.after_replace")
        _fsync_dir(self.directory)
        self._manifest = manifest

    # -- recovery -----------------------------------------------------------------

    def _load_segment(self, entry: dict) -> tuple[list[ColumnRef], np.ndarray]:
        """Validate one manifest-listed segment and load its payload."""
        path = self.segment_dir / entry["name"]
        if not path.exists():
            raise SegmentChecksumError(path, int(entry["crc32"]), 0)
        if path.stat().st_size != int(entry["bytes"]):
            raise ArtifactCorruptionError(
                path,
                detail=(
                    f"size {path.stat().st_size} != manifest's {entry['bytes']}"
                ),
            )
        actual = _file_crc32(path)
        if actual != int(entry["crc32"]):
            raise SegmentChecksumError(path, int(entry["crc32"]), actual)
        from repro.index.mmapio import load_npz_arrays

        try:
            payload = load_npz_arrays(path, allow_pickle=False)
            refs = _parts_to_refs(payload["refs"])
            vectors = np.asarray(payload["vectors"], dtype=np.float32)
        except (KeyError, ValueError, OSError) as error:
            raise ArtifactCorruptionError(path, detail=str(error)) from error
        if len(refs) != int(entry["rows"]) or vectors.shape[0] != len(refs):
            raise ArtifactCorruptionError(
                path, detail="row count disagrees with the manifest"
            )
        return refs, vectors

    def recover(self) -> tuple[dict, list[ColumnRef], np.ndarray, dict]:
        """Rebuild the last-acknowledged logical state from disk.

        Returns ``(config_dict, refs, vectors, report)``.  Applies the
        manifest's segments in order (last writer wins per ref), then
        replays WAL records with ``seq > wal_applied_seq`` — upserts
        update in place or append, removes drop (idempotently) — so the
        result is exactly the acknowledged mutation history, bitwise.
        """
        manifest = self.read_manifest()
        state: dict[ColumnRef, np.ndarray] = {}
        order: list[ColumnRef] = []
        for entry in manifest["segments"]:
            seg_refs, seg_vectors = self._load_segment(entry)
            for ref, vector in zip(seg_refs, seg_vectors):
                if ref not in state:
                    order.append(ref)
                state[ref] = vector
        rows_from_segments = len(order)
        applied = int(manifest["wal_applied_seq"])
        records, info = scan_wal(self.wal_path)
        replayed = skipped = 0
        for record in records:
            if int(record["seq"]) <= applied:
                skipped += 1
                continue
            refs = [ColumnRef(*parts) for parts in record["refs"]]
            if record["op"] == "upsert":
                vectors = decode_vectors(
                    record["vectors"], len(refs), int(record["dim"])
                )
                for ref, vector in zip(refs, vectors):
                    if ref not in state:
                        order.append(ref)
                    state[ref] = vector
            elif record["op"] == "remove":
                for ref in refs:
                    state.pop(ref, None)
            else:
                raise DurabilityError(
                    f"unknown WAL op {record['op']!r} at seq {record['seq']}"
                )
            replayed += 1
        refs = [ref for ref in order if ref in state]
        dim = int(manifest.get("config", {}).get("dim", 0))
        vectors = (
            np.stack([state[ref] for ref in refs])
            if refs
            else np.zeros((0, dim), dtype=np.float32)
        )
        self._next_seq = max([applied, *(int(r["seq"]) for r in records)]) + 1
        self._pending_records = replayed
        report = {
            "manifest_seq": int(manifest["manifest_seq"]),
            "segments_loaded": len(manifest["segments"]),
            "rows_from_segments": rows_from_segments,
            "wal_records_replayed": replayed,
            "wal_records_skipped": skipped,
            "torn_tail_bytes": int(info["torn_tail_bytes"]),
            "recovered_columns": len(refs),
        }
        return dict(manifest["config"]), refs, vectors, report


def fsck_store(directory: str | Path) -> dict:
    """Diagnose a durable store without mutating it.

    Returns a report dict with ``clean`` (bool), ``problems`` (hard
    faults: missing/corrupt manifest, segment checksum failures, corrupt
    complete WAL frames) and ``warnings`` (repairable damage: a torn WAL
    tail, orphan segment files a crashed checkpoint left behind).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DurabilityError(f"no durable store at {directory}")
    report: dict = {
        "directory": str(directory),
        "manifest": None,
        "segments": [],
        "wal": {"records": 0, "torn_tail_bytes": 0, "last_seq": None},
        "orphan_segments": [],
        "problems": [],
        "warnings": [],
    }
    manifest = None
    try:
        # Standalone parse: constructing a DurableIndexStore pre-scans the
        # WAL, and fsck must diagnose a corrupt WAL, not crash on it.
        manifest = read_manifest_file(directory / MANIFEST_NAME)
    except ManifestError as error:
        report["problems"].append(str(error))
    listed: set[str] = set()
    if manifest is not None:
        report["manifest"] = {
            "manifest_seq": manifest["manifest_seq"],
            "wal_applied_seq": manifest["wal_applied_seq"],
            "segments": len(manifest["segments"]),
        }
        for entry in manifest["segments"]:
            listed.add(entry["name"])
            path = directory / SEGMENT_DIR / entry["name"]
            row = {"name": entry["name"], "rows": entry["rows"], "crc_ok": False}
            if not path.exists():
                report["problems"].append(f"segment {entry['name']} is missing")
            elif path.stat().st_size != int(entry["bytes"]):
                report["problems"].append(
                    f"segment {entry['name']}: size {path.stat().st_size} != "
                    f"manifest's {entry['bytes']} (truncated?)"
                )
            elif _file_crc32(path) != int(entry["crc32"]):
                report["problems"].append(
                    f"segment {entry['name']}: CRC mismatch"
                )
            else:
                row["crc_ok"] = True
            report["segments"].append(row)
    segment_dir = directory / SEGMENT_DIR
    if segment_dir.is_dir():
        for path in sorted(segment_dir.glob("*.npz")):
            if path.name not in listed:
                report["orphan_segments"].append(path.name)
                report["warnings"].append(
                    f"orphan segment {path.name} (crashed checkpoint?); "
                    "recovery ignores it"
                )
    try:
        records, info = scan_wal(directory / WAL_NAME)
        report["wal"] = {
            "records": len(records),
            "torn_tail_bytes": int(info["torn_tail_bytes"]),
            "last_seq": int(records[-1]["seq"]) if records else None,
        }
        if info["torn_tail_bytes"]:
            report["warnings"].append(
                f"torn WAL tail ({info['torn_tail_bytes']} bytes) — the "
                "unacknowledged record in flight at crash time; recovery "
                "discards it"
            )
    except DurabilityError as error:
        report["problems"].append(str(error))
    report["clean"] = not report["problems"] and not report["warnings"]
    return report
