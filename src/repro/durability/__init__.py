"""Crash-safe durability: WAL + checksummed segments + atomic manifest.

See :mod:`repro.durability.store` for the design narrative, and
:mod:`repro.durability.faultpoints` for the deterministic crash-point
registry the fault-injection tests drive.
"""

from repro.durability.faultpoints import CRASH_POINTS, InjectedCrash
from repro.durability.store import DurableIndexStore, fsck_store
from repro.durability.wal import WriteAheadLog, scan_wal

__all__ = [
    "CRASH_POINTS",
    "DurableIndexStore",
    "InjectedCrash",
    "WriteAheadLog",
    "fsck_store",
    "scan_wal",
]
