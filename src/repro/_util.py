"""Shared internal utilities: stable hashing, seeded RNGs, timing.

Everything in this module is deterministic given its inputs.  Python's
builtin ``hash`` is salted per process, so all content hashing here goes
through :mod:`hashlib` instead.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "stable_hash64",
    "stable_hash_bytes",
    "stable_uint64",
    "rng_for",
    "Stopwatch",
    "Timer",
    "chunked",
    "format_bytes",
    "format_seconds",
    "DegradationPolicy",
    "RespawnGovernor",
]

_MASK64 = (1 << 64) - 1


def stable_hash_bytes(data: bytes, *, salt: str = "") -> bytes:
    """Return a 16-byte BLAKE2b digest of ``data`` (optionally salted).

    BLAKE2b is used because it is fast, in the stdlib, and supports keyed
    hashing, which gives us cheap independent hash families for LSH.
    """
    salt_bytes = salt.encode("utf-8")[:16]
    return hashlib.blake2b(data, digest_size=16, salt=salt_bytes.ljust(16, b"\0")).digest()


def stable_hash64(value: str | bytes, *, salt: str = "") -> int:
    """Return a signed 64-bit stable hash of a string or bytes value."""
    data = value.encode("utf-8") if isinstance(value, str) else value
    digest = stable_hash_bytes(data, salt=salt)
    (unsigned,) = struct.unpack_from("<Q", digest)
    return unsigned - (1 << 63)


def stable_uint64(value: str | bytes, *, salt: str = "") -> int:
    """Return an unsigned 64-bit stable hash of a string or bytes value."""
    data = value.encode("utf-8") if isinstance(value, str) else value
    digest = stable_hash_bytes(data, salt=salt)
    (unsigned,) = struct.unpack_from("<Q", digest)
    return unsigned & _MASK64


def rng_for(*parts: object, base_seed: int = 0) -> np.random.Generator:
    """Return a numpy Generator deterministically derived from ``parts``.

    Independent subsystems derive their own generators from readable string
    keys (e.g. ``rng_for("nextiajd", "testbedS", 3)``) so that changing one
    generator's consumption pattern never perturbs another subsystem.
    """
    key = "\x1f".join(str(part) for part in parts)
    seed = (stable_uint64(key) ^ (base_seed & _MASK64)) & _MASK64
    return np.random.default_rng(seed)


class Stopwatch:
    """Accumulating wall-clock stopwatch with named splits.

    Used by the evaluation harness to decompose end-to-end query response
    time into load / embed / lookup components, as the paper does.
    """

    def __init__(self) -> None:
        self._splits: dict[str, float] = {}

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager accumulating elapsed seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._splits[name] = self._splits.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the named split directly."""
        self._splits[name] = self._splits.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        """Return accumulated seconds for ``name`` (0.0 if never measured)."""
        return self._splits.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum of all splits."""
        return sum(self._splits.values())

    def as_dict(self) -> dict[str, float]:
        """Return a copy of the split table."""
        return dict(self._splits)

    def reset(self) -> None:
        """Clear all splits."""
        self._splits.clear()


@dataclass
class Timer:
    """Single-shot timer usable as a context manager.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    """Yield successive slices of ``items`` with at most ``size`` elements.

    >>> list(chunked([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def format_bytes(count: int | float) -> str:
    """Render a byte count with a binary-ish human unit.

    >>> format_bytes(2048)
    '2.0 KB'
    """
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration at a precision that suits its magnitude.

    >>> format_seconds(0.0042)
    '4.2 ms'
    """
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


class RespawnGovernor:
    """Backoff + circuit breaker for supervisors that respawn crashed workers.

    One governor guards one respawnable thing (a shard worker, a server
    child).  Failures are timestamped into a sliding window; the window
    drives both decisions:

    * **delay** — :meth:`next_delay_s` grows exponentially with the
      number of recent failures (``base * 2**(n-1)``, capped), plus a
      positive jitter so a fleet of supervisors does not respawn in
      lockstep;
    * **breaker** — once the window holds ``max_failures`` failures,
      :meth:`allow` returns ``False`` (the breaker is open) until enough
      failures age out of the window or :meth:`record_success` resets it.

    A successful run clears the window: steady-state crashes that are
    minutes apart never escalate, only a crash *loop* trips the breaker.
    ``clock``/``rng`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        base_delay_s: float = 0.05,
        max_delay_s: float = 5.0,
        jitter: float = 0.25,
        max_failures: int = 5,
        window_s: float = 30.0,
        clock=time.monotonic,
        rng: np.random.Generator | None = None,
    ) -> None:
        if base_delay_s < 0 or max_delay_s < base_delay_s:
            raise ValueError(
                f"need 0 <= base_delay_s <= max_delay_s, got "
                f"{base_delay_s}/{max_delay_s}"
            )
        if max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {max_failures}")
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.max_failures = max_failures
        self.window_s = window_s
        self._clock = clock
        self._rng = rng if rng is not None else np.random.default_rng()
        self._failures: list[float] = []

    def _prune(self) -> None:
        horizon = self._clock() - self.window_s
        self._failures = [stamp for stamp in self._failures if stamp > horizon]

    @property
    def recent_failures(self) -> int:
        """Failures still inside the sliding window."""
        self._prune()
        return len(self._failures)

    def record_failure(self) -> None:
        """Note a crash (call once per observed death)."""
        self._prune()
        self._failures.append(self._clock())

    def record_success(self) -> None:
        """Note a healthy run; clears the window (crash loop broken)."""
        self._failures.clear()

    def allow(self) -> bool:
        """Whether respawning is still permitted (breaker closed)."""
        self._prune()
        return len(self._failures) < self.max_failures

    def next_delay_s(self) -> float:
        """Backoff to sleep before the next respawn attempt.

        0.0 when the window is clean; otherwise exponential in the
        recent-failure count with a positive uniform jitter (the delay is
        never *shorter* than the deterministic schedule).
        """
        self._prune()
        count = len(self._failures)
        if count == 0:
            return 0.0
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** (count - 1)))
        return float(delay * (1.0 + self._rng.uniform(0.0, self.jitter)))


class DegradationPolicy:
    """Hysteretic degraded-mode controller driven by load-shed events.

    The serving stack's overload signal is admission-control sheds: each
    one is timestamped into a sliding window (the same shape as
    :class:`RespawnGovernor`'s failure window).  The window drives a
    three-tier state machine:

    * **tier 0 (normal)** — full-fidelity service;
    * **tier 1 (degraded)** — sustained shedding
      (``>= shed_threshold`` sheds inside ``window_s``): consumers
      should shed expensive work first (reduced quantization
      ``rerank_factor``, multi-hop path queries capped to one hop)
      while cache hits keep answering at full fidelity;
    * **tier 2 (critical)** — ``>= 2 * shed_threshold`` sheds: tier-1
      downshifts plus a not-ready readiness signal, so load balancers
      drain the replica instead of feeding the collapse.

    Escalation is immediate; **recovery is hysteretic**: the policy
    steps *down* one tier at a time, each step requiring
    ``recovery_s`` consecutive shed-free seconds, so a service at the
    overload boundary settles instead of flapping.  All methods are
    thread-safe (sheds arrive from the accept path while probes read
    the tier concurrently); ``clock`` is injectable for deterministic
    tests.
    """

    TIER_NORMAL = 0
    TIER_DEGRADED = 1
    TIER_CRITICAL = 2

    def __init__(
        self,
        *,
        shed_threshold: int = 16,
        window_s: float = 10.0,
        recovery_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if shed_threshold < 1:
            raise ValueError(f"shed_threshold must be >= 1, got {shed_threshold}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if recovery_s < 0:
            raise ValueError(f"recovery_s must be >= 0, got {recovery_s}")
        self.shed_threshold = shed_threshold
        self.window_s = window_s
        self.recovery_s = recovery_s
        self._clock = clock
        self._lock = threading.Lock()
        self._sheds: list[float] = []
        self._shed_total = 0
        self._tier = self.TIER_NORMAL
        self._transitions = 0
        # Recovery anchor: the last moment the window was "dirty" — a
        # shed landed or a step-down consumed the elapsed clean time.
        self._quiet_since = 0.0

    def record_shed(self) -> None:
        """Note one admission-control shed (called from the accept path)."""
        with self._lock:
            now = self._clock()
            self._prune_locked(now)
            self._sheds.append(now)
            self._shed_total += 1
            self._quiet_since = now
            self._evaluate_locked(now)

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.window_s
        self._sheds = [stamp for stamp in self._sheds if stamp > horizon]

    def _evaluate_locked(self, now: float) -> None:
        """Advance the tier state machine; caller holds the lock."""
        count = len(self._sheds)
        if count >= 2 * self.shed_threshold:
            target = self.TIER_CRITICAL
        elif count >= self.shed_threshold:
            target = self.TIER_DEGRADED
        else:
            target = self.TIER_NORMAL
        if target > self._tier:
            self._tier = target
            self._transitions += 1
            self._quiet_since = now
        elif (
            self._tier > self.TIER_NORMAL
            and target < self._tier
            and now - self._quiet_since >= self.recovery_s
        ):
            # One step down per recovery period, never straight to the
            # target: the next step requires another full quiet stretch.
            self._tier -= 1
            self._transitions += 1
            self._quiet_since = now

    def tier(self) -> int:
        """Current degradation tier (evaluates pending transitions)."""
        with self._lock:
            now = self._clock()
            self._prune_locked(now)
            self._evaluate_locked(now)
            return self._tier

    @property
    def is_degraded(self) -> bool:
        """True at any tier above normal."""
        return self.tier() > self.TIER_NORMAL

    def rerank_factor_for(self, base: int) -> int:
        """The quantization re-rank factor to run at the current tier.

        Tier 1 halves the configured factor; tier 2 drops to the floor
        of 1 (approximate-order results, cheapest legal probe).
        """
        tier = self.tier()
        if tier == self.TIER_NORMAL:
            return base
        if tier == self.TIER_DEGRADED:
            return max(1, base // 2)
        return 1

    def max_hops_cap(self) -> int | None:
        """Hop cap for path queries (``None`` = uncapped, tiers > 0 = 1)."""
        return 1 if self.tier() > self.TIER_NORMAL else None

    def snapshot(self) -> dict[str, object]:
        """Machine-readable state for ``IndexStats`` / ``/stats``."""
        with self._lock:
            now = self._clock()
            self._prune_locked(now)
            self._evaluate_locked(now)
            return {
                "tier": self._tier,
                "recent_sheds": len(self._sheds),
                "shed_total": self._shed_total,
                "transitions": self._transitions,
                "shed_threshold": self.shed_threshold,
                "window_s": self.window_s,
                "recovery_s": self.recovery_s,
            }


def mean_or_zero(values: Iterable[float]) -> float:
    """Arithmetic mean of ``values``; 0.0 for an empty iterable."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    return total / count if count else 0.0
