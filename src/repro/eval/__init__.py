"""Evaluation harness: metrics, runners, timing decomposition, reports.

Reproduces the paper's measurement methodology (§4.2): top-k precision and
recall averaged over all queries at each k, plus index lookup time and
end-to-end query response time in seconds per query.
"""

from repro.eval.perf import run_perf_suite, validate_report, write_report
from repro.eval.quality import quality_headline, run_quality_suite
from repro.eval.metrics import (
    PRPoint,
    mean_average_precision,
    precision_at_k,
    pr_curve,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.report import render_pr_figure, render_table
from repro.eval.runner import QueryRun, SystemEvaluation, evaluate_system
from repro.eval.timing import TimingSummary, summarize_timings

__all__ = [
    "PRPoint",
    "QueryRun",
    "SystemEvaluation",
    "TimingSummary",
    "evaluate_system",
    "mean_average_precision",
    "pr_curve",
    "precision_at_k",
    "quality_headline",
    "recall_at_k",
    "reciprocal_rank",
    "render_pr_figure",
    "render_table",
    "run_perf_suite",
    "run_quality_suite",
    "summarize_timings",
    "validate_report",
    "write_report",
]
