"""Experiment runner: one system x one corpus -> curves and timings.

:func:`evaluate_system` is the workhorse behind every Figure-4 and Table-2
benchmark: it indexes the corpus through a fresh metered connector, replays
the corpus's query set, and aggregates effectiveness (PR curves) and
efficiency (timing summaries).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.system import IndexReport, JoinDiscoverySystem
from repro.core.candidates import DiscoveryResult, TimingBreakdown
from repro.datasets.base import TableCorpus
from repro.eval.metrics import PRPoint, pr_curve
from repro.eval.timing import TimingSummary, summarize_timings
from repro.storage.schema import ColumnRef
from repro.warehouse.sampling import Sampler

__all__ = ["QueryRun", "SystemEvaluation", "evaluate_system"]


@dataclass
class QueryRun:
    """One executed query with its ranked refs and ground-truth answers."""

    query: ColumnRef
    ranked: list[ColumnRef]
    answers: frozenset[ColumnRef]
    timing: TimingBreakdown

    @property
    def hit_any(self) -> bool:
        """True when at least one answer appears in the ranking."""
        return any(ref in self.answers for ref in self.ranked)


@dataclass
class SystemEvaluation:
    """Everything measured for one system on one corpus."""

    system: str
    corpus: str
    index_report: IndexReport
    runs: list[QueryRun] = field(default_factory=list)
    ks: tuple[int, ...] = (2, 3, 5, 10)

    @property
    def curve(self) -> list[PRPoint]:
        """Figure-4 precision/recall curve."""
        return pr_curve(
            [(run.ranked, run.answers) for run in self.runs], self.ks
        )

    @property
    def timing(self) -> TimingSummary:
        """Table-2 timing summary."""
        return summarize_timings([run.timing for run in self.runs])

    def precision_at(self, k: int) -> float:
        """Average precision at one k."""
        for point in self.curve:
            if point.k == k:
                return point.precision
        raise KeyError(f"k={k} not in evaluated ks {self.ks}")

    def recall_at(self, k: int) -> float:
        """Average recall at one k."""
        for point in self.curve:
            if point.k == k:
                return point.recall
        raise KeyError(f"k={k} not in evaluated ks {self.ks}")


def evaluate_system(
    system: JoinDiscoverySystem,
    corpus: TableCorpus,
    *,
    ks: Sequence[int] = (2, 3, 5, 10),
    index_sampler: Sampler | None = None,
    max_queries: int | None = None,
) -> SystemEvaluation:
    """Index ``corpus`` with ``system`` and replay its benchmark queries.

    ``max_queries`` truncates the query set (deterministically, by order)
    for quick runs; ``index_sampler`` overrides the system's own sampling
    during indexing (used by the sample-efficiency sweep).
    """
    truth = corpus.require_ground_truth()
    connector = corpus.connector()
    index_report = system.index_corpus(connector, sampler=index_sampler)
    evaluation = SystemEvaluation(
        system=system.name,
        corpus=corpus.name,
        index_report=index_report,
        ks=tuple(ks),
    )
    k_max = max(ks)
    queries = corpus.queries[:max_queries] if max_queries else corpus.queries
    for query in queries:
        result: DiscoveryResult = system.search(query.ref, k_max)
        evaluation.runs.append(
            QueryRun(
                query=query.ref,
                ranked=result.refs,
                answers=truth.answers(query.ref),
                timing=result.timing,
            )
        )
    return evaluation
