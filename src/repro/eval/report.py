"""ASCII report renderers mirroring the paper's tables and figures.

Benchmarks print these so a reader can compare the regenerated rows against
the published ones side by side.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.eval.metrics import PRPoint

__all__ = ["render_table", "render_pr_figure", "render_comparison"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with per-column width fitting."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_pr_figure(
    curves: Mapping[str, Sequence[PRPoint]],
    *,
    title: str,
) -> str:
    """Figure-4-style table: one row per k, P and R columns per system.

    >>> from repro.eval.metrics import PRPoint
    >>> print(render_pr_figure(
    ...     {"warpgate": [PRPoint(2, 0.5, 0.3)]}, title="demo"
    ... ))  # doctest: +NORMALIZE_WHITESPACE
    demo
    k   warpgate P  warpgate R
    --  ----------  ----------
    2   0.500       0.300
    """
    systems = list(curves)
    headers = ["k"]
    for system in systems:
        headers.extend([f"{system} P", f"{system} R"])
    ks = sorted({point.k for curve in curves.values() for point in curve})
    rows = []
    for k in ks:
        row: list[object] = [k]
        for system in systems:
            point = next((p for p in curves[system] if p.k == k), None)
            row.extend(
                [point.precision, point.recall] if point else [None, None]
            )
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_comparison(
    paper_rows: Sequence[Mapping[str, object]],
    measured_rows: Sequence[Mapping[str, object]],
    *,
    key: str,
    title: str,
) -> str:
    """Side-by-side paper-vs-measured table joined on ``key``."""
    measured_by_key = {str(row[key]): row for row in measured_rows}
    columns: list[str] = []
    for row in paper_rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    headers = [key]
    for column in columns:
        if column == key:
            continue
        headers.extend([f"{column} (paper)", f"{column} (ours)"])
    rows = []
    for paper_row in paper_rows:
        identifier = str(paper_row[key])
        measured = measured_by_key.get(identifier, {})
        row: list[object] = [identifier]
        for column in columns:
            if column == key:
                continue
            row.append(paper_row.get(column))
            row.append(measured.get(column))
        rows.append(row)
    return render_table(headers, rows, title=title)
