"""Index perf suite: machine-readable timings tracked across PRs.

The paper's Table 2 argument is that LSH-backed lookup keeps per-query
response time flat as corpora grow.  This module measures exactly that on
the columnar index engine — build, single-query, and batched search at
several corpus sizes — and writes one JSON report (``BENCH_index.json`` at
the repository root by convention) so every PR leaves a comparable perf
baseline behind.  CI runs the ``fast`` profile as a smoke check; the
committed report comes from the ``full`` profile.

Since the paper notes the *embedding* step — not LSH probing — dominates
corpus build cost, the suite also carries an ``embed`` stage: sequential
per-column ``encode`` versus the chunked ``encode_batch`` pipeline over a
synthetic categorical-heavy column corpus (cell values repeat massively
across warehouse columns, which is what the shared value/token caches
exploit), reporting throughput, speedup, and cache hit rate per corpus
size.

Run it via ``python -m repro bench`` or import :func:`run_perf_suite`.

The synthetic corpus is *not* isotropic Gaussian noise: warehouse column
embeddings concentrate on a low-dimensional manifold (columns share
vocabularies, units, and naming conventions) and contain near-duplicate
snapshot copies, which is what makes LSH buckets hot and candidate sets
dense.  :func:`synthetic_corpus` reproduces that shape — low-rank latent
structure plus snapshot clusters — so the numbers reflect the workload the
paper describes rather than a best case.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro._util import chunked, rng_for
from repro.index.lsh import SimHashLSHIndex

__all__ = [
    "BENCH_REPORT_NAME",
    "PROFILES",
    "run_perf_suite",
    "synthetic_columns",
    "synthetic_corpus",
    "validate_report",
    "write_report",
]

BENCH_REPORT_NAME = "BENCH_index.json"
_SCHEMA_VERSION = 2

#: Named suite profiles: corpus sizes and repeat counts.  ``full`` is the
#: committed baseline; ``fast`` keeps the CI smoke job in single-digit
#: seconds.  ``embed_sizes`` drives the embedding-throughput stage (the
#: sequential arm re-encodes every column per repeat, so it scales its own
#: sizes rather than riding the search-side ones).
PROFILES: dict[str, dict] = {
    "full": {
        "sizes": (1_000, 5_000, 10_000, 50_000),
        "repeats": 5,
        "embed_sizes": (2_000, 10_000),
        "embed_repeats": 3,
    },
    "fast": {
        "sizes": (500, 1_000, 2_000),
        "repeats": 2,
        "embed_sizes": (500, 1_000),
        "embed_repeats": 2,
    },
}

# Fields every per-size result row must carry (validate_report contract,
# enforced by the CI smoke job).
_RESULT_FIELDS = (
    "n_columns",
    "build_bulk_s",
    "incremental_add_ms",
    "remove_ms",
    "single_query_ms",
    "sequential_batch_ms",
    "batch_ms",
    "batch_per_query_ms",
    "batch_speedup",
    "candidate_fraction",
)

# Fields every embed-stage row must carry.
_EMBED_FIELDS = (
    "n_columns",
    "values_per_column",
    "sequential_s",
    "batched_s",
    "speedup",
    "sequential_cols_per_s",
    "batched_cols_per_s",
    "cache_hit_rate",
    "distinct_fraction",
)


def synthetic_corpus(
    n: int,
    dim: int,
    *,
    n_domains: int = 3,
    spread: float = 0.62,
    snapshot_every: int = 8,
    seed_key: str = "perf-corpus",
) -> np.ndarray:
    """Deterministic column-embedding-shaped corpus: ``(n, dim)`` unit rows.

    Warehouse column embeddings are not isotropic noise: columns cluster
    by semantic domain (identifiers, names, amounts, locations — they
    share vocabularies and formats), and snapshots duplicate whole tables
    nearly verbatim.  Each row here is a unit draw around one of
    ``n_domains`` domain centers — within-domain cosines concentrate near
    ``1 - spread²`` (≈ 0.62 by default: hot LSH buckets, dense candidate
    sets, yet below the paper's 0.7 join threshold) — and every
    ``snapshot_every``-th row is a near-duplicate of an earlier row (a
    snapshot copy: the above-threshold joinable answer).  This is the
    regime the paper's Table 2 serves and the batched search path is
    built for.
    """
    rng = rng_for("perf-suite", seed_key, n, dim, n_domains)

    def unit_rows(matrix: np.ndarray) -> np.ndarray:
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    centers = unit_rows(rng.standard_normal((n_domains, dim)))
    assignment = rng.integers(0, n_domains, size=n)
    ambient = unit_rows(rng.standard_normal((n, dim)))
    matrix = (
        np.sqrt(max(0.0, 1.0 - spread**2)) * centers[assignment]
        + spread * ambient
    )
    # Snapshot copies: overwrite a slice of rows with jittered earlier rows.
    copies = np.arange(snapshot_every, n, snapshot_every)
    if copies.size:
        sources = rng.integers(0, copies, size=copies.size)
        matrix[copies] = matrix[sources] + 0.05 * rng.standard_normal(
            (copies.size, dim)
        )
    return unit_rows(matrix)


def synthetic_columns(
    n: int,
    *,
    values_per_column: int = 40,
    vocab_size: int = 600,
    numeric_every: int = 8,
    seed_key: str = "embed-corpus",
) -> list:
    """Deterministic warehouse-shaped columns for the embed stage.

    Warehouse serializations are dominated by categorical values drawn
    from shared vocabularies (names, codes, cities — the same strings
    recur across thousands of columns) plus low-range numeric columns
    (quantities, small codes) that repeat just as heavily.  That massive
    cross-column value repetition is precisely what the batched pipeline's
    value/token caches exploit, so the corpus reproduces it: every
    ``numeric_every``-th column is small-range integers, the rest sample a
    ``vocab_size``-entry multi-token string vocabulary.
    """
    from repro.storage.column import Column

    rng = rng_for("perf-suite", seed_key, n, values_per_column, vocab_size)
    vocabulary = [f"entity {k:05d} segment{k % 37}" for k in range(vocab_size)]
    columns = []
    for index in range(n):
        if numeric_every and index % numeric_every == 0:
            values = [int(v) for v in rng.integers(0, 250, size=values_per_column)]
            columns.append(Column(f"qty_{index}", values))
        else:
            picks = rng.integers(0, vocab_size, size=values_per_column)
            columns.append(
                Column(f"cat_{index}", [vocabulary[pick] for pick in picks])
            )
    return columns


def _bench_embed_one_size(
    n: int,
    *,
    dim: int,
    values_per_column: int,
    vocab_size: int,
    chunk_size: int,
    repeats: int,
) -> dict:
    """Sequential-vs-batched encode throughput at one corpus size.

    Both arms start cold (module n-gram caches cleared, fresh model and
    encoder) so the numbers describe a from-scratch corpus build; the
    cache hit rate comes from the timed batched run itself — it measures
    value repetition *within* one corpus build, not warm-over-warm replay.
    """
    from repro.embedding.encoder import ColumnEncoder, EncodeStats
    from repro.embedding.hashing import (
        HashingEmbeddingModel,
        _ngram_vector,
        hashed_token_vector,
    )

    columns = synthetic_columns(
        n, values_per_column=values_per_column, vocab_size=vocab_size
    )

    def cold_encoder() -> ColumnEncoder:
        hashed_token_vector.cache_clear()
        _ngram_vector.cache_clear()
        return ColumnEncoder(HashingEmbeddingModel(dim=dim))

    def sequential() -> None:
        encoder = cold_encoder()
        for column in columns:
            encoder.encode(column)

    stats = EncodeStats()

    def batched() -> None:
        stats.__init__()  # keep the stats of the (last) timed run
        encoder = cold_encoder()
        for chunk in chunked(columns, chunk_size):
            _matrix, chunk_stats = encoder.encode_batch(chunk)
            stats.merge(chunk_stats)

    sequential_s = _best_of(repeats, sequential)
    batched_s = _best_of(repeats, batched)
    return {
        "n_columns": n,
        "values_per_column": values_per_column,
        "vocab_size": vocab_size,
        "chunk_size": chunk_size,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2),
        "sequential_cols_per_s": round(n / sequential_s, 1),
        "batched_cols_per_s": round(n / batched_s, 1),
        "cache_hit_rate": round(stats.cache_hit_rate, 4),
        "distinct_fraction": round(
            stats.distinct_tokens / max(1, stats.token_occurrences), 4
        ),
    }


def _best_of(repeats: int, run) -> float:
    """Best-of-N wall time of ``run()`` — the standard noise filter."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_one_size(
    n: int,
    *,
    dim: int,
    n_bits: int,
    n_bands: int,
    threshold: float,
    batch_size: int,
    k: int,
    repeats: int,
) -> dict:
    corpus = synthetic_corpus(n, dim)
    keys = list(range(n))
    rng = rng_for("perf-suite", "queries", n, dim)
    picks = rng.integers(0, n, size=batch_size)
    # Queries are perturbed corpus columns (cos ≈ 0.98 to their source) —
    # the paper's workload queries the indexed corpus itself.
    jitter = rng.standard_normal((batch_size, dim))
    jitter /= np.linalg.norm(jitter, axis=1, keepdims=True)
    queries = np.sqrt(1.0 - 0.2**2) * corpus[picks] + 0.2 * jitter
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)

    def fresh_index() -> SimHashLSHIndex:
        return SimHashLSHIndex(
            dim, n_bits=n_bits, n_bands=n_bands, threshold=threshold
        )

    # Build (columnar bulk path), timed on fresh indexes.
    def build() -> None:
        index = fresh_index()
        index.bulk_load(keys, corpus)
        index.build()

    build_bulk_s = _best_of(max(1, repeats // 2), build)

    index = fresh_index()
    index.bulk_load(keys, corpus)
    index.build()

    # Incremental mutation costs on the live index.
    extra = synthetic_corpus(64, dim, seed_key="perf-extra")
    add_start = time.perf_counter()
    for offset in range(extra.shape[0]):
        index.add(n + offset, extra[offset])
    incremental_add_ms = (time.perf_counter() - add_start) / extra.shape[0] * 1e3
    remove_start = time.perf_counter()
    for offset in range(extra.shape[0]):
        index.remove(n + offset)
    remove_ms = (time.perf_counter() - remove_start) / extra.shape[0] * 1e3
    index.build()

    # Warm both search paths once (bucket freezing, BLAS init).
    index.query(queries[0], k)
    index.search_batch(queries, k)

    def sequential() -> None:
        for position in range(batch_size):
            index.query(queries[position], k)

    def batched() -> None:
        index.search_batch(queries, k)

    sequential_batch_s = _best_of(repeats, sequential)
    batch_s = _best_of(repeats, batched)

    candidate_counts = []
    for position in range(batch_size):
        index.query(queries[position], k)
        candidate_counts.append(index.last_candidate_count)

    return {
        "n_columns": n,
        "build_bulk_s": round(build_bulk_s, 6),
        "incremental_add_ms": round(incremental_add_ms, 4),
        "remove_ms": round(remove_ms, 4),
        "single_query_ms": round(sequential_batch_s / batch_size * 1e3, 4),
        "sequential_batch_ms": round(sequential_batch_s * 1e3, 3),
        "batch_ms": round(batch_s * 1e3, 3),
        "batch_per_query_ms": round(batch_s / batch_size * 1e3, 4),
        "batch_speedup": round(sequential_batch_s / batch_s, 2),
        "candidate_fraction": round(
            float(np.mean(candidate_counts)) / max(1, len(index)), 4
        ),
    }


def run_perf_suite(
    *,
    profile: str = "full",
    sizes: tuple[int, ...] | None = None,
    dim: int = 256,
    n_bits: int = 128,
    n_bands: int = 16,
    threshold: float = 0.7,
    batch_size: int = 64,
    k: int = 10,
    repeats: int | None = None,
    embed_sizes: tuple[int, ...] | None = None,
    embed_repeats: int | None = None,
    embed_dim: int = 64,
    embed_values_per_column: int = 40,
    embed_vocab_size: int = 600,
    embed_chunk_size: int = 512,
    progress=None,
) -> dict:
    """Time index search paths and embedding throughput per corpus size.

    Returns the report dict: ``results`` rows follow ``_RESULT_FIELDS``
    (search side), ``embed`` rows follow ``_EMBED_FIELDS`` (sequential vs
    batched encode).  Pass ``progress`` (a callable taking one string) for
    per-size console feedback.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    spec = PROFILES[profile]
    sizes = tuple(sizes) if sizes is not None else spec["sizes"]
    repeats = repeats if repeats is not None else spec["repeats"]
    embed_sizes = (
        tuple(embed_sizes) if embed_sizes is not None else spec["embed_sizes"]
    )
    embed_repeats = (
        embed_repeats if embed_repeats is not None else spec.get("embed_repeats", 2)
    )
    results = []
    for n in sizes:
        if progress is not None:
            progress(f"benchmarking {n} columns ...")
        results.append(
            _bench_one_size(
                n,
                dim=dim,
                n_bits=n_bits,
                n_bands=n_bands,
                threshold=threshold,
                batch_size=batch_size,
                k=k,
                repeats=repeats,
            )
        )
    embed_results = []
    for n in embed_sizes:
        if progress is not None:
            progress(f"benchmarking embed throughput at {n} columns ...")
        embed_results.append(
            _bench_embed_one_size(
                n,
                dim=embed_dim,
                values_per_column=embed_values_per_column,
                vocab_size=embed_vocab_size,
                chunk_size=embed_chunk_size,
                repeats=embed_repeats,
            )
        )
    return {
        "schema_version": _SCHEMA_VERSION,
        "suite": "index-perf",
        "profile": profile,
        "config": {
            "backend": "lsh",
            "dim": dim,
            "n_bits": n_bits,
            "n_bands": n_bands,
            "threshold": threshold,
            "batch_size": batch_size,
            "k": k,
            "repeats": repeats,
            "embed": {
                "dim": embed_dim,
                "values_per_column": embed_values_per_column,
                "vocab_size": embed_vocab_size,
                "chunk_size": embed_chunk_size,
                "model": "hashing",
            },
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
        "embed": embed_results,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the suite report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def validate_report(payload: dict) -> list[str]:
    """Schema check for a perf report; returns a list of problems (empty = ok).

    The CI smoke job runs this against the regenerated report so a broken
    bench (missing sizes, malformed rows, non-numeric timings) fails the
    build instead of silently shipping an empty trajectory.
    """
    problems: list[str] = []
    if payload.get("suite") != "index-perf":
        problems.append("suite != 'index-perf'")
    if not isinstance(payload.get("config"), dict):
        problems.append("missing config object")
    results = payload.get("results")
    if not isinstance(results, list) or len(results) < 3:
        problems.append("results must list >= 3 corpus sizes")
        return problems
    for row in results:
        for field in _RESULT_FIELDS:
            value = row.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"result {row.get('n_columns')}: bad {field!r}")
    embed = payload.get("embed")
    if not isinstance(embed, list) or not embed:
        problems.append("embed must list >= 1 corpus sizes")
        return problems
    for row in embed:
        for field in _EMBED_FIELDS:
            value = row.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"embed {row.get('n_columns')}: bad {field!r}")
    return problems
