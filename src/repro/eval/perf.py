"""Index perf suite: machine-readable timings tracked across PRs.

The paper's Table 2 argument is that LSH-backed lookup keeps per-query
response time flat as corpora grow.  This module measures exactly that on
the columnar index engine — build, single-query, and batched search at
several corpus sizes — and writes one JSON report (``BENCH_index.json`` at
the repository root by convention) so every PR leaves a comparable perf
baseline behind.  CI runs the ``fast`` profile as a smoke check; the
committed report comes from the ``full`` profile.

Run it via ``python -m repro bench`` or import :func:`run_perf_suite`.

The synthetic corpus is *not* isotropic Gaussian noise: warehouse column
embeddings concentrate on a low-dimensional manifold (columns share
vocabularies, units, and naming conventions) and contain near-duplicate
snapshot copies, which is what makes LSH buckets hot and candidate sets
dense.  :func:`synthetic_corpus` reproduces that shape — low-rank latent
structure plus snapshot clusters — so the numbers reflect the workload the
paper describes rather than a best case.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro._util import rng_for
from repro.index.lsh import SimHashLSHIndex

__all__ = [
    "BENCH_REPORT_NAME",
    "PROFILES",
    "run_perf_suite",
    "synthetic_corpus",
    "validate_report",
    "write_report",
]

BENCH_REPORT_NAME = "BENCH_index.json"
_SCHEMA_VERSION = 1

#: Named suite profiles: corpus sizes and repeat counts.  ``full`` is the
#: committed baseline; ``fast`` keeps the CI smoke job in single-digit
#: seconds.
PROFILES: dict[str, dict] = {
    "full": {"sizes": (1_000, 5_000, 10_000, 50_000), "repeats": 5},
    "fast": {"sizes": (500, 1_000, 2_000), "repeats": 2},
}

# Fields every per-size result row must carry (validate_report contract,
# enforced by the CI smoke job).
_RESULT_FIELDS = (
    "n_columns",
    "build_bulk_s",
    "incremental_add_ms",
    "remove_ms",
    "single_query_ms",
    "sequential_batch_ms",
    "batch_ms",
    "batch_per_query_ms",
    "batch_speedup",
    "candidate_fraction",
)


def synthetic_corpus(
    n: int,
    dim: int,
    *,
    n_domains: int = 3,
    spread: float = 0.62,
    snapshot_every: int = 8,
    seed_key: str = "perf-corpus",
) -> np.ndarray:
    """Deterministic column-embedding-shaped corpus: ``(n, dim)`` unit rows.

    Warehouse column embeddings are not isotropic noise: columns cluster
    by semantic domain (identifiers, names, amounts, locations — they
    share vocabularies and formats), and snapshots duplicate whole tables
    nearly verbatim.  Each row here is a unit draw around one of
    ``n_domains`` domain centers — within-domain cosines concentrate near
    ``1 - spread²`` (≈ 0.62 by default: hot LSH buckets, dense candidate
    sets, yet below the paper's 0.7 join threshold) — and every
    ``snapshot_every``-th row is a near-duplicate of an earlier row (a
    snapshot copy: the above-threshold joinable answer).  This is the
    regime the paper's Table 2 serves and the batched search path is
    built for.
    """
    rng = rng_for("perf-suite", seed_key, n, dim, n_domains)

    def unit_rows(matrix: np.ndarray) -> np.ndarray:
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    centers = unit_rows(rng.standard_normal((n_domains, dim)))
    assignment = rng.integers(0, n_domains, size=n)
    ambient = unit_rows(rng.standard_normal((n, dim)))
    matrix = (
        np.sqrt(max(0.0, 1.0 - spread**2)) * centers[assignment]
        + spread * ambient
    )
    # Snapshot copies: overwrite a slice of rows with jittered earlier rows.
    copies = np.arange(snapshot_every, n, snapshot_every)
    if copies.size:
        sources = rng.integers(0, copies, size=copies.size)
        matrix[copies] = matrix[sources] + 0.05 * rng.standard_normal(
            (copies.size, dim)
        )
    return unit_rows(matrix)


def _best_of(repeats: int, run) -> float:
    """Best-of-N wall time of ``run()`` — the standard noise filter."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_one_size(
    n: int,
    *,
    dim: int,
    n_bits: int,
    n_bands: int,
    threshold: float,
    batch_size: int,
    k: int,
    repeats: int,
) -> dict:
    corpus = synthetic_corpus(n, dim)
    keys = list(range(n))
    rng = rng_for("perf-suite", "queries", n, dim)
    picks = rng.integers(0, n, size=batch_size)
    # Queries are perturbed corpus columns (cos ≈ 0.98 to their source) —
    # the paper's workload queries the indexed corpus itself.
    jitter = rng.standard_normal((batch_size, dim))
    jitter /= np.linalg.norm(jitter, axis=1, keepdims=True)
    queries = np.sqrt(1.0 - 0.2**2) * corpus[picks] + 0.2 * jitter
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)

    def fresh_index() -> SimHashLSHIndex:
        return SimHashLSHIndex(
            dim, n_bits=n_bits, n_bands=n_bands, threshold=threshold
        )

    # Build (columnar bulk path), timed on fresh indexes.
    def build() -> None:
        index = fresh_index()
        index.bulk_load(keys, corpus)
        index.build()

    build_bulk_s = _best_of(max(1, repeats // 2), build)

    index = fresh_index()
    index.bulk_load(keys, corpus)
    index.build()

    # Incremental mutation costs on the live index.
    extra = synthetic_corpus(64, dim, seed_key="perf-extra")
    add_start = time.perf_counter()
    for offset in range(extra.shape[0]):
        index.add(n + offset, extra[offset])
    incremental_add_ms = (time.perf_counter() - add_start) / extra.shape[0] * 1e3
    remove_start = time.perf_counter()
    for offset in range(extra.shape[0]):
        index.remove(n + offset)
    remove_ms = (time.perf_counter() - remove_start) / extra.shape[0] * 1e3
    index.build()

    # Warm both search paths once (bucket freezing, BLAS init).
    index.query(queries[0], k)
    index.search_batch(queries, k)

    def sequential() -> None:
        for position in range(batch_size):
            index.query(queries[position], k)

    def batched() -> None:
        index.search_batch(queries, k)

    sequential_batch_s = _best_of(repeats, sequential)
    batch_s = _best_of(repeats, batched)

    candidate_counts = []
    for position in range(batch_size):
        index.query(queries[position], k)
        candidate_counts.append(index.last_candidate_count)

    return {
        "n_columns": n,
        "build_bulk_s": round(build_bulk_s, 6),
        "incremental_add_ms": round(incremental_add_ms, 4),
        "remove_ms": round(remove_ms, 4),
        "single_query_ms": round(sequential_batch_s / batch_size * 1e3, 4),
        "sequential_batch_ms": round(sequential_batch_s * 1e3, 3),
        "batch_ms": round(batch_s * 1e3, 3),
        "batch_per_query_ms": round(batch_s / batch_size * 1e3, 4),
        "batch_speedup": round(sequential_batch_s / batch_s, 2),
        "candidate_fraction": round(
            float(np.mean(candidate_counts)) / max(1, len(index)), 4
        ),
    }


def run_perf_suite(
    *,
    profile: str = "full",
    sizes: tuple[int, ...] | None = None,
    dim: int = 256,
    n_bits: int = 128,
    n_bands: int = 16,
    threshold: float = 0.7,
    batch_size: int = 64,
    k: int = 10,
    repeats: int | None = None,
    progress=None,
) -> dict:
    """Time index build / single search / batched search per corpus size.

    Returns the report dict (see ``_RESULT_FIELDS`` for the per-size row
    schema); pass ``progress`` (a callable taking one string) for
    per-size console feedback.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    spec = PROFILES[profile]
    sizes = tuple(sizes) if sizes is not None else spec["sizes"]
    repeats = repeats if repeats is not None else spec["repeats"]
    results = []
    for n in sizes:
        if progress is not None:
            progress(f"benchmarking {n} columns ...")
        results.append(
            _bench_one_size(
                n,
                dim=dim,
                n_bits=n_bits,
                n_bands=n_bands,
                threshold=threshold,
                batch_size=batch_size,
                k=k,
                repeats=repeats,
            )
        )
    return {
        "schema_version": _SCHEMA_VERSION,
        "suite": "index-perf",
        "profile": profile,
        "config": {
            "backend": "lsh",
            "dim": dim,
            "n_bits": n_bits,
            "n_bands": n_bands,
            "threshold": threshold,
            "batch_size": batch_size,
            "k": k,
            "repeats": repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the suite report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def validate_report(payload: dict) -> list[str]:
    """Schema check for a perf report; returns a list of problems (empty = ok).

    The CI smoke job runs this against the regenerated report so a broken
    bench (missing sizes, malformed rows, non-numeric timings) fails the
    build instead of silently shipping an empty trajectory.
    """
    problems: list[str] = []
    if payload.get("suite") != "index-perf":
        problems.append("suite != 'index-perf'")
    if not isinstance(payload.get("config"), dict):
        problems.append("missing config object")
    results = payload.get("results")
    if not isinstance(results, list) or len(results) < 3:
        problems.append("results must list >= 3 corpus sizes")
        return problems
    for row in results:
        for field in _RESULT_FIELDS:
            value = row.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"result {row.get('n_columns')}: bad {field!r}")
    return problems
