"""Index perf suite: machine-readable timings tracked across PRs.

The paper's Table 2 argument is that LSH-backed lookup keeps per-query
response time flat as corpora grow.  This module measures exactly that on
the columnar index engine — build, single-query, and batched search at
several corpus sizes — and writes one JSON report (``BENCH_index.json`` at
the repository root by convention) so every PR leaves a comparable perf
baseline behind.  CI runs the ``fast`` profile as a smoke check; the
committed report comes from the ``full`` profile.

Since the paper notes the *embedding* step — not LSH probing — dominates
corpus build cost, the suite also carries an ``embed`` stage: sequential
per-column ``encode`` versus the chunked ``encode_batch`` pipeline over a
synthetic categorical-heavy column corpus (cell values repeat massively
across warehouse columns, which is what the shared value/token caches
exploit), reporting throughput, speedup, and cache hit rate per corpus
size.

Three engine stages track the scaling machinery on top of that:
``shard`` (batched search on one arena vs the corpus partitioned across
a :class:`~repro.index.sharding.ShardedIndex`, with a merge-exactness
probe), ``quant`` (full-float32 vs int8-candidate + exact-re-rank
scoring, with recall@k — the acceptance bar is ≥ 0.98), and ``artifact``
(format-3 mmap cold load vs the legacy compressed format-2 load).

The ``serve`` stage measures the *serving engine* end to end: N
concurrent HTTP clients drive a live server, comparing the
thread-per-request single-query baseline
(:class:`~repro.service.server.ThreadPerRequestHTTPServer`, one
connection per request) against the worker-pool engine (persistent
connections, request coalescing, generation-keyed query cache) — QPS,
p50/p99 latency, the coalescer's batch-size histogram, and the query
cache's steady-state hit rate.  A single-client probe pins the
coalescer's fast-path contract: p50 latency with coalescing on stays
within 10% of the uncoalesced path.

The ``mpserve`` stage tracks the multi-process engines against their
in-process twins: :class:`~repro.index.procpool.ProcessShardedIndex`
batched search vs :class:`~repro.index.sharding.ShardedIndex` (with the
same merge-exactness probe), and the ``SO_REUSEPORT`` HTTP front at 1
vs 2 processes.  ``environment.cpus`` and ``environment.cpu_affinity``
record the hardware; on a single-core host the honest assertion is
result parity, not speedup — CI gates ``proc_shard_speedup`` only when
``cpus > 1``.

Stage timers are warm-up-excluded medians (``_timed_median``): every
timed arm first runs untimed ``warmup_runs`` times (JIT, lazy imports,
BLAS thread spin-up, cache fill), then reports the median of the timed
repeats; each stage row records its ``warmup_runs``.  Each run can
append a one-line summary (git SHA + timestamp + headline numbers) to
``BENCH_history.jsonl`` via :func:`append_history`, the cross-PR
trajectory file.

Run it via ``python -m repro bench`` or import :func:`run_perf_suite`.

The synthetic corpus is *not* isotropic Gaussian noise: warehouse column
embeddings concentrate on a low-dimensional manifold (columns share
vocabularies, units, and naming conventions) and contain near-duplicate
snapshot copies, which is what makes LSH buckets hot and candidate sets
dense.  :func:`synthetic_corpus` reproduces that shape — low-rank latent
structure plus snapshot clusters — so the numbers reflect the workload the
paper describes rather than a best case.
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import subprocess
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro._util import chunked, rng_for
from repro.index.lsh import SimHashLSHIndex

__all__ = [
    "ALL_STAGES",
    "BENCH_HISTORY_NAME",
    "BENCH_REPORT_NAME",
    "PROFILES",
    "append_history",
    "run_perf_suite",
    "synthetic_columns",
    "synthetic_corpus",
    "validate_report",
    "write_report",
]

BENCH_REPORT_NAME = "BENCH_index.json"
BENCH_HISTORY_NAME = "BENCH_history.jsonl"
_SCHEMA_VERSION = 9

#: Every stage the suite can run, in run order.  ``run_perf_suite``'s
#: ``stages`` parameter selects a subset (``python -m repro bench
#: --stages quality``); the report records which subset ran so
#: :func:`validate_report` only enforces contracts for stages present.
ALL_STAGES = (
    "results",
    "embed",
    "shard",
    "quant",
    "artifact",
    "serve",
    "mpserve",
    "overload",
    "graph",
    "durability",
    "quality",
)

#: Named suite profiles: corpus sizes and repeat counts.  ``full`` is the
#: committed baseline; ``fast`` keeps the CI smoke job in single-digit
#: seconds.  ``embed_sizes`` drives the embedding-throughput stage (the
#: sequential arm re-encodes every column per repeat, so it scales its own
#: sizes rather than riding the search-side ones); ``shard_sizes`` /
#: ``quant_sizes`` / ``artifact_sizes`` drive the sharding, quantization,
#: and artifact-format stages at the scales where they matter.
PROFILES: dict[str, dict] = {
    "full": {
        "sizes": (1_000, 5_000, 10_000, 50_000),
        "repeats": 5,
        "embed_sizes": (2_000, 10_000),
        "embed_repeats": 3,
        "shard_sizes": (10_000, 50_000),
        "quant_sizes": (10_000, 50_000),
        "artifact_sizes": (50_000,),
        "stage_repeats": 3,
        "serve_sizes": (10_000,),
        "serve_clients": 16,
        "serve_requests_per_client": 64,
        "mpserve_sizes": (10_000, 50_000),
        "mpserve_clients": 8,
        "mpserve_requests_per_client": 32,
        "overload_sizes": (10_000,),
        "overload_requests_per_client": 64,
        "graph_sizes": (10_000,),
        "durability_sizes": (10_000,),
        "quality_profile": "full",
    },
    "fast": {
        "sizes": (500, 1_000, 2_000),
        "repeats": 2,
        "embed_sizes": (500, 1_000),
        "embed_repeats": 2,
        "shard_sizes": (1_000, 2_000),
        "quant_sizes": (2_000,),
        "artifact_sizes": (2_000,),
        "stage_repeats": 2,
        "serve_sizes": (2_000,),
        "serve_clients": 8,
        "serve_requests_per_client": 16,
        "mpserve_sizes": (2_000,),
        "mpserve_clients": 4,
        "mpserve_requests_per_client": 8,
        "overload_sizes": (2_000,),
        "overload_requests_per_client": 16,
        "graph_sizes": (2_000,),
        "durability_sizes": (2_000,),
        "quality_profile": "small",
    },
}

# Fields every per-size result row must carry (validate_report contract,
# enforced by the CI smoke job).
_RESULT_FIELDS = (
    "n_columns",
    "build_bulk_s",
    "incremental_add_ms",
    "remove_ms",
    "single_query_ms",
    "sequential_batch_ms",
    "batch_ms",
    "batch_per_query_ms",
    "batch_speedup",
    "candidate_fraction",
    "warmup_runs",
)

# Fields every embed-stage row must carry.
_EMBED_FIELDS = (
    "n_columns",
    "values_per_column",
    "sequential_s",
    "batched_s",
    "speedup",
    "sequential_cols_per_s",
    "batched_cols_per_s",
    "cache_hit_rate",
    "distinct_fraction",
    "warmup_runs",
)

# Fields every shard-stage row must carry: batched search on one arena vs
# the same corpus partitioned across n_shards, plus a merge-correctness
# probe (fraction of queries whose sharded result list is identical).
_SHARD_FIELDS = (
    "n_columns",
    "n_shards",
    "batch_ms_single",
    "batch_ms_sharded",
    "shard_speedup",
    "merge_equal_fraction",
    "warmup_runs",
)

# Fields every quant-stage row must carry: int8 candidate scoring + exact
# re-rank vs full float32, and the recall it buys that cost.
_QUANT_FIELDS = (
    "n_columns",
    "rerank_factor",
    "batch_ms_float32",
    "batch_ms_int8",
    "quant_speedup",
    "recall_at_k",
    "bytes_float32",
    "bytes_int8",
    "warmup_runs",
)

# Fields every artifact-stage row must carry: format-3 mmap cold load vs
# the legacy compressed format-2 decompress-and-copy load.
_ARTIFACT_FIELDS = (
    "n_columns",
    "save_v2_s",
    "save_v3_s",
    "load_v2_s",
    "load_v3_s",
    "load_speedup",
    "artifact_v2_bytes",
    "artifact_v3_bytes",
    "warmup_runs",
)

# Fields every serve-stage row must carry: N concurrent HTTP clients vs a
# live server — thread-per-request single-query baseline against the
# worker-pool + coalescer + query-cache engine — plus the single-client
# fast-path latency contract.
_SERVE_FIELDS = (
    "n_columns",
    "clients",
    "requests",
    "qps_baseline",
    "qps_coalesce_only",
    "qps_engine",
    "coalesced_speedup",
    "p50_baseline_ms",
    "p99_baseline_ms",
    "p50_engine_ms",
    "p99_engine_ms",
    "single_p50_direct_ms",
    "single_p50_coalesced_ms",
    "single_latency_ratio",
    "cache_hit_rate",
    "mean_batch",
    "warmup_runs",
)

# Fields every mpserve-stage row must carry: the multi-process engines vs
# their in-process twins — ProcessShardedIndex search_batch against
# ShardedIndex (with the same merge-exactness probe the shard stage
# runs), and the SO_REUSEPORT HTTP front at 1 vs 2 processes.
# ``transport`` rides along as a string and is validated separately.
_MPSERVE_FIELDS = (
    "n_columns",
    "n_workers",
    "batch_ms_inproc",
    "batch_ms_proc",
    "proc_shard_speedup",
    "merge_equal_fraction",
    "http_clients",
    "http_requests",
    "qps_one_proc",
    "qps_two_proc",
    "http_speedup",
    "warmup_runs",
)

# Fields every overload-stage row must carry: admission control and
# graceful degradation under 2x and 4x offered load — goodput (accepted
# requests per second), shed rate and shed-response latency (fast-fail
# 503s must stay cheap), deadline-miss rate, accepted-request p99, and
# whether the server returned to full non-degraded service afterwards.
_OVERLOAD_FIELDS = (
    "n_columns",
    "workers",
    "queue_depth",
    "clients_1x",
    "p99_unsat_ms",
    "goodput_2x",
    "shed_rate_2x",
    "shed_p99_2x_ms",
    "deadline_miss_rate_2x",
    "goodput_4x",
    "shed_rate_4x",
    "shed_p99_4x_ms",
    "deadline_miss_rate_4x",
    "accepted_p99_4x_ms",
    "recovered",
    "warmup_runs",
)

# Fields every quality-stage row must carry: one (dataset, system, arm)
# cell of the join-quality matrix (see repro.eval.quality) — Figure-4
# precision/recall at every cutoff plus MAP/MRR and wall times.
_QUALITY_FIELDS = (
    "n_queries",
    "p_at_2",
    "p_at_3",
    "p_at_5",
    "p_at_10",
    "r_at_2",
    "r_at_3",
    "r_at_5",
    "r_at_10",
    "map",
    "mrr",
    "index_s",
    "eval_s",
)

# Fields every durability-stage row must carry: per-record WAL append
# cost (fsync'd vs OS-buffered) against the bare in-memory mutation it
# guards, plus checkpoint and full-recovery wall time at scale.
_DURABILITY_FIELDS = (
    "n_columns",
    "wal_records",
    "wal_append_ms",
    "wal_append_nofsync_ms",
    "inmem_update_ms",
    "wal_overhead_x",
    "checkpoint_s",
    "recovery_s",
    "recovered_columns",
    "warmup_runs",
)

# Fields every graph-stage row must carry: full join-graph rebuild vs the
# incremental one-table update path, plus multi-hop path-query latency.
_GRAPH_FIELDS = (
    "n_columns",
    "n_tables",
    "n_edges",
    "build_full_s",
    "incremental_update_s",
    "incremental_speedup",
    "path_query_ms",
    "path_query_unpruned_ms",
    "path_prune_speedup",
    "warmup_runs",
)


def synthetic_corpus(
    n: int,
    dim: int,
    *,
    n_domains: int = 3,
    spread: float = 0.62,
    snapshot_every: int = 8,
    seed_key: str = "perf-corpus",
) -> np.ndarray:
    """Deterministic column-embedding-shaped corpus: ``(n, dim)`` unit rows.

    Warehouse column embeddings are not isotropic noise: columns cluster
    by semantic domain (identifiers, names, amounts, locations — they
    share vocabularies and formats), and snapshots duplicate whole tables
    nearly verbatim.  Each row here is a unit draw around one of
    ``n_domains`` domain centers — within-domain cosines concentrate near
    ``1 - spread²`` (≈ 0.62 by default: hot LSH buckets, dense candidate
    sets, yet below the paper's 0.7 join threshold) — and every
    ``snapshot_every``-th row is a near-duplicate of an earlier row (a
    snapshot copy: the above-threshold joinable answer).  This is the
    regime the paper's Table 2 serves and the batched search path is
    built for.
    """
    rng = rng_for("perf-suite", seed_key, n, dim, n_domains)

    def unit_rows(matrix: np.ndarray) -> np.ndarray:
        return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)

    centers = unit_rows(rng.standard_normal((n_domains, dim)))
    assignment = rng.integers(0, n_domains, size=n)
    ambient = unit_rows(rng.standard_normal((n, dim)))
    matrix = (
        np.sqrt(max(0.0, 1.0 - spread**2)) * centers[assignment]
        + spread * ambient
    )
    # Snapshot copies: overwrite a slice of rows with jittered earlier rows.
    copies = np.arange(snapshot_every, n, snapshot_every)
    if copies.size:
        sources = rng.integers(0, copies, size=copies.size)
        matrix[copies] = matrix[sources] + 0.05 * rng.standard_normal(
            (copies.size, dim)
        )
    return unit_rows(matrix)


def synthetic_columns(
    n: int,
    *,
    values_per_column: int = 40,
    vocab_size: int = 600,
    numeric_every: int = 8,
    seed_key: str = "embed-corpus",
) -> list:
    """Deterministic warehouse-shaped columns for the embed stage.

    Warehouse serializations are dominated by categorical values drawn
    from shared vocabularies (names, codes, cities — the same strings
    recur across thousands of columns) plus low-range numeric columns
    (quantities, small codes) that repeat just as heavily.  That massive
    cross-column value repetition is precisely what the batched pipeline's
    value/token caches exploit, so the corpus reproduces it: every
    ``numeric_every``-th column is small-range integers, the rest sample a
    ``vocab_size``-entry multi-token string vocabulary.
    """
    from repro.storage.column import Column

    rng = rng_for("perf-suite", seed_key, n, values_per_column, vocab_size)
    vocabulary = [f"entity {k:05d} segment{k % 37}" for k in range(vocab_size)]
    columns = []
    for index in range(n):
        if numeric_every and index % numeric_every == 0:
            values = [int(v) for v in rng.integers(0, 250, size=values_per_column)]
            columns.append(Column(f"qty_{index}", values))
        else:
            picks = rng.integers(0, vocab_size, size=values_per_column)
            columns.append(
                Column(f"cat_{index}", [vocabulary[pick] for pick in picks])
            )
    return columns


def _bench_embed_one_size(
    n: int,
    *,
    dim: int,
    values_per_column: int,
    vocab_size: int,
    chunk_size: int,
    repeats: int,
) -> dict:
    """Sequential-vs-batched encode throughput at one corpus size.

    Both arms start cold (module n-gram caches cleared, fresh model and
    encoder) so the numbers describe a from-scratch corpus build; the
    cache hit rate comes from the timed batched run itself — it measures
    value repetition *within* one corpus build, not warm-over-warm replay.
    """
    from repro.embedding.encoder import ColumnEncoder, EncodeStats
    from repro.embedding.hashing import (
        HashingEmbeddingModel,
        _ngram_vector,
        hashed_token_vector,
    )

    columns = synthetic_columns(
        n, values_per_column=values_per_column, vocab_size=vocab_size
    )

    def cold_encoder() -> ColumnEncoder:
        hashed_token_vector.cache_clear()
        _ngram_vector.cache_clear()
        return ColumnEncoder(HashingEmbeddingModel(dim=dim))

    def sequential() -> None:
        encoder = cold_encoder()
        for column in columns:
            encoder.encode(column)

    stats = EncodeStats()

    def batched() -> None:
        stats.__init__()  # keep the stats of the (last) timed run
        encoder = cold_encoder()
        for chunk in chunked(columns, chunk_size):
            _matrix, chunk_stats = encoder.encode_batch(chunk)
            stats.merge(chunk_stats)

    sequential_s = _timed_median(repeats, sequential)
    batched_s = _timed_median(repeats, batched)
    return {
        "n_columns": n,
        "values_per_column": values_per_column,
        "vocab_size": vocab_size,
        "chunk_size": chunk_size,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2),
        "sequential_cols_per_s": round(n / sequential_s, 1),
        "batched_cols_per_s": round(n / batched_s, 1),
        "cache_hit_rate": round(stats.cache_hit_rate, 4),
        "distinct_fraction": round(
            stats.distinct_tokens / max(1, stats.token_occurrences), 4
        ),
        "warmup_runs": _WARMUP_RUNS,
    }


#: Untimed runs before every timed measurement: one pass absorbs the
#: one-shot costs a steady-state number must exclude (lazy imports, numpy
#: first-call dispatch, BLAS thread spin-up, bucket freezing, cache fill
#: where the arm is meant to be warm).  Recorded per stage row.
_WARMUP_RUNS = 1


def _timed_median(repeats: int, run, *, warmup: int = _WARMUP_RUNS) -> float:
    """Warm-up-excluded median wall time of ``run()``.

    Runs ``warmup`` untimed passes, then reports the median of
    ``repeats`` timed ones — the suite's standard noise filter.  The
    median (not best-of) keeps one lucky scheduler slice from defining a
    committed baseline, and the warm-up keeps first-call JIT and
    cache-fill effects out of *every* arm symmetrically.
    """
    for _ in range(max(0, warmup)):
        run()
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return float(statistics.median(times))


def _bench_one_size(
    n: int,
    *,
    dim: int,
    n_bits: int,
    n_bands: int,
    threshold: float,
    batch_size: int,
    k: int,
    repeats: int,
) -> dict:
    # Queries are perturbed corpus columns (cos ≈ 0.98 to their source) —
    # the paper's workload queries the indexed corpus itself.
    corpus, queries = _corpus_and_queries(n, dim, batch_size)
    keys = list(range(n))

    def fresh_index() -> SimHashLSHIndex:
        return SimHashLSHIndex(
            dim, n_bits=n_bits, n_bands=n_bands, threshold=threshold
        )

    # Build (columnar bulk path), timed on fresh indexes.
    def build() -> None:
        index = fresh_index()
        index.bulk_load(keys, corpus)
        index.build()

    build_bulk_s = _timed_median(max(1, repeats // 2), build)

    index = fresh_index()
    index.bulk_load(keys, corpus)
    index.build()

    # Incremental mutation costs on the live index.
    extra = synthetic_corpus(64, dim, seed_key="perf-extra")
    add_start = time.perf_counter()
    for offset in range(extra.shape[0]):
        index.add(n + offset, extra[offset])
    incremental_add_ms = (time.perf_counter() - add_start) / extra.shape[0] * 1e3
    remove_start = time.perf_counter()
    for offset in range(extra.shape[0]):
        index.remove(n + offset)
    remove_ms = (time.perf_counter() - remove_start) / extra.shape[0] * 1e3
    index.build()

    def sequential() -> None:
        for position in range(batch_size):
            index.query(queries[position], k)

    def batched() -> None:
        index.search_batch(queries, k)

    sequential_batch_s = _timed_median(repeats, sequential)
    batch_s = _timed_median(repeats, batched)

    candidate_counts = []
    for position in range(batch_size):
        index.query(queries[position], k)
        candidate_counts.append(index.last_candidate_count)

    return {
        "n_columns": n,
        "build_bulk_s": round(build_bulk_s, 6),
        "incremental_add_ms": round(incremental_add_ms, 4),
        "remove_ms": round(remove_ms, 4),
        "single_query_ms": round(sequential_batch_s / batch_size * 1e3, 4),
        "sequential_batch_ms": round(sequential_batch_s * 1e3, 3),
        "batch_ms": round(batch_s * 1e3, 3),
        "batch_per_query_ms": round(batch_s / batch_size * 1e3, 4),
        "batch_speedup": round(sequential_batch_s / batch_s, 2),
        "candidate_fraction": round(
            float(np.mean(candidate_counts)) / max(1, len(index)), 4
        ),
        "warmup_runs": _WARMUP_RUNS,
    }


def _corpus_and_queries(
    n: int, dim: int, batch_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """The suite's shared workload: corpus + jittered self-queries."""
    corpus = synthetic_corpus(n, dim)
    rng = rng_for("perf-suite", "queries", n, dim)
    picks = rng.integers(0, n, size=batch_size)
    jitter = rng.standard_normal((batch_size, dim))
    jitter /= np.linalg.norm(jitter, axis=1, keepdims=True)
    queries = np.sqrt(1.0 - 0.2**2) * corpus[picks] + 0.2 * jitter
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return corpus, queries


def _bench_shard_one_size(
    n: int,
    *,
    dim: int,
    n_bits: int,
    n_bands: int,
    threshold: float,
    batch_size: int,
    k: int,
    n_shards: int,
    repeats: int,
) -> dict:
    """Batched search on one arena vs the corpus partitioned in ``n_shards``.

    Both engines hold the identical corpus and run the identical query
    block; the sharded run fans per-shard GEMMs out on the shared thread
    pool (numpy releases the GIL, so the speedup tracks the core count —
    the ``environment.cpus`` field records what this host offered).  The
    merge probe cross-checks that every query's sharded result list is
    *identical* to the single-arena list — the exactness invariant the
    property tests pin at small scale, re-verified at benchmark scale.
    """
    from repro.index.sharding import ShardedIndex

    corpus, queries = _corpus_and_queries(n, dim, batch_size)
    keys = list(range(n))

    def make_backend() -> SimHashLSHIndex:
        return SimHashLSHIndex(
            dim, n_bits=n_bits, n_bands=n_bands, threshold=threshold
        )

    single = make_backend()
    single.bulk_load(keys, corpus)
    single.build()
    sharded = ShardedIndex(dim, make_backend, n_shards=n_shards)
    sharded.bulk_load(keys, corpus)
    sharded.build()

    # Merge-exactness probe (also warms both paths; _timed_median warms
    # each arm again before timing).
    single_results = single.search_batch(queries, k)
    sharded_results = sharded.search_batch(queries, k)
    equal = sum(
        1 for got, want in zip(sharded_results, single_results) if got == want
    )

    single_s = _timed_median(repeats, lambda: single.search_batch(queries, k))
    sharded_s = _timed_median(repeats, lambda: sharded.search_batch(queries, k))
    return {
        "n_columns": n,
        "n_shards": n_shards,
        "batch_ms_single": round(single_s * 1e3, 3),
        "batch_ms_sharded": round(sharded_s * 1e3, 3),
        "shard_speedup": round(single_s / sharded_s, 2),
        "merge_equal_fraction": round(equal / batch_size, 4),
        "warmup_runs": _WARMUP_RUNS,
    }


def _bench_quant_one_size(
    n: int,
    *,
    dim: int,
    batch_size: int,
    k: int,
    rerank_factor: int,
    repeats: int,
) -> dict:
    """Int8 candidate scoring + exact re-rank vs full float32 search.

    Runs on the exact backend so the recall number isolates quantization
    (no LSH candidate-generation noise): ``recall_at_k`` is the mean
    fraction of each query's float32 top-k that the int8+re-rank path
    reproduces.  ``bytes_*`` report the resident scoring set — the int8
    code mirror is 4x smaller, which is the memory story when the float32
    matrix stays memory-mapped on disk (artifact format 3).
    """
    from repro.index.exact import ExactCosineIndex

    corpus, queries = _corpus_and_queries(n, dim, batch_size)
    keys = list(range(n))
    floor = 0.5  # dense-but-selective: domain neighbours in, noise out
    index = ExactCosineIndex(dim)
    index.bulk_load(keys, corpus)

    truth = index.search_batch(queries, k, threshold=floor)
    float32_s = _timed_median(
        repeats, lambda: index.search_batch(queries, k, threshold=floor)
    )

    index.enable_quantization(rerank_factor)
    approx = index.search_batch(queries, k, threshold=floor)
    int8_s = _timed_median(
        repeats, lambda: index.search_batch(queries, k, threshold=floor)
    )
    recalls = []
    for got, want in zip(approx, truth):
        if not want:
            continue
        want_keys = {key for key, _score in want}
        got_keys = {key for key, _score in got}
        recalls.append(len(want_keys & got_keys) / len(want_keys))
    return {
        "n_columns": n,
        "rerank_factor": rerank_factor,
        "batch_ms_float32": round(float32_s * 1e3, 3),
        "batch_ms_int8": round(int8_s * 1e3, 3),
        "quant_speedup": round(float32_s / int8_s, 2),
        "recall_at_k": round(float(np.mean(recalls)) if recalls else 1.0, 4),
        "bytes_float32": n * dim * 4,
        "bytes_int8": n * dim,
        "warmup_runs": _WARMUP_RUNS,
    }


def _bench_artifact_one_size(n: int, *, dim: int, repeats: int) -> dict:
    """Format-3 (uncompressed, mmap-adopted) vs format-2 artifact round trip.

    ``load_v3_s`` times :func:`repro.core.persistence.load_index` on the
    current format — header parse + zero-copy arena adoption, no vector
    copy or decompression — against the legacy format-2 path
    (decompress + normalize + bulk-load).  Writes go to a temp dir.
    """
    import tempfile

    from repro.core.config import WarpGateConfig
    from repro.core.persistence import _save_legacy, load_index, save_index
    from repro.core.warpgate import WarpGate
    from repro.storage.schema import ColumnRef

    corpus, _queries = _corpus_and_queries(n, dim, 1)
    refs = [ColumnRef("bench", f"table_{i // 64}", f"col_{i % 64}") for i in range(n)]
    system = WarpGate(WarpGateConfig(model_name="hashing", dim=dim))
    system._index.bulk_load(refs, corpus)
    system._indexed = True

    with tempfile.TemporaryDirectory() as workdir:
        v2_path = Path(workdir) / "index_v2.npz"
        v3_path = Path(workdir) / "index_v3.npz"
        save_v2_s = _timed_median(repeats, lambda: _save_legacy(system, v2_path, version=2))
        save_v3_s = _timed_median(repeats, lambda: save_index(system, v3_path))
        load_v2_s = _timed_median(repeats, lambda: load_index(v2_path))
        load_v3_s = _timed_median(repeats, lambda: load_index(v3_path))
        v2_bytes = v2_path.stat().st_size
        v3_bytes = v3_path.stat().st_size
    return {
        "n_columns": n,
        "save_v2_s": round(save_v2_s, 4),
        "save_v3_s": round(save_v3_s, 4),
        "load_v2_s": round(load_v2_s, 4),
        "load_v3_s": round(load_v3_s, 4),
        "load_speedup": round(load_v2_s / load_v3_s, 1),
        "artifact_v2_bytes": v2_bytes,
        "artifact_v3_bytes": v3_bytes,
        "warmup_runs": _WARMUP_RUNS,
    }


def _bench_durability_one_size(n: int, *, dim: int, repeats: int) -> dict:
    """Durability stage: WAL append overhead and recovery wall time.

    The append arms time one acknowledged single-column mutation each:
    ``wal_append_ms`` is the full ack barrier (frame + write + fsync),
    ``wal_append_nofsync_ms`` drops the fsync (OS-buffered), and
    ``inmem_update_ms`` is the bare in-memory index update the WAL record
    guards — ``wal_overhead_x`` is what crash-durability multiplies onto
    a mutation.  ``recovery_s`` times :func:`load_index_durable` end to
    end (manifest parse, segment checksum + load, WAL replay, engine
    rebuild) on a store holding ``n`` columns plus a replayable WAL tail.
    """
    import tempfile

    from repro.core.config import WarpGateConfig
    from repro.core.persistence import load_index_durable
    from repro.core.warpgate import WarpGate
    from repro.durability.store import DurableIndexStore
    from repro.storage.schema import ColumnRef

    corpus, _queries = _corpus_and_queries(n, dim, 1)
    refs = [ColumnRef("bench", f"table_{i // 64}", f"col_{i % 64}") for i in range(n)]
    system = WarpGate(WarpGateConfig(model_name="hashing", dim=dim))
    system._index.bulk_load(refs, corpus)
    system._indexed = True

    wal_records = min(256, n)
    churn = refs[:wal_records]
    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)

        def _append_run(store: DurableIndexStore) -> None:
            for position, ref in enumerate(churn):
                store.log_upsert([ref], corpus[position : position + 1])

        with DurableIndexStore(workdir / "wal-fsync", fsync="always") as store:
            append_s = _timed_median(repeats, lambda: _append_run(store))
        with DurableIndexStore(workdir / "wal-buffered", fsync="never") as store:
            buffered_s = _timed_median(repeats, lambda: _append_run(store))

        def _inmem_run() -> None:
            for position, ref in enumerate(churn):
                system._index.update(ref, corpus[position])

        inmem_s = _timed_median(repeats, _inmem_run)

        with DurableIndexStore(workdir / "ckpt", fsync="always") as store:
            checkpoint_s = _timed_median(repeats, lambda: store.checkpoint(system))

        # Recovery target: a checkpointed base plus a replayable WAL tail
        # (single-column upserts of existing refs, the serving churn shape).
        recover_dir = workdir / "recover"
        with DurableIndexStore(recover_dir, fsync="never") as store:
            store.checkpoint(system)
            _append_run(store)
        recovered: dict = {}

        def _recover_run() -> None:
            engine, store, report = load_index_durable(recover_dir)
            store.close()
            recovered.update(report)

        recovery_s = _timed_median(repeats, _recover_run)

    per_record = 1e3 / wal_records
    append_ms = append_s * per_record
    inmem_ms = inmem_s * per_record
    return {
        "n_columns": n,
        "wal_records": wal_records,
        "wal_append_ms": round(append_ms, 4),
        "wal_append_nofsync_ms": round(buffered_s * per_record, 4),
        "inmem_update_ms": round(inmem_ms, 4),
        "wal_overhead_x": round(append_ms / inmem_ms, 1) if inmem_ms else 0.0,
        "checkpoint_s": round(checkpoint_s, 4),
        "recovery_s": round(recovery_s, 4),
        "recovered_columns": int(recovered.get("recovered_columns", 0)),
        "warmup_runs": _WARMUP_RUNS,
    }


def _bench_graph_one_size(
    n: int, *, dim: int, edge_threshold: float, repeats: int
) -> dict:
    """Join-graph stage: full rebuild vs one-table incremental update.

    The corpus is grouped into 64-column tables (the bench ref
    convention).  The full arm invalidates everything and re-sweeps all
    tables; the incremental arm invalidates exactly one pre-added table
    of jittered near-duplicate columns, so each timed run pays one
    batched sweep plus edge surgery — the cost ``add_table`` churn
    actually incurs in serving.  ``path_query_ms`` is the mean
    ``find_paths`` latency over table pairs known to be connected.
    """
    from repro.core.config import WarpGateConfig
    from repro.core.warpgate import WarpGate
    from repro.graph.joingraph import JoinGraph
    from repro.storage.schema import ColumnRef

    corpus, _queries = _corpus_and_queries(n, dim, 1)
    refs = [ColumnRef("bench", f"table_{i // 64}", f"col_{i % 64}") for i in range(n)]
    system = WarpGate(WarpGateConfig(model_name="hashing", dim=dim))
    system._index.bulk_load(refs, corpus)
    system._indexed = True
    graph = JoinGraph(system, edge_threshold=edge_threshold)

    def full_rebuild() -> None:
        graph.invalidate_all()
        graph.ensure_current()

    build_full_s = _timed_median(repeats, full_rebuild)
    n_tables = len(graph.tables())
    n_edges = len(graph.edges())

    pairs = [edge.tables for edge in graph.edges()[:32]]

    def run_paths() -> None:
        for src, dst in pairs:
            graph.find_paths(src, dst, max_hops=3, limit=5)

    def run_paths_unpruned() -> None:
        # A callable combiner disables the best-possible-score prune in
        # enumerate_paths, so this arm measures the exhaustive DFS the
        # named "product" combiner used to pay.
        for src, dst in pairs:
            graph.find_paths(
                src,
                dst,
                max_hops=3,
                limit=5,
                combiner=lambda scores: math.prod(list(scores)),
            )

    path_query_ms = (
        _timed_median(repeats, run_paths) * 1e3 / len(pairs) if pairs else 0.0
    )
    path_query_unpruned_ms = (
        _timed_median(repeats, run_paths_unpruned) * 1e3 / len(pairs)
        if pairs
        else 0.0
    )

    # One extra table of jittered copies of existing rows joins the
    # corpus once (untimed); every timed run then re-syncs exactly it.
    rng = np.random.default_rng(1729)
    extra = corpus[rng.integers(0, n, size=64)] + 0.05 * rng.normal(
        size=(64, dim)
    ).astype(np.float32)
    extra = (extra / np.linalg.norm(extra, axis=1, keepdims=True)).astype(np.float32)
    extra_refs = [
        ColumnRef("bench", "table_incremental", f"col_{i}") for i in range(64)
    ]
    for ref, vector in zip(extra_refs, extra):
        system._index.add(ref, vector)
    graph.ensure_current()  # absorb the new table before timing starts

    def incremental_update() -> None:
        graph.invalidate_table(("bench", "table_incremental"))
        graph.ensure_current()

    incremental_update_s = _timed_median(repeats, incremental_update)
    return {
        "n_columns": n,
        "n_tables": n_tables,
        "n_edges": n_edges,
        "build_full_s": round(build_full_s, 4),
        "incremental_update_s": round(incremental_update_s, 6),
        "incremental_speedup": round(
            build_full_s / max(incremental_update_s, 1e-9), 1
        ),
        "path_query_ms": round(path_query_ms, 4),
        "path_query_unpruned_ms": round(path_query_unpruned_ms, 4),
        "path_prune_speedup": round(
            path_query_unpruned_ms / max(path_query_ms, 1e-9), 2
        ),
        "warmup_runs": _WARMUP_RUNS,
    }


def _serve_service(
    refs: list,
    corpus: np.ndarray,
    query_names: list[str],
    query_vectors: np.ndarray,
    *,
    dim: int,
    coalesce: bool,
    query_cache_size: int,
    overload: dict | None = None,
):
    """A DiscoveryService over a pre-built synthetic index.

    The index is bulk-loaded directly (no warehouse scan) and every
    benchmark query ref is pre-seeded into the engine's embedding cache,
    so serving requests exercise exactly the request → probe → respond
    path the stage measures — never CSV parsing or column encoding.
    ``overload`` optionally overrides the config's overload-protection
    knobs (``with_overload`` keywords) for the overload stage.
    """
    from repro.core.config import WarpGateConfig
    from repro.core.profiles import EmbeddingCache
    from repro.core.warpgate import WarpGate
    from repro.service.discovery import DiscoveryService
    from repro.storage.schema import ColumnRef

    cache = EmbeddingCache()
    config = WarpGateConfig(model_name="hashing", dim=dim).with_serving(
        coalesce=coalesce, query_cache_size=query_cache_size
    )
    if overload:
        config = config.with_overload(**overload)
    engine = WarpGate(config, cache=cache)
    engine._index.bulk_load(refs, corpus)
    engine._indexed = True
    engine.rebuild_index()
    for name, vector in zip(query_names, query_vectors):
        cache.put(ColumnRef.parse(name), vector)
    return DiscoveryService(engine=engine)


def _drive_clients(
    port: int,
    names: list[str],
    *,
    clients: int,
    k: int,
    threshold: float,
    keepalive: bool,
) -> tuple[float, list[float]]:
    """Fire ``names`` as ``POST /search`` bodies from ``clients`` threads.

    Returns ``(wall_s, per-request latencies)``.  With ``keepalive`` each
    client keeps one persistent connection; without it every request
    opens its own (the thread-per-request regime).  TCP_NODELAY is set
    client-side to keep Nagle/delayed-ACK stalls out of the numbers.
    """
    import http.client
    import socket

    def connect() -> http.client.HTTPConnection:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.connect()
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    chunks = [names[position::clients] for position in range(clients)]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    failures: list[str] = []

    def run_client(chunk: list[str], sink: list[float]) -> None:
        connection = connect() if keepalive else None
        headers = {"Content-Type": "application/json"}
        try:
            for name in chunk:
                body = json.dumps({"query": name, "k": k, "threshold": threshold})
                start = time.perf_counter()
                if keepalive:
                    connection.request("POST", "/search", body=body, headers=headers)
                    response = connection.getresponse()
                    payload = response.read()
                else:
                    one_shot = connect()
                    one_shot.request(
                        "POST",
                        "/search",
                        body=body,
                        headers={**headers, "Connection": "close"},
                    )
                    response = one_shot.getresponse()
                    payload = response.read()
                    one_shot.close()
                sink.append(time.perf_counter() - start)
                if response.status != 200:
                    failures.append(payload.decode("utf-8", "replace")[:200])
                    return
        finally:
            if connection is not None:
                connection.close()

    threads = [
        threading.Thread(target=run_client, args=(chunk, sink))
        for chunk, sink in zip(chunks, latencies)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if failures:
        raise RuntimeError(f"serve bench request failed: {failures[0]}")
    return wall, [entry for sink in latencies for entry in sink]


def _percentile_ms(latencies: list[float], fraction: float) -> float:
    ordered = sorted(latencies)
    position = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[position] * 1e3


def _bench_serve_one_size(
    n: int,
    *,
    dim: int,
    k: int,
    clients: int,
    requests_per_client: int,
    threshold: float = 0.5,
    query_pool: int = 256,
) -> dict:
    """Concurrent HTTP serving: thread-per-request baseline vs the engine.

    Both arms serve the identical 10k-style synthetic index and the
    identical query stream (a ``query_pool``-wide pool cycled by N
    concurrent clients — BI traffic repeats its probes, which is what the
    query cache exists for):

    * **baseline** — :class:`~repro.service.server.ThreadPerRequestHTTPServer`,
      one connection (= one spawned thread) per request, coalescing and
      query cache off: every request is an isolated single-vector query,
      the pre-engine architecture.
    * **coalesce-only** — the worker-pool server with persistent
      connections and coalescing but the query cache off, so the report
      decomposes how much of the engine win is batching vs result reuse.
    * **engine** — the worker-pool server with persistent connections,
      request coalescing, and the generation-keyed query cache at their
      config defaults; ``coalesced_speedup`` is this arm over baseline.

    A warm-up pass per arm (excluded from timing) absorbs connection
    ramp-up and fills the query cache to steady state;
    ``cache_hit_rate`` is computed over the timed window only.  The
    single-client probe then pins the fast-path contract: coalescing on
    vs off (cache off in both) over one keep-alive connection —
    ``single_latency_ratio`` is the p50 ratio, and must stay ~1.
    """
    from repro.service.server import ThreadPerRequestHTTPServer, make_server
    from repro.storage.schema import ColumnRef

    corpus, query_vectors = _corpus_and_queries(n, dim, query_pool)
    refs = [ColumnRef("bench", f"table_{i // 64}", f"col_{i % 64}") for i in range(n)]
    query_names = [f"bench.queries.q{position}" for position in range(query_pool)]
    total = clients * requests_per_client
    stream = [query_names[position % query_pool] for position in range(total)]
    warm_stream = stream[: max(clients * 8, query_pool)]

    def build(coalesce: bool, cache_size: int):
        return _serve_service(
            refs,
            corpus,
            query_names,
            query_vectors,
            dim=dim,
            coalesce=coalesce,
            query_cache_size=cache_size,
        )

    drive = dict(clients=clients, k=k, threshold=threshold)

    # Arm 1: thread-per-request single-query baseline.
    baseline = build(False, 0)
    server = ThreadPerRequestHTTPServer(("127.0.0.1", 0), baseline)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    try:
        port = server.server_address[1]
        _drive_clients(port, warm_stream, keepalive=False, **drive)
        baseline_wall, baseline_lat = _drive_clients(
            port, stream, keepalive=False, **drive
        )
    finally:
        server.shutdown()
        server.server_close()
        accept.join(timeout=10)

    # Arm 2: pool + keep-alive + coalescer, query cache off — isolates
    # what coalescing alone buys before result reuse enters the picture.
    coalesce_only = build(True, 0)
    with make_server(coalesce_only, port=0, workers=clients + 2) as server:
        port = server.server_address[1]
        _drive_clients(port, warm_stream, keepalive=True, **drive)
        coalesce_wall, _lat = _drive_clients(port, stream, keepalive=True, **drive)

    # Arm 3: the full serving engine (pool + keep-alive + coalescer + cache).
    engine = build(True, 4096)
    with make_server(engine, port=0, workers=clients + 2) as server:
        port = server.server_address[1]
        _drive_clients(port, warm_stream, keepalive=True, **drive)
        cache_stats = engine.query_cache.stats()
        warm_hits, warm_misses = cache_stats["hits"], cache_stats["misses"]
        engine_wall, engine_lat = _drive_clients(port, stream, keepalive=True, **drive)
    cache_stats = engine.query_cache.stats()
    timed_hits = cache_stats["hits"] - warm_hits
    timed_misses = cache_stats["misses"] - warm_misses
    coalescer_stats = engine.coalescer.stats()

    # Single-client fast-path probe: coalescing must not tax sparse
    # traffic (cache off in both arms so the comparison isolates it).
    single_stream = [query_names[position % query_pool] for position in range(256)]
    singles: dict[bool, list[float]] = {}
    for coalesce in (False, True):
        service = build(coalesce, 0)
        with make_server(service, port=0, workers=2) as server:
            port = server.server_address[1]
            _drive_clients(
                port, single_stream[:32], clients=1, k=k,
                threshold=threshold, keepalive=True,
            )
            _wall, singles[coalesce] = _drive_clients(
                port, single_stream, clients=1, k=k,
                threshold=threshold, keepalive=True,
            )
    single_p50_direct = _percentile_ms(singles[False], 0.5)
    single_p50_coalesced = _percentile_ms(singles[True], 0.5)

    return {
        "n_columns": n,
        "clients": clients,
        "requests": total,
        "query_pool": query_pool,
        "qps_baseline": round(total / baseline_wall, 1),
        "qps_coalesce_only": round(total / coalesce_wall, 1),
        "qps_engine": round(total / engine_wall, 1),
        "coalesced_speedup": round(baseline_wall / engine_wall, 2),
        "p50_baseline_ms": round(_percentile_ms(baseline_lat, 0.5), 3),
        "p99_baseline_ms": round(_percentile_ms(baseline_lat, 0.99), 3),
        "p50_engine_ms": round(_percentile_ms(engine_lat, 0.5), 3),
        "p99_engine_ms": round(_percentile_ms(engine_lat, 0.99), 3),
        "single_p50_direct_ms": round(single_p50_direct, 3),
        "single_p50_coalesced_ms": round(single_p50_coalesced, 3),
        "single_latency_ratio": round(single_p50_coalesced / single_p50_direct, 3),
        "cache_hit_rate": round(
            timed_hits / max(1, timed_hits + timed_misses), 4
        ),
        "mean_batch": coalescer_stats["mean_batch"],
        "batch_histogram": coalescer_stats["batch_histogram"],
        "warmup_runs": _WARMUP_RUNS,
    }


def _drive_overload_clients(
    port: int,
    names: list[str],
    *,
    clients: int,
    k: int,
    threshold: float,
    deadline_ms: int | None,
) -> tuple[float, list[tuple[int, float]]]:
    """Fire ``names`` connection-per-request and keep *every* outcome.

    Unlike :func:`_drive_clients` (which treats any non-200 as a broken
    bench), the overload stage drives the server past saturation on
    purpose: 503 (shed) and 504 (deadline) are the behaviors under
    measurement.  Connection-per-request traffic is what exercises
    admission control — keep-alive clients would pin workers and never
    touch the queue.  Returns ``(wall_s, [(status, latency_s), ...])``;
    a connection torn down before a response parses is recorded as
    status 0 (it neither counts as goodput nor as a clean shed).
    """
    import http.client
    import socket

    chunks = [names[position::clients] for position in range(clients)]
    outcomes: list[list[tuple[int, float]]] = [[] for _ in range(clients)]

    def run_client(chunk: list[str], sink: list[tuple[int, float]]) -> None:
        headers = {"Content-Type": "application/json", "Connection": "close"}
        for name in chunk:
            body = {"query": name, "k": k, "threshold": threshold}
            if deadline_ms is not None:
                body["deadline_ms"] = deadline_ms
            encoded = json.dumps(body)
            start = time.perf_counter()
            try:
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=30
                )
                connection.connect()
                connection.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                connection.request(
                    "POST", "/search", body=encoded, headers=headers
                )
                response = connection.getresponse()
                response.read()
                status = response.status
                connection.close()
            except (OSError, http.client.HTTPException):
                status = 0
            sink.append((status, time.perf_counter() - start))

    threads = [
        threading.Thread(target=run_client, args=(chunk, sink))
        for chunk, sink in zip(chunks, outcomes)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return wall, [entry for sink in outcomes for entry in sink]


def _bench_overload_one_size(
    n: int,
    *,
    dim: int,
    k: int,
    requests_per_client: int,
    threshold: float = 0.5,
    query_pool: int = 256,
    workers: int = 4,
    queue_depth: int = 4,
    deadline_ms: int = 10_000,
) -> dict:
    """Overload behavior at 1x, 2x, and 4x offered load.

    One deliberately small serving engine (``workers`` pool threads, an
    admission queue of ``queue_depth``) faces connection-per-request
    client fleets at the worker count (unsaturated), twice it, and four
    times it.  The stage records what the overload-protection layer
    promises: goodput holds up, excess load is shed with fast 503s (shed
    p99 is the latency of *rejection*, which must stay far below the
    latency of service), deadline misses stay rare with a sane budget,
    and after the burst the server walks back to full non-degraded
    service (``recovered``).
    """
    from repro.service.server import make_server
    from repro.storage.schema import ColumnRef

    corpus, query_vectors = _corpus_and_queries(n, dim, query_pool)
    refs = [ColumnRef("bench", f"table_{i // 64}", f"col_{i % 64}") for i in range(n)]
    query_names = [f"bench.queries.q{position}" for position in range(query_pool)]
    # Aggressive degradation thresholds + a short recovery window keep the
    # post-burst recovery check inside bench-scale wall time.
    service = _serve_service(
        refs,
        corpus,
        query_names,
        query_vectors,
        dim=dim,
        coalesce=True,
        query_cache_size=4096,
        overload={
            "degrade_shed_threshold": max(4, queue_depth),
            "degrade_window_s": 5.0,
            "degrade_recovery_s": 0.4,
        },
    )
    clients_1x = workers

    def offered(multiple: int) -> list[str]:
        total = clients_1x * multiple * requests_per_client
        return [query_names[position % query_pool] for position in range(total)]

    def pass_at(multiple: int) -> tuple[float, list[tuple[int, float]]]:
        return _drive_overload_clients(
            port,
            offered(multiple),
            clients=clients_1x * multiple,
            k=k,
            threshold=threshold,
            deadline_ms=deadline_ms,
        )

    def split(outcomes: list[tuple[int, float]]):
        accepted = [latency for status, latency in outcomes if status == 200]
        shed = [latency for status, latency in outcomes if status == 503]
        missed = [latency for status, latency in outcomes if status == 504]
        return accepted, shed, missed

    with make_server(
        service,
        port=0,
        workers=workers,
        admission_queue_depth=queue_depth,
    ) as server:
        port = server.server_address[1]
        # Warm-up at 1x (connection ramp, cache fill), then the measured
        # unsaturated pass that sets the accepted-latency yardstick.
        _drive_overload_clients(
            port,
            offered(1)[: clients_1x * 8],
            clients=clients_1x,
            k=k,
            threshold=threshold,
            deadline_ms=deadline_ms,
        )
        _wall, unsat = pass_at(1)
        unsat_accepted, _, _ = split(unsat)
        p99_unsat = _percentile_ms(unsat_accepted, 0.99) if unsat_accepted else 0.0
        results: dict[int, dict] = {}
        for multiple in (2, 4):
            wall, outcomes = pass_at(multiple)
            accepted, shed, missed = split(outcomes)
            results[multiple] = {
                "goodput": round(len(accepted) / wall, 1),
                "shed_rate": round(len(shed) / max(1, len(outcomes)), 4),
                "shed_p99_ms": round(
                    _percentile_ms(shed, 0.99) if shed else 0.0, 3
                ),
                "deadline_miss_rate": round(
                    len(missed) / max(1, len(outcomes)), 4
                ),
                "accepted_p99_ms": round(
                    _percentile_ms(accepted, 0.99) if accepted else 0.0, 3
                ),
            }
        # Recovery: the degradation tier must walk back to normal and a
        # fresh request must be admitted and served at full fidelity.
        deadline = time.monotonic() + 15.0
        while (
            service.degradation.tier() != 0 and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        _wall, after = _drive_overload_clients(
            port,
            offered(1)[:clients_1x],
            clients=clients_1x,
            k=k,
            threshold=threshold,
            deadline_ms=deadline_ms,
        )
        recovered = (
            service.degradation.tier() == 0
            and all(status == 200 for status, _latency in after)
        )
        admission = server.admission_stats()

    return {
        "n_columns": n,
        "workers": workers,
        "queue_depth": queue_depth,
        "clients_1x": clients_1x,
        "requests_per_client": requests_per_client,
        "deadline_ms": deadline_ms,
        "p99_unsat_ms": round(p99_unsat, 3),
        "goodput_2x": results[2]["goodput"],
        "shed_rate_2x": results[2]["shed_rate"],
        "shed_p99_2x_ms": results[2]["shed_p99_ms"],
        "deadline_miss_rate_2x": results[2]["deadline_miss_rate"],
        "goodput_4x": results[4]["goodput"],
        "shed_rate_4x": results[4]["shed_rate"],
        "shed_p99_4x_ms": results[4]["shed_p99_ms"],
        "deadline_miss_rate_4x": results[4]["deadline_miss_rate"],
        "accepted_p99_4x_ms": results[4]["accepted_p99_ms"],
        "sheds_total": admission["sheds"],
        "recovered": 1.0 if recovered else 0.0,
        "warmup_runs": _WARMUP_RUNS,
    }


def _bench_mpserve_one_size(
    n: int,
    *,
    dim: int,
    n_bits: int,
    n_bands: int,
    threshold: float,
    batch_size: int,
    k: int,
    n_workers: int,
    transport: str,
    repeats: int,
    clients: int,
    requests_per_client: int,
    query_pool: int = 128,
) -> dict:
    """Multi-process engines vs their in-process twins at one corpus size.

    Two arms, both exactness-checked:

    * **index fan-out** — the identical corpus partitioned across
      ``n_workers``, batched search on the in-process
      :class:`~repro.index.sharding.ShardedIndex` (thread fan-out, GIL
      released only inside the GEMMs) vs the
      :class:`~repro.index.procpool.ProcessShardedIndex` (one worker
      process per shard, shared-mmap segments, GIL-free end to end).
      ``merge_equal_fraction`` re-verifies at benchmark scale the
      bitwise-identical merge the property tests pin: both engines must
      return the *same* ranked lists.
    * **HTTP front** — the same pre-built synthetic service behind the
      ``SO_REUSEPORT`` :class:`~repro.service.mpserve.MultiProcessServer`
      at 1 vs 2 processes, driven by ``clients`` keep-alive connections.

    On a single-core host both speedups hover near (or below) 1x — the
    IPC and fork overhead buys nothing without parallel hardware — which
    is why the CI gate on ``proc_shard_speedup`` is conditional on
    ``environment.cpus > 1``; the single-core assertion is parity of
    *results*, not of speed.
    """
    from repro.index.procpool import ProcessShardedIndex
    from repro.index.sharding import ShardedIndex
    from repro.service.mpserve import MultiProcessServer
    from repro.storage.schema import ColumnRef

    corpus, queries = _corpus_and_queries(n, dim, batch_size)
    keys = list(range(n))

    def make_backend() -> SimHashLSHIndex:
        return SimHashLSHIndex(
            dim, n_bits=n_bits, n_bands=n_bands, threshold=threshold
        )

    inproc = ShardedIndex(dim, make_backend, n_shards=n_workers)
    inproc.bulk_load(keys, corpus)
    inproc.build()
    inproc_results = inproc.search_batch(queries, k)
    inproc_s = _timed_median(repeats, lambda: inproc.search_batch(queries, k))

    with ProcessShardedIndex(
        dim, make_backend, n_shards=n_workers, transport=transport
    ) as proc:
        proc.bulk_load(keys, corpus)
        proc.build()
        # Parity probe (also publishes segments and warms the workers).
        proc_results = proc.search_batch(queries, k)
        equal = sum(
            1 for got, want in zip(proc_results, inproc_results) if got == want
        )
        proc_s = _timed_median(repeats, lambda: proc.search_batch(queries, k))

    # HTTP arm: identical service factory, 1 vs 2 SO_REUSEPORT processes.
    _, query_vectors = _corpus_and_queries(n, dim, query_pool)
    refs = [ColumnRef("bench", f"table_{i // 64}", f"col_{i % 64}") for i in range(n)]
    query_names = [f"bench.queries.q{position}" for position in range(query_pool)]
    total = clients * requests_per_client
    stream = [query_names[position % query_pool] for position in range(total)]
    warm_stream = stream[: max(clients * 4, 32)]

    def factory():
        return _serve_service(
            refs,
            corpus,
            query_names,
            query_vectors,
            dim=dim,
            coalesce=True,
            query_cache_size=4096,
        )

    drive = dict(clients=clients, k=k, threshold=0.5, keepalive=True)
    walls: dict[int, float] = {}
    for procs in (1, 2):
        with MultiProcessServer(
            factory, port=0, procs=procs, workers=clients + 2
        ) as front:
            _drive_clients(front.port, warm_stream, **drive)
            walls[procs], _latencies = _drive_clients(front.port, stream, **drive)

    return {
        "n_columns": n,
        "n_workers": n_workers,
        "transport": transport,
        "batch_ms_inproc": round(inproc_s * 1e3, 3),
        "batch_ms_proc": round(proc_s * 1e3, 3),
        "proc_shard_speedup": round(inproc_s / proc_s, 2),
        "merge_equal_fraction": round(equal / batch_size, 4),
        "http_clients": clients,
        "http_requests": total,
        "qps_one_proc": round(total / walls[1], 1),
        "qps_two_proc": round(total / walls[2], 1),
        "http_speedup": round(walls[1] / walls[2], 2),
        "warmup_runs": _WARMUP_RUNS,
    }


def run_perf_suite(
    *,
    profile: str = "full",
    sizes: tuple[int, ...] | None = None,
    dim: int = 256,
    n_bits: int = 128,
    n_bands: int = 16,
    threshold: float = 0.7,
    batch_size: int = 64,
    k: int = 10,
    repeats: int | None = None,
    embed_sizes: tuple[int, ...] | None = None,
    embed_repeats: int | None = None,
    embed_dim: int = 64,
    embed_values_per_column: int = 40,
    embed_vocab_size: int = 600,
    embed_chunk_size: int = 512,
    shard_sizes: tuple[int, ...] | None = None,
    quant_sizes: tuple[int, ...] | None = None,
    artifact_sizes: tuple[int, ...] | None = None,
    n_shards: int = 4,
    rerank_factor: int = 4,
    stage_repeats: int | None = None,
    serve_sizes: tuple[int, ...] | None = None,
    serve_clients: int | None = None,
    serve_requests_per_client: int | None = None,
    mpserve_sizes: tuple[int, ...] | None = None,
    mpserve_clients: int | None = None,
    mpserve_requests_per_client: int | None = None,
    overload_sizes: tuple[int, ...] | None = None,
    overload_requests_per_client: int | None = None,
    worker_transport: str = "pipe",
    graph_sizes: tuple[int, ...] | None = None,
    graph_edge_threshold: float = 0.7,
    durability_sizes: tuple[int, ...] | None = None,
    quality_profile: str | None = None,
    stages: tuple[str, ...] | None = None,
    progress=None,
) -> dict:
    """Time index search paths and embedding throughput per corpus size.

    Returns the report dict: ``results`` rows follow ``_RESULT_FIELDS``
    (search side), ``embed`` rows follow ``_EMBED_FIELDS`` (sequential vs
    batched encode), ``shard`` rows ``_SHARD_FIELDS`` (1-arena vs
    partitioned search), ``quant`` rows ``_QUANT_FIELDS`` (float32 vs
    int8+re-rank, with recall@k), ``artifact`` rows ``_ARTIFACT_FIELDS``
    (format-2 vs format-3 cold loads), ``serve`` rows ``_SERVE_FIELDS``
    (concurrent HTTP clients against the live serving engine vs the
    thread-per-request baseline), ``graph`` rows ``_GRAPH_FIELDS`` (full
    join-graph rebuild vs incremental one-table update, plus multi-hop
    path-query latency), and ``quality`` rows ``_QUALITY_FIELDS`` (the
    join-quality matrix of :mod:`repro.eval.quality` — precision/recall@k,
    MAP, MRR per (dataset, system, arm) cell).  ``stages`` selects a
    subset of :data:`ALL_STAGES` (default: all); skipped stages appear as
    empty lists and the report's ``stages`` key records what ran.  Pass
    ``progress`` (a callable taking one string) for per-size console
    feedback.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    spec = PROFILES[profile]
    if stages is None:
        stages = ALL_STAGES
    else:
        stages = tuple(stages)
        unknown = sorted(set(stages) - set(ALL_STAGES))
        if unknown:
            raise ValueError(
                f"unknown stage(s) {unknown}; choose from {list(ALL_STAGES)}"
            )
        stages = tuple(stage for stage in ALL_STAGES if stage in stages)
    sizes = tuple(sizes) if sizes is not None else spec["sizes"]
    repeats = repeats if repeats is not None else spec["repeats"]
    embed_sizes = (
        tuple(embed_sizes) if embed_sizes is not None else spec["embed_sizes"]
    )
    embed_repeats = (
        embed_repeats if embed_repeats is not None else spec.get("embed_repeats", 2)
    )
    shard_sizes = (
        tuple(shard_sizes) if shard_sizes is not None else spec["shard_sizes"]
    )
    quant_sizes = (
        tuple(quant_sizes) if quant_sizes is not None else spec["quant_sizes"]
    )
    artifact_sizes = (
        tuple(artifact_sizes)
        if artifact_sizes is not None
        else spec["artifact_sizes"]
    )
    stage_repeats = (
        stage_repeats if stage_repeats is not None else spec.get("stage_repeats", 2)
    )
    serve_sizes = (
        tuple(serve_sizes) if serve_sizes is not None else spec["serve_sizes"]
    )
    serve_clients = (
        serve_clients if serve_clients is not None else spec.get("serve_clients", 16)
    )
    serve_requests_per_client = (
        serve_requests_per_client
        if serve_requests_per_client is not None
        else spec.get("serve_requests_per_client", 64)
    )
    mpserve_sizes = (
        tuple(mpserve_sizes)
        if mpserve_sizes is not None
        else spec["mpserve_sizes"]
    )
    mpserve_clients = (
        mpserve_clients
        if mpserve_clients is not None
        else spec.get("mpserve_clients", 8)
    )
    mpserve_requests_per_client = (
        mpserve_requests_per_client
        if mpserve_requests_per_client is not None
        else spec.get("mpserve_requests_per_client", 32)
    )
    overload_sizes = (
        tuple(overload_sizes)
        if overload_sizes is not None
        else spec.get("overload_sizes", (10_000,))
    )
    overload_requests_per_client = (
        overload_requests_per_client
        if overload_requests_per_client is not None
        else spec.get("overload_requests_per_client", 64)
    )
    graph_sizes = (
        tuple(graph_sizes) if graph_sizes is not None else spec["graph_sizes"]
    )
    durability_sizes = (
        tuple(durability_sizes)
        if durability_sizes is not None
        else spec["durability_sizes"]
    )
    quality_profile = (
        quality_profile
        if quality_profile is not None
        else spec.get("quality_profile", "small")
    )
    results = []
    for n in sizes if "results" in stages else ():
        if progress is not None:
            progress(f"benchmarking {n} columns ...")
        results.append(
            _bench_one_size(
                n,
                dim=dim,
                n_bits=n_bits,
                n_bands=n_bands,
                threshold=threshold,
                batch_size=batch_size,
                k=k,
                repeats=repeats,
            )
        )
    embed_results = []
    for n in embed_sizes if "embed" in stages else ():
        if progress is not None:
            progress(f"benchmarking embed throughput at {n} columns ...")
        embed_results.append(
            _bench_embed_one_size(
                n,
                dim=embed_dim,
                values_per_column=embed_values_per_column,
                vocab_size=embed_vocab_size,
                chunk_size=embed_chunk_size,
                repeats=embed_repeats,
            )
        )
    shard_results = []
    for n in shard_sizes if "shard" in stages else ():
        if progress is not None:
            progress(f"benchmarking {n_shards}-shard search at {n} columns ...")
        shard_results.append(
            _bench_shard_one_size(
                n,
                dim=dim,
                n_bits=n_bits,
                n_bands=n_bands,
                threshold=threshold,
                batch_size=batch_size,
                k=k,
                n_shards=n_shards,
                repeats=stage_repeats,
            )
        )
    quant_results = []
    for n in quant_sizes if "quant" in stages else ():
        if progress is not None:
            progress(f"benchmarking int8 scoring at {n} columns ...")
        quant_results.append(
            _bench_quant_one_size(
                n,
                dim=dim,
                batch_size=batch_size,
                k=k,
                rerank_factor=rerank_factor,
                repeats=stage_repeats,
            )
        )
    artifact_results = []
    for n in artifact_sizes if "artifact" in stages else ():
        if progress is not None:
            progress(f"benchmarking artifact formats at {n} columns ...")
        artifact_results.append(
            _bench_artifact_one_size(n, dim=dim, repeats=stage_repeats)
        )
    serve_results = []
    for n in serve_sizes if "serve" in stages else ():
        if progress is not None:
            progress(
                f"benchmarking HTTP serving with {serve_clients} clients "
                f"at {n} columns ..."
            )
        serve_results.append(
            _bench_serve_one_size(
                n,
                dim=dim,
                k=k,
                clients=serve_clients,
                requests_per_client=serve_requests_per_client,
            )
        )
    mpserve_results = []
    for n in mpserve_sizes if "mpserve" in stages else ():
        if progress is not None:
            progress(
                f"benchmarking {n_shards} shard worker processes at "
                f"{n} columns ..."
            )
        mpserve_results.append(
            _bench_mpserve_one_size(
                n,
                dim=dim,
                n_bits=n_bits,
                n_bands=n_bands,
                threshold=threshold,
                batch_size=batch_size,
                k=k,
                n_workers=n_shards,
                transport=worker_transport,
                repeats=stage_repeats,
                clients=mpserve_clients,
                requests_per_client=mpserve_requests_per_client,
            )
        )
    overload_results = []
    for n in overload_sizes if "overload" in stages else ():
        if progress is not None:
            progress(
                f"benchmarking overload shedding at {n} columns "
                f"(2x and 4x offered load) ..."
            )
        overload_results.append(
            _bench_overload_one_size(
                n,
                dim=dim,
                k=k,
                requests_per_client=overload_requests_per_client,
            )
        )
    graph_results = []
    for n in graph_sizes if "graph" in stages else ():
        if progress is not None:
            progress(f"benchmarking join graph at {n} columns ...")
        graph_results.append(
            _bench_graph_one_size(
                n,
                dim=dim,
                edge_threshold=graph_edge_threshold,
                repeats=stage_repeats,
            )
        )
    durability_results = []
    for n in durability_sizes if "durability" in stages else ():
        if progress is not None:
            progress(f"benchmarking durable store at {n} columns ...")
        durability_results.append(
            _bench_durability_one_size(n, dim=dim, repeats=stage_repeats)
        )
    quality_results = []
    if "quality" in stages:
        from repro.eval.quality import run_quality_suite

        if progress is not None:
            progress(
                f"benchmarking join quality ({quality_profile} matrix) ..."
            )
        quality_results = run_quality_suite(
            profile=quality_profile, progress=progress
        )["rows"]
    return {
        "schema_version": _SCHEMA_VERSION,
        "suite": "index-perf",
        "profile": profile,
        "stages": list(stages),
        "config": {
            "backend": "lsh",
            "dim": dim,
            "n_bits": n_bits,
            "n_bands": n_bands,
            "threshold": threshold,
            "batch_size": batch_size,
            "k": k,
            "repeats": repeats,
            "n_shards": n_shards,
            "rerank_factor": rerank_factor,
            "embed": {
                "dim": embed_dim,
                "values_per_column": embed_values_per_column,
                "vocab_size": embed_vocab_size,
                "chunk_size": embed_chunk_size,
                "model": "hashing",
            },
            "serve": {
                "clients": serve_clients,
                "requests_per_client": serve_requests_per_client,
                "threshold": 0.5,
                "query_pool": 256,
            },
            "mpserve": {
                "workers": n_shards,
                "transport": worker_transport,
                "clients": mpserve_clients,
                "requests_per_client": mpserve_requests_per_client,
            },
            "overload": {
                "workers": 4,
                "queue_depth": 4,
                "requests_per_client": overload_requests_per_client,
                "deadline_ms": 10_000,
                "load_multiples": [2, 4],
            },
            "graph": {
                "edge_threshold": graph_edge_threshold,
                "columns_per_table": 64,
            },
            "durability": {
                "fsync": "always",
                "wal_record_cap": 256,
            },
            "quality": {
                "profile": quality_profile,
                "ks": [2, 3, 5, 10],
                "backend": "exact",
            },
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
            # The CPUs this process may actually run on (sched affinity):
            # a pinned bench (``--pin-cpus``) records its pin set here so
            # a committed baseline is honest about the hardware it saw.
            "cpu_affinity": (
                sorted(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity")
                else None
            ),
        },
        "results": results,
        "embed": embed_results,
        "shard": shard_results,
        "quant": quant_results,
        "artifact": artifact_results,
        "serve": serve_results,
        "mpserve": mpserve_results,
        "overload": overload_results,
        "graph": graph_results,
        "durability": durability_results,
        "quality": quality_results,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the suite report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def validate_report(payload: dict) -> list[str]:
    """Schema check for a perf report; returns a list of problems (empty = ok).

    The CI smoke job runs this against the regenerated report so a broken
    bench (missing sizes, malformed rows, non-numeric timings) fails the
    build instead of silently shipping an empty trajectory.
    """
    problems: list[str] = []
    if payload.get("suite") != "index-perf":
        problems.append("suite != 'index-perf'")
    if not isinstance(payload.get("config"), dict):
        problems.append("missing config object")
    ran = payload.get("stages")
    if ran is None:
        ran = list(ALL_STAGES)  # pre-v6 reports carried every stage
    elif not isinstance(ran, list) or not ran:
        problems.append("stages must be a non-empty list")
        return problems
    if "results" in ran:
        results = payload.get("results")
        if not isinstance(results, list) or len(results) < 3:
            problems.append("results must list >= 3 corpus sizes")
            return problems
        for row in results:
            for field in _RESULT_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"result {row.get('n_columns')}: bad {field!r}")
    if "embed" in ran:
        embed = payload.get("embed")
        if not isinstance(embed, list) or not embed:
            problems.append("embed must list >= 1 corpus sizes")
            return problems
        for row in embed:
            for field in _EMBED_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"embed {row.get('n_columns')}: bad {field!r}")
    if "mpserve" in ran:
        for row in payload.get("mpserve") or []:
            if not isinstance(row.get("transport"), str):
                problems.append(
                    f"mpserve {row.get('n_columns')}: bad 'transport'"
                )
    for stage, fields in (
        ("shard", _SHARD_FIELDS),
        ("quant", _QUANT_FIELDS),
        ("artifact", _ARTIFACT_FIELDS),
        ("serve", _SERVE_FIELDS),
        ("mpserve", _MPSERVE_FIELDS),
        ("overload", _OVERLOAD_FIELDS),
        ("graph", _GRAPH_FIELDS),
        ("durability", _DURABILITY_FIELDS),
    ):
        if stage not in ran:
            continue
        rows = payload.get(stage)
        if not isinstance(rows, list) or not rows:
            problems.append(f"{stage} must list >= 1 corpus sizes")
            continue
        for row in rows:
            for field in fields:
                value = row.get(field)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"{stage} {row.get('n_columns')}: bad {field!r}")
    if "quality" in ran:
        rows = payload.get("quality")
        if not isinstance(rows, list) or not rows:
            problems.append("quality must list >= 1 matrix cells")
        else:
            for row in rows:
                cell = (
                    f"{row.get('dataset_key')}/{row.get('system')}"
                    f"[{row.get('arm')}]"
                )
                for field in ("dataset_key", "system", "arm"):
                    if not isinstance(row.get(field), str):
                        problems.append(f"quality {cell}: bad {field!r}")
                for field in _QUALITY_FIELDS:
                    value = row.get(field)
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        problems.append(f"quality {cell}: bad {field!r}")
    return problems


def _git_sha(start: Path) -> str:
    """Short commit SHA of the repo containing ``start`` (or 'unknown').

    A ``-dirty`` suffix marks a working tree with uncommitted changes —
    the normal state when regenerating the baseline just before the
    commit that will ship it.
    """
    cwd = start if start.is_dir() else start.parent

    def run(*args: str):
        return subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True, timeout=10
        )

    try:
        completed = run("rev-parse", "--short", "HEAD")
        sha = completed.stdout.strip()
        if completed.returncode != 0 or not sha:
            return "unknown"
        status = run("status", "--porcelain")
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def append_history(report: dict, path: str | Path) -> Path:
    """Append one bench-trajectory line (git SHA + timestamp + headlines).

    ``BENCH_history.jsonl`` is the cross-PR perf trajectory: one JSON line
    per committed bench run, so regressions are visible as a time series
    without replaying ``git log -p BENCH_index.json``.  Headline metrics
    come from the largest corpus size of each stage.
    """
    path = Path(path)
    largest = report["results"][-1] if report.get("results") else {}
    shard = report["shard"][-1] if report.get("shard") else {}
    quant = report["quant"][-1] if report.get("quant") else {}
    artifact = report["artifact"][-1] if report.get("artifact") else {}
    embed = report["embed"][-1] if report.get("embed") else {}
    serve = report["serve"][-1] if report.get("serve") else {}
    mpserve = report["mpserve"][-1] if report.get("mpserve") else {}
    overload = report["overload"][-1] if report.get("overload") else {}
    graph = report["graph"][-1] if report.get("graph") else {}
    durability = report["durability"][-1] if report.get("durability") else {}
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": _git_sha(path.resolve()),
        "profile": report.get("profile"),
        "schema_version": report.get("schema_version"),
        "cpus": report.get("environment", {}).get("cpus"),
        "n_columns_max": largest.get("n_columns"),
        "batch_speedup": largest.get("batch_speedup"),
        "batch_per_query_ms": largest.get("batch_per_query_ms"),
        "embed_speedup": embed.get("speedup"),
        "shard_speedup": shard.get("shard_speedup"),
        "quant_recall_at_k": quant.get("recall_at_k"),
        "quant_speedup": quant.get("quant_speedup"),
        "artifact_load_speedup": artifact.get("load_speedup"),
        "serve_qps_engine": serve.get("qps_engine"),
        "serve_coalesced_speedup": serve.get("coalesced_speedup"),
        "serve_cache_hit_rate": serve.get("cache_hit_rate"),
        "proc_shard_speedup": mpserve.get("proc_shard_speedup"),
        "mpserve_http_speedup": mpserve.get("http_speedup"),
        "overload_goodput_4x": overload.get("goodput_4x"),
        "overload_shed_rate_4x": overload.get("shed_rate_4x"),
        "overload_shed_p99_ms": overload.get("shed_p99_4x_ms"),
        "overload_deadline_miss_rate": overload.get("deadline_miss_rate_4x"),
        "graph_edges": graph.get("n_edges"),
        "graph_incremental_speedup": graph.get("incremental_speedup"),
        "graph_path_query_ms": graph.get("path_query_ms"),
        "durability_wal_overhead_x": durability.get("wal_overhead_x"),
        "durability_recovery_s": durability.get("recovery_s"),
    }
    from repro.eval.quality import quality_headline

    entry.update(quality_headline(report.get("quality") or []))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")
    return path
