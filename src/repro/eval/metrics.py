"""Ranking metrics: precision@k, recall@k, MAP, MRR.

The paper reports top-k precision and recall averaged over all queries at
each k ∈ {2, 3, 5, 10} (Figure 4).  Definitions follow the standard IR
convention: precision@k divides by k (not by the number of returned
results), so a system that returns fewer than k candidates is penalized —
matching how sparse answer sets cap the achievable precision in the paper's
plots.

Empty-answer convention
-----------------------
A query with no ground-truth answers is *unanswerable* — no ranking can
score on it, and precision/recall are undefined rather than zero.  The
per-query functions return 0.0 for such queries as a neutral sentinel
(callers indexing single queries need a total function), but the
aggregators (:func:`pr_curve`, :func:`mean_average_precision`) **exclude**
unanswerable queries from their averages instead of letting defined-as-zero
scores silently drag real system quality down.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass

from repro.storage.schema import ColumnRef

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "mean_average_precision",
    "PRPoint",
    "pr_curve",
]


def precision_at_k(ranked: Sequence[ColumnRef], answers: Set, k: int) -> float:
    """|relevant ∩ top-k| / k.

    0.0 on an empty answer set (unanswerable query — see the module
    docstring; aggregators skip such queries entirely).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not answers:
        return 0.0
    hits = sum(1 for ref in ranked[:k] if ref in answers)
    return hits / k


def recall_at_k(ranked: Sequence[ColumnRef], answers: Set, k: int) -> float:
    """|relevant ∩ top-k| / |relevant|.

    0.0 on an empty answer set (unanswerable query — see the module
    docstring; aggregators skip such queries entirely).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not answers:
        return 0.0
    hits = sum(1 for ref in ranked[:k] if ref in answers)
    return hits / len(answers)


def reciprocal_rank(ranked: Sequence[ColumnRef], answers: Set) -> float:
    """1 / rank of the first relevant result (0.0 when none appears)."""
    for position, ref in enumerate(ranked, start=1):
        if ref in answers:
            return 1.0 / position
    return 0.0


def average_precision(ranked: Sequence[ColumnRef], answers: Set) -> float:
    """Average of precision@rank over the ranks of relevant results."""
    if not answers:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, ref in enumerate(ranked, start=1):
        if ref in answers:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(answers)


def mean_average_precision(
    runs: Iterable[tuple[Sequence[ColumnRef], Set]]
) -> float:
    """MAP over (ranked, answers) pairs; unanswerable queries are skipped."""
    values = [
        average_precision(ranked, answers) for ranked, answers in runs if answers
    ]
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True, slots=True)
class PRPoint:
    """One point of a Figure-4 curve: (k, avg precision, avg recall)."""

    k: int
    precision: float
    recall: float

    def __str__(self) -> str:
        return f"k={self.k}: P={self.precision:.3f} R={self.recall:.3f}"


def pr_curve(
    runs: Sequence[tuple[Sequence[ColumnRef], Set]],
    ks: Sequence[int] = (2, 3, 5, 10),
) -> list[PRPoint]:
    """Average precision/recall over queries at each k (Figure 4 series).

    Unanswerable queries (empty answer set) are excluded from the
    averages — see the module docstring's empty-answer convention.
    """
    answered = [(ranked, answers) for ranked, answers in runs if answers]
    if not answered:
        return [PRPoint(k, 0.0, 0.0) for k in ks]
    points = []
    for k in ks:
        precision = sum(
            precision_at_k(ranked, answers, k) for ranked, answers in answered
        )
        recall = sum(recall_at_k(ranked, answers, k) for ranked, answers in answered)
        points.append(PRPoint(k, precision / len(answered), recall / len(answered)))
    return points
