"""Timing aggregation across queries.

Table 2 reports seconds/query for end-to-end response time with index
lookup time in parentheses; :func:`summarize_timings` produces exactly that
decomposition from per-query :class:`TimingBreakdown` records.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.candidates import TimingBreakdown

__all__ = ["TimingSummary", "summarize_timings"]


@dataclass(frozen=True)
class TimingSummary:
    """Per-query timing averages for one system on one corpus."""

    query_count: int
    mean_response_s: float
    mean_load_s: float
    mean_embed_s: float
    mean_lookup_s: float

    @property
    def lookup_fraction(self) -> float:
        """Share of the mean response time spent in index lookup."""
        if self.mean_response_s <= 0:
            return 0.0
        return self.mean_lookup_s / self.mean_response_s

    def table2_cell(self) -> str:
        """Render the Table 2 cell format: ``e2e (lookup)`` seconds/query."""
        return f"{self.mean_response_s:.4f} ({self.mean_lookup_s:.4f})"


def summarize_timings(timings: Sequence[TimingBreakdown]) -> TimingSummary:
    """Average a sequence of per-query timing breakdowns."""
    count = len(timings)
    if count == 0:
        return TimingSummary(0, 0.0, 0.0, 0.0, 0.0)
    total = TimingBreakdown()
    for timing in timings:
        total = total + timing
    mean = total.scaled(1.0 / count)
    return TimingSummary(
        query_count=count,
        mean_response_s=mean.response_time_s,
        mean_load_s=mean.load_s,
        mean_embed_s=mean.embed_s,
        mean_lookup_s=mean.lookup_s,
    )
