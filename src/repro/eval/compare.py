"""Bench-trajectory regression gate: ``python -m repro bench-compare``.

``BENCH_history.jsonl`` records one headline entry per committed bench
run.  This module diffs the two most recent entries *of the same
profile* (a fast CI smoke entry must never be compared against a
committed full-profile baseline — the corpus sizes differ by an order
of magnitude) and flags any metric that moved beyond a noise band in
its bad direction.

The band is deliberately wide (35% by default): these benches run on
shared CI hardware, and the gate exists to catch silent collapses —
the ``artifact_load_speedup`` 12.4x → 9.0x drift that motivated it
sits inside the band, a 12.4x → 4x cliff does not.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "DEFAULT_TOLERANCE",
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "compare_entries",
    "compare_history",
    "load_history",
    "render_comparison",
]

DEFAULT_TOLERANCE = 0.35

#: Headline metrics where a *drop* is a regression.
HIGHER_IS_BETTER = (
    "batch_speedup",
    "embed_speedup",
    "shard_speedup",
    "quant_recall_at_k",
    "quant_speedup",
    "artifact_load_speedup",
    "serve_qps_engine",
    "serve_coalesced_speedup",
    "serve_cache_hit_rate",
    "graph_incremental_speedup",
    "quality_warpgate_recall_at_10",
    "quality_hybrid_recall_at_10",
    "quality_aurum_recall_at_10",
    "quality_d3l_recall_at_10",
    "quality_hybrid_map",
)

#: Headline metrics where a *rise* is a regression.
LOWER_IS_BETTER = (
    "batch_per_query_ms",
    "graph_path_query_ms",
)


def load_history(path: str | Path) -> list[dict]:
    """Parse every entry of a ``BENCH_history.jsonl`` file, oldest first."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no bench history at {path}")
    entries = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}:{number}: invalid JSON: {error}") from error
        if not isinstance(entry, dict):
            raise ReproError(f"{path}:{number}: entry must be a JSON object")
        entries.append(entry)
    return entries


def _metric_pairs(previous: dict, current: dict):
    """Yield ``(metric, prev, curr, direction)`` for comparable metrics.

    A metric missing or null on either side is skipped — older entries
    predate newer stages, and a gate must not punish history growth.
    """
    for direction, metrics in (("higher", HIGHER_IS_BETTER), ("lower", LOWER_IS_BETTER)):
        for metric in metrics:
            before, after = previous.get(metric), current.get(metric)
            if isinstance(before, (int, float)) and isinstance(after, (int, float)):
                yield metric, float(before), float(after), direction


def compare_entries(
    previous: dict, current: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """Per-metric comparison rows between two history entries.

    Each row carries ``{metric, previous, current, ratio, direction,
    regressed}``; ``ratio`` is current/previous.  A higher-is-better
    metric regresses when it fell below ``previous * (1 - tolerance)``;
    a lower-is-better one when it rose above ``previous * (1 + tolerance)``.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(f"tolerance must be in [0, 1), got {tolerance}")
    rows = []
    for metric, before, after, direction in _metric_pairs(previous, current):
        ratio = after / before if before else float("inf")
        if direction == "higher":
            regressed = after < before * (1.0 - tolerance)
        else:
            regressed = after > before * (1.0 + tolerance)
        rows.append(
            {
                "metric": metric,
                "previous": before,
                "current": after,
                "ratio": ratio,
                "direction": direction,
                "regressed": regressed,
            }
        )
    return rows


def compare_history(
    path: str | Path,
    *,
    profile: str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Compare the two newest same-profile entries of a history file.

    ``profile`` defaults to the newest entry's, so the gate always
    checks the trajectory the latest run belongs to.
    """
    entries = load_history(path)
    if not entries:
        raise ReproError(f"bench history {path} is empty")
    if profile is None:
        profile = entries[-1].get("profile")
    matching = [entry for entry in entries if entry.get("profile") == profile]
    if len(matching) < 2:
        raise ReproError(
            f"need at least two {profile!r}-profile entries in {path} to "
            f"compare, found {len(matching)}"
        )
    previous, current = matching[-2], matching[-1]
    rows = compare_entries(previous, current, tolerance=tolerance)
    return {
        "profile": profile,
        "tolerance": tolerance,
        "previous": previous,
        "current": current,
        "rows": rows,
        "regressions": [row["metric"] for row in rows if row["regressed"]],
    }


def render_comparison(outcome: dict) -> str:
    """Human-readable table for one :func:`compare_history` outcome."""
    from repro.eval.report import render_table

    rows = [
        [
            row["metric"],
            f"{row['previous']:.3f}",
            f"{row['current']:.3f}",
            f"{row['ratio']:.2f}x",
            "REGRESSED" if row["regressed"] else "ok",
        ]
        for row in outcome["rows"]
    ]
    previous_sha = str(outcome["previous"].get("git_sha", "?"))[:12]
    current_sha = str(outcome["current"].get("git_sha", "?"))[:12]
    return render_table(
        ["metric", "previous", "current", "ratio", "status"],
        rows,
        title=(
            f"Bench trajectory ({outcome['profile']} profile, "
            f"{previous_sha} -> {current_sha}, "
            f"band {outcome['tolerance']:.0%})"
        ),
    )
