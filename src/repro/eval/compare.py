"""Bench-trajectory regression gate: ``python -m repro bench-compare``.

``BENCH_history.jsonl`` records one headline entry per committed bench
run.  This module diffs the two most recent entries *of the same
profile* (a fast CI smoke entry must never be compared against a
committed full-profile baseline — the corpus sizes differ by an order
of magnitude) and flags any metric that moved beyond a noise band in
its bad direction.

The band is deliberately wide (35% by default): these benches run on
shared CI hardware, and the pairwise gate exists to catch silent
collapses — a 12.4x → 4x cliff fails, single-step noise does not.

Pairwise comparison has a blind spot: a metric can leak a little every
PR and never trip the band.  ``artifact_load_speedup`` did exactly that
— 12.4x → 9.0x → 8.4x → 7.8x, each adjacent step comfortably inside
35%, a 37% cumulative loss with no CI failure.  The *windowed drift*
gate closes it: for each watched metric the newest entry is also
compared against the **best** value in the previous
:data:`DRIFT_WINDOW` same-profile entries, with a tighter
:data:`DRIFT_TOLERANCE` band.  Run against that history, the window
catches the slide at the 7.8 entry (7.8 / max{12.4, 9.0, 8.4} = 0.63 <
0.75) that the pairwise gate waved through.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "DEFAULT_TOLERANCE",
    "DRIFT_METRICS",
    "DRIFT_TOLERANCE",
    "DRIFT_WINDOW",
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "compare_entries",
    "compare_history",
    "detect_drift",
    "load_history",
    "render_comparison",
]

DEFAULT_TOLERANCE = 0.35

#: Metrics watched for slow multi-PR drift (windowed gate).  All must be
#: higher-is-better; extend as other metrics show leak-not-cliff shapes.
DRIFT_METRICS = ("artifact_load_speedup",)
#: Prior same-profile entries the windowed gate looks back over.
DRIFT_WINDOW = 3
#: Fractional drop from the window's best value that counts as drift.
#: Tighter than the pairwise band: the window best is a stabler anchor
#: than one (possibly noisy) adjacent entry.
DRIFT_TOLERANCE = 0.25

#: Headline metrics where a *drop* is a regression.
HIGHER_IS_BETTER = (
    "batch_speedup",
    "embed_speedup",
    "shard_speedup",
    "proc_shard_speedup",
    "quant_recall_at_k",
    "quant_speedup",
    "artifact_load_speedup",
    "serve_qps_engine",
    "serve_coalesced_speedup",
    "serve_cache_hit_rate",
    "overload_goodput_4x",
    "graph_incremental_speedup",
    "quality_warpgate_recall_at_10",
    "quality_hybrid_recall_at_10",
    "quality_aurum_recall_at_10",
    "quality_d3l_recall_at_10",
    "quality_hybrid_map",
)

#: Headline metrics where a *rise* is a regression.
LOWER_IS_BETTER = (
    "batch_per_query_ms",
    "graph_path_query_ms",
    "durability_recovery_s",
    "overload_shed_p99_ms",
    "overload_deadline_miss_rate",
)


def load_history(path: str | Path) -> list[dict]:
    """Parse every entry of a ``BENCH_history.jsonl`` file, oldest first."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no bench history at {path}")
    entries = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}:{number}: invalid JSON: {error}") from error
        if not isinstance(entry, dict):
            raise ReproError(f"{path}:{number}: entry must be a JSON object")
        entries.append(entry)
    return entries


def _metric_pairs(previous: dict, current: dict):
    """Yield ``(metric, prev, curr, direction)`` for comparable metrics.

    A metric missing or null on either side is skipped — older entries
    predate newer stages, and a gate must not punish history growth.
    """
    for direction, metrics in (("higher", HIGHER_IS_BETTER), ("lower", LOWER_IS_BETTER)):
        for metric in metrics:
            before, after = previous.get(metric), current.get(metric)
            if isinstance(before, (int, float)) and isinstance(after, (int, float)):
                yield metric, float(before), float(after), direction


def compare_entries(
    previous: dict, current: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """Per-metric comparison rows between two history entries.

    Each row carries ``{metric, previous, current, ratio, direction,
    regressed}``; ``ratio`` is current/previous.  A higher-is-better
    metric regresses when it fell below ``previous * (1 - tolerance)``;
    a lower-is-better one when it rose above ``previous * (1 + tolerance)``.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(f"tolerance must be in [0, 1), got {tolerance}")
    rows = []
    for metric, before, after, direction in _metric_pairs(previous, current):
        ratio = after / before if before else float("inf")
        if direction == "higher":
            regressed = after < before * (1.0 - tolerance)
        else:
            regressed = after > before * (1.0 + tolerance)
        rows.append(
            {
                "metric": metric,
                "previous": before,
                "current": after,
                "ratio": ratio,
                "direction": direction,
                "regressed": regressed,
            }
        )
    return rows


def detect_drift(
    window_entries: list[dict],
    current: dict,
    *,
    metrics: tuple[str, ...] = DRIFT_METRICS,
    tolerance: float = DRIFT_TOLERANCE,
    min_entries: int = DRIFT_WINDOW,
) -> list[dict]:
    """Windowed drift rows: ``current`` vs the best of ``window_entries``.

    For each watched (higher-is-better) metric, anchors on the *best*
    value across the window — so a sequence of small adjacent drops,
    each inside the pairwise band, still trips once the cumulative loss
    from the window's high-water mark exceeds ``tolerance``.  Entries
    missing the metric are skipped (history growth must not punish).

    The gate arms only once ``min_entries`` window values exist for a
    metric: with a shorter trajectory the anchor is one (possibly
    noisy) neighbor, which is exactly the comparison the wider pairwise
    band already adjudicates — a single 12.4x → 9.0x step is noise
    there, and the tighter drift band must not overrule that verdict.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(f"drift tolerance must be in [0, 1), got {tolerance}")
    rows = []
    for metric in metrics:
        if metric not in HIGHER_IS_BETTER:
            raise ReproError(
                f"drift metric {metric!r} must be higher-is-better"
            )
        window = [
            float(entry[metric])
            for entry in window_entries
            if isinstance(entry.get(metric), (int, float))
            and not isinstance(entry.get(metric), bool)
        ]
        after = current.get(metric)
        if len(window) < max(1, min_entries):
            continue
        if not isinstance(after, (int, float)) or isinstance(after, bool):
            continue
        best = max(window)
        rows.append(
            {
                "metric": metric,
                "window_best": best,
                "window_size": len(window),
                "current": float(after),
                "ratio": float(after) / best if best else float("inf"),
                "drifted": float(after) < best * (1.0 - tolerance),
            }
        )
    return rows


def compare_history(
    path: str | Path,
    *,
    profile: str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Compare the two newest same-profile entries of a history file.

    ``profile`` defaults to the newest entry's, so the gate always
    checks the trajectory the latest run belongs to.  On top of the
    pairwise comparison, the newest entry is checked for windowed drift
    against the previous :data:`DRIFT_WINDOW` same-profile entries
    (see :func:`detect_drift`); drifted metrics join ``regressions``
    tagged ``"<metric> (drift)"``.
    """
    entries = load_history(path)
    if not entries:
        raise ReproError(f"bench history {path} is empty")
    if profile is None:
        profile = entries[-1].get("profile")
    matching = [entry for entry in entries if entry.get("profile") == profile]
    if len(matching) < 2:
        raise ReproError(
            f"need at least two {profile!r}-profile entries in {path} to "
            f"compare, found {len(matching)}"
        )
    previous, current = matching[-2], matching[-1]
    rows = compare_entries(previous, current, tolerance=tolerance)
    drift = detect_drift(matching[-(DRIFT_WINDOW + 1) : -1], current)
    regressions = [row["metric"] for row in rows if row["regressed"]]
    regressions += [
        f"{row['metric']} (drift)" for row in drift if row["drifted"]
    ]
    return {
        "profile": profile,
        "tolerance": tolerance,
        "previous": previous,
        "current": current,
        "rows": rows,
        "drift": drift,
        "drift_window": DRIFT_WINDOW,
        "drift_tolerance": DRIFT_TOLERANCE,
        "regressions": regressions,
    }


def render_comparison(outcome: dict) -> str:
    """Human-readable table for one :func:`compare_history` outcome."""
    from repro.eval.report import render_table

    rows = [
        [
            row["metric"],
            f"{row['previous']:.3f}",
            f"{row['current']:.3f}",
            f"{row['ratio']:.2f}x",
            "REGRESSED" if row["regressed"] else "ok",
        ]
        for row in outcome["rows"]
    ]
    previous_sha = str(outcome["previous"].get("git_sha", "?"))[:12]
    current_sha = str(outcome["current"].get("git_sha", "?"))[:12]
    text = render_table(
        ["metric", "previous", "current", "ratio", "status"],
        rows,
        title=(
            f"Bench trajectory ({outcome['profile']} profile, "
            f"{previous_sha} -> {current_sha}, "
            f"band {outcome['tolerance']:.0%})"
        ),
    )
    drift = outcome.get("drift") or []
    if drift:
        drift_rows = [
            [
                row["metric"],
                f"{row['window_best']:.3f}",
                f"{row['current']:.3f}",
                f"{row['ratio']:.2f}x",
                "DRIFTED" if row["drifted"] else "ok",
            ]
            for row in drift
        ]
        text += "\n" + render_table(
            ["metric", "window best", "current", "ratio", "status"],
            drift_rows,
            title=(
                f"Windowed drift (last {outcome.get('drift_window', DRIFT_WINDOW)} "
                f"entries, band {outcome.get('drift_tolerance', DRIFT_TOLERANCE):.0%})"
            ),
        )
    return text
