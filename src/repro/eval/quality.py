"""Join-quality scenario suite: the paper's Figure-4 evidence, measured.

The perf suite (:mod:`repro.eval.perf`) tracks *speed*; this module tracks
*quality* — the paper's headline claim.  It materializes ground-truth
joinable pairs for every built-in corpus (NextiaJD containment labelling
via :func:`repro.datasets.quality.compute_ground_truth` where the
generator declares no truth), runs WarpGate across every encoder-registry
arm plus the hybrid semantic+syntactic scoring mode, runs both baselines
(Aurum, D3L), and reports precision/recall@k for k ∈ {2, 3, 5, 10}, MAP,
and MRR per (dataset, system, arm) cell.

Every WarpGate arm runs on the ``exact`` backend so the matrix isolates
*scoring* quality from LSH candidate-generation recall (the banding
S-curve is tuned for the 0.7 cosine operating point; hybrid's relaxed
candidate floor would otherwise confound the comparison).

Datasets
--------
* ``nextiajd`` — the XS testbed, post-hoc containment ground truth.  The
  nested-subset generator deliberately creates high-containment /
  low-Jaccard pairs: the regime where thresholded MinHash (Aurum) misses
  joins that embeddings keep, and where the hybrid blend recovers
  moderate-cosine pairs the pure-cosine threshold discards.
* ``spider`` — declared PK/FK ground truth, partial-coverage foreign
  keys (containment-total / low-Jaccard).
* ``sigma`` — ships *without* ground truth (the paper evaluates it
  qualitatively); the harness labels it post hoc with the same
  containment rule so all three corpora are measured identically.

Results ride ``python -m repro bench`` as the ``quality`` stage —
committed to ``BENCH_index.json``, headlined in ``BENCH_history.jsonl``,
and gated by ``bench-compare`` exactly like the perf stages.
"""

from __future__ import annotations

import time

from repro.core.config import WarpGateConfig

__all__ = [
    "QUALITY_KS",
    "QUALITY_PROFILES",
    "WARPGATE_ARMS",
    "quality_headline",
    "run_quality_suite",
]

#: Figure-4 cutoffs.
QUALITY_KS = (2, 3, 5, 10)

#: WarpGate arms: the five encoder-registry models scored on pure cosine,
#: plus the hybrid semantic+syntactic blend over the default encoder.
WARPGATE_ARMS = (
    "webtable",
    "hashing",
    "bertlike",
    "cooccur",
    "contextual",
    "hybrid",
)

#: The dataset whose rows feed the headline metrics: the NextiaJD-style
#: containment workload the hybrid-vs-cosine claim is stated over.
HEADLINE_DATASET = "nextiajd"

#: Named harness profiles.  ``full`` is the committed baseline matrix
#: (every dataset × every arm); ``small`` keeps the CI quality-smoke job
#: fast while still covering the headline systems (WarpGate cosine +
#: hybrid, Aurum, D3L) so the recall gate has all four numbers.
QUALITY_PROFILES: dict[str, dict] = {
    "full": {
        "datasets": ("nextiajd", "spider", "sigma"),
        "arms": WARPGATE_ARMS,
        "rows_scale": 0.25,
        "max_queries": 30,
    },
    "small": {
        "datasets": ("nextiajd",),
        "arms": ("webtable", "hybrid"),
        "rows_scale": 0.25,
        "max_queries": 12,
    },
}

#: Baseline systems run once per dataset (they have no encoder arms).
_BASELINES = ("aurum", "d3l")


def _build_dataset(key: str, *, rows_scale: float):
    """One named evaluation corpus, ground truth guaranteed."""
    if key == "nextiajd":
        from repro.datasets.nextiajd import generate_testbed

        return generate_testbed("XS", rows_scale=rows_scale)
    if key == "spider":
        from repro.datasets.spider import generate_spider_corpus

        return generate_spider_corpus(n_databases=8, rows_scale=rows_scale)
    if key == "sigma":
        from repro.datasets.quality import compute_ground_truth
        from repro.datasets.sigma import generate_sigma_sample_database

        corpus = generate_sigma_sample_database(
            rows_scale=rows_scale, with_snapshots=False
        )
        # The generator declares no truth (the paper's Sigma evaluation is
        # qualitative); label it post hoc with the containment rule.
        truth, queries = compute_ground_truth(corpus.to_store())
        corpus.ground_truth = truth
        corpus.queries = queries
        return corpus
    raise ValueError(f"unknown quality dataset {key!r}")


def _make_system(system: str, arm: str):
    """Fresh system instance for one matrix cell."""
    if system == "warpgate":
        config = WarpGateConfig(search_backend="exact")
        if arm == "hybrid":
            config = config.with_scoring("hybrid")
        else:
            config = config.with_model(arm)
        from repro.core.warpgate import WarpGate

        return WarpGate(config)
    if system == "aurum":
        from repro.baselines.aurum import Aurum

        return Aurum()
    if system == "d3l":
        from repro.baselines.d3l import D3L

        return D3L()
    raise ValueError(f"unknown quality system {system!r}")


def _cells(arms: tuple[str, ...]):
    """(system, arm) pairs of one dataset's matrix row block."""
    for arm in arms:
        yield "warpgate", arm
    for baseline in _BASELINES:
        yield baseline, "default"


def _evaluate_cell(system_name: str, arm: str, corpus, *, ks, max_queries) -> dict:
    from repro.eval.metrics import mean_average_precision, reciprocal_rank
    from repro.eval.runner import evaluate_system

    system = _make_system(system_name, arm)
    start = time.perf_counter()
    evaluation = evaluate_system(system, corpus, ks=ks, max_queries=max_queries)
    seconds = time.perf_counter() - start
    answered = [
        (run.ranked, run.answers) for run in evaluation.runs if run.answers
    ]
    reciprocal = [
        reciprocal_rank(ranked, answers) for ranked, answers in answered
    ]
    row: dict[str, object] = {
        "dataset": corpus.name,
        "dataset_key": None,  # filled by the caller (corpus names carry scale)
        "system": system_name,
        "arm": arm,
        "n_queries": len(answered),
        "map": round(mean_average_precision(answered), 4),
        "mrr": round(
            sum(reciprocal) / len(reciprocal) if reciprocal else 0.0, 4
        ),
        "index_s": round(evaluation.index_report.wall_seconds, 3),
        "eval_s": round(seconds, 3),
    }
    for point in evaluation.curve:
        row[f"p_at_{point.k}"] = round(point.precision, 4)
        row[f"r_at_{point.k}"] = round(point.recall, 4)
    return row


def run_quality_suite(
    *,
    profile: str = "full",
    ks: tuple[int, ...] = QUALITY_KS,
    datasets: tuple[str, ...] | None = None,
    arms: tuple[str, ...] | None = None,
    max_queries: int | None = None,
    progress=None,
) -> dict:
    """Run the (dataset × system × arm) quality matrix.

    Returns ``{"profile", "ks", "rows", "headline"}``: one row per matrix
    cell carrying ``p_at_k`` / ``r_at_k`` for every k, MAP, MRR, the
    answered-query count, and index/eval wall times; ``headline`` is the
    :func:`quality_headline` extraction over the rows.  Every system in a
    cell gets a fresh instance and a fresh metered connector, so cells
    are independent.
    """
    if profile not in QUALITY_PROFILES:
        raise ValueError(
            f"unknown quality profile {profile!r}; "
            f"choose from {sorted(QUALITY_PROFILES)}"
        )
    spec = QUALITY_PROFILES[profile]
    datasets = tuple(datasets) if datasets is not None else spec["datasets"]
    arms = tuple(arms) if arms is not None else spec["arms"]
    max_queries = max_queries if max_queries is not None else spec["max_queries"]
    rows: list[dict] = []
    for dataset_key in datasets:
        if progress is not None:
            progress(f"building quality dataset {dataset_key} ...")
        corpus = _build_dataset(dataset_key, rows_scale=spec["rows_scale"])
        for system_name, arm in _cells(arms):
            if progress is not None:
                progress(
                    f"quality: {dataset_key} × {system_name}"
                    + (f"[{arm}]" if arm != "default" else "")
                    + " ..."
                )
            row = _evaluate_cell(
                system_name, arm, corpus, ks=ks, max_queries=max_queries
            )
            row["dataset_key"] = dataset_key
            rows.append(row)
    return {
        "profile": profile,
        "ks": list(ks),
        "rows": rows,
        "headline": quality_headline(rows),
    }


def _headline_cell(rows: list[dict], system: str, arm: str) -> dict | None:
    for row in rows:
        if (
            row.get("dataset_key") == HEADLINE_DATASET
            and row.get("system") == system
            and row.get("arm") == arm
        ):
            return row
    return None


def quality_headline(rows: list[dict]) -> dict:
    """Headline recall@10 numbers on the containment workload.

    These are the keys ``append_history`` commits per bench run and
    ``bench-compare`` gates (direction: higher is better).  Missing cells
    (subset runs) yield ``None`` values, which the compare gate skips.
    """
    cells = {
        "quality_warpgate_recall_at_10": ("warpgate", "webtable"),
        "quality_hybrid_recall_at_10": ("warpgate", "hybrid"),
        "quality_aurum_recall_at_10": ("aurum", "default"),
        "quality_d3l_recall_at_10": ("d3l", "default"),
    }
    headline: dict[str, object] = {}
    for key, (system, arm) in cells.items():
        row = _headline_cell(rows, system, arm)
        headline[key] = None if row is None else row.get("r_at_10")
    row = _headline_cell(rows, "warpgate", "hybrid")
    headline["quality_hybrid_map"] = None if row is None else row.get("map")
    return headline
