"""Columnar vector storage shared by every cosine index backend.

The index layer used to keep one small ``np.ndarray`` per column in Python
lists and re-rank candidates in Python loops — fine for a few hundred
columns, the opposite of warehouse-scale.  :class:`VectorArena` replaces
that with contiguous columnar storage:

* one growable 2-D ``float32`` matrix of unit vectors (geometric doubling,
  so appends are amortized O(dim));
* one parallel 2-D ``uint64`` matrix of packed SimHash band keys (see
  :func:`repro.index.simhash.pack_band_keys`), absent for backends that
  need no signatures;
* a tombstone lifecycle for deletion: ``remove`` clears one bit in an
  alive mask, and once the dead fraction crosses a threshold the arena
  compacts — a stable (order-preserving) rewrite of the live rows that
  bumps ``generation`` so owners rebuild row-addressed structures.

Every query re-ranks with a masked matrix product over the arena instead
of stacking per-candidate rows, and the batched search path runs one BLAS
matmul for a whole query block.  :class:`ColumnarIndex` is the shared base
the three backends (:class:`~repro.index.lsh.SimHashLSHIndex`,
:class:`~repro.index.exact.ExactCosineIndex`,
:class:`~repro.index.pivot.PivotFilterIndex`) build on; it owns the arena
plus the canonical vector/signature validation, so dimension errors raise
:class:`~repro.errors.DimensionMismatchError` identically everywhere.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.index.quant import ArenaQuantizer

__all__ = ["ColumnarIndex", "VectorArena"]

# Compaction fires when more than this fraction of occupied rows are dead
# (and the arena is big enough for the rewrite to matter).
_COMPACT_DEAD_FRACTION = 0.25
_COMPACT_MIN_ROWS = 32


class VectorArena:
    """Contiguous, growable storage of named unit vectors (+ signatures).

    Parameters
    ----------
    dim:
        Vector dimensionality; every stored row is a ``float32`` unit
        vector of this length.
    signature_words:
        Number of packed ``uint64`` signature words stored per row (0 when
        the owning index needs none).
    initial_capacity:
        Rows allocated up front; capacity doubles on demand.

    Rows are append-only between compactions, so a row id handed out by
    :meth:`add` stays valid until :attr:`generation` changes.  Deletion
    tombstones the row (clears its alive bit); the matrix slot is
    reclaimed by the next compaction.
    """

    dtype = np.float32

    def __init__(
        self,
        dim: int,
        *,
        signature_words: int = 0,
        initial_capacity: int = 64,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if signature_words < 0:
            raise ValueError(f"signature_words must be >= 0, got {signature_words}")
        self.dim = dim
        self.signature_words = signature_words
        capacity = max(1, initial_capacity)
        self._matrix = np.zeros((capacity, dim), dtype=self.dtype)
        self._signatures = (
            np.zeros((capacity, signature_words), dtype=np.uint64)
            if signature_words
            else None
        )
        self._alive = np.zeros(capacity, dtype=bool)
        self._keys: list[object] = []
        self._rows: dict[object, int] = {}
        self._size = 0  # high-water mark: rows 0.._size-1 are occupied or dead
        self._live = 0
        self.generation = 0
        # Monotonic count of content mutations (adds, removes, adoptions,
        # compactions).  Unlike ``generation`` — which only moves when row
        # ids are reassigned and therefore drives derived-structure
        # rebuilds — this bumps on *every* change to what a query could
        # return, so result caches key on it for implicit invalidation.
        self.mutation_generation = 0
        # False when the matrix/signature storage is adopted read-only
        # (e.g. a memory-mapped artifact); in-place writes thaw it first.
        self._owns_memory = True

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: object) -> bool:
        return key in self._rows

    def __repr__(self) -> str:
        return (
            f"VectorArena(live={self._live}, rows={self._size}, "
            f"capacity={len(self._alive)}, dim={self.dim}, "
            f"signature_words={self.signature_words})"
        )

    @property
    def size(self) -> int:
        """Occupied rows (live + tombstoned); the extent every scan covers."""
        return self._size

    @property
    def dead_count(self) -> int:
        """Tombstoned rows awaiting compaction."""
        return self._size - self._live

    @property
    def matrix(self) -> np.ndarray:
        """View of the occupied region of the vector matrix (no copy)."""
        return self._matrix[: self._size]

    @property
    def signatures(self) -> np.ndarray:
        """View of the occupied region of the packed signature matrix."""
        if self._signatures is None:
            raise ValueError("arena was built without signature storage")
        return self._signatures[: self._size]

    @property
    def alive(self) -> np.ndarray:
        """Boolean liveness mask over the occupied region (no copy)."""
        return self._alive[: self._size]

    def keys(self) -> list[object]:
        """Live keys in row (= insertion, compaction-stable) order."""
        return [key for row, key in enumerate(self._keys) if self._alive[row]]

    def row_of(self, key: object) -> int:
        """Current row id of ``key``; raises ``KeyError`` when absent."""
        return self._rows[key]

    def key_at(self, row: int) -> object:
        """Key stored at a live row id."""
        return self._keys[row]

    def vector_of(self, key: object) -> np.ndarray:
        """Copy of the stored unit vector (``float32``)."""
        return self._matrix[self._rows[key]].copy()

    def live_rows(self) -> np.ndarray:
        """Row ids of all live entries, ascending."""
        return np.flatnonzero(self.alive)

    # -- canonical validation ----------------------------------------------------

    def coerce_unit(self, vector: np.ndarray) -> np.ndarray | None:
        """Unit-normalized ``float32`` copy, or ``None`` for a zero vector.

        The single place vector inputs are checked: anything that is not a
        1-D array of length ``dim`` raises
        :class:`~repro.errors.DimensionMismatchError`, for every backend
        alike.  Normalization happens in ``float64`` before the single
        ``float32`` downcast — bit-identical to the batched path in
        :meth:`add_batch`.
        """
        vector = np.asarray(vector)
        if vector.ndim != 1 or vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        promoted = vector.astype(np.float64, copy=False)
        norm = float(np.linalg.norm(promoted))
        if norm == 0.0:
            return None
        return (promoted / norm).astype(self.dtype)

    def coerce_signature(self, signature: np.ndarray) -> np.ndarray:
        """Validate one packed signature row (shape ``(signature_words,)``)."""
        signature = np.asarray(signature, dtype=np.uint64)
        if signature.shape != (self.signature_words,):
            raise DimensionMismatchError(
                self.signature_words, int(np.prod(signature.shape))
            )
        return signature

    # -- mutation ----------------------------------------------------------------

    def _grow(self, minimum: int) -> None:
        capacity = max(1, len(self._alive))
        while capacity < minimum:
            capacity *= 2
        grown = np.zeros((capacity, self.dim), dtype=self.dtype)
        grown[: self._size] = self._matrix[: self._size]
        self._matrix = grown
        if self._signatures is not None:
            grown_signatures = np.zeros(
                (capacity, self.signature_words), dtype=np.uint64
            )
            grown_signatures[: self._size] = self._signatures[: self._size]
            self._signatures = grown_signatures
        grown_alive = np.zeros(capacity, dtype=bool)
        grown_alive[: self._size] = self._alive[: self._size]
        self._alive = grown_alive
        self._owns_memory = True  # growth rewrites into fresh, writable storage

    def _ensure_writable(self) -> None:
        """Thaw adopted (read-only / memory-mapped) storage before writes."""
        if self._owns_memory:
            return
        self._matrix = np.array(self._matrix)
        if self._signatures is not None:
            self._signatures = np.array(self._signatures)
        self._owns_memory = True

    def add(
        self,
        key: object,
        vector: np.ndarray,
        signature: np.ndarray | None = None,
        *,
        assume_unit: bool = False,
    ) -> int:
        """Append one named vector; returns its row id.

        The vector is validated (:meth:`coerce_unit`), rejected when zero
        (cosine against a zero vector is undefined), unit-normalized, and
        stored as ``float32``.  ``assume_unit`` skips re-normalization when
        the caller already holds a coerced unit row (the index base class
        does, because it derives the signature from it).  Keys are unique:
        re-adding a live key raises ``ValueError``.  When the arena stores
        signatures, one packed row of ``signature_words`` ``uint64`` words
        is required.
        """
        if key in self._rows:
            raise ValueError(f"key {key!r} already indexed; use update()")
        unit = vector if assume_unit else self.coerce_unit(vector)
        if unit is None:
            raise ValueError(f"cannot index zero vector under key {key!r}")
        if self.signature_words:
            if signature is None:
                raise ValueError("arena stores signatures; add() requires one")
            signature = self.coerce_signature(signature)
        row = self._size
        if row >= len(self._alive):
            self._grow(row + 1)
        self._matrix[row] = unit
        if self._signatures is not None:
            self._signatures[row] = signature
        self._alive[row] = True
        self._keys.append(key)
        self._rows[key] = row
        self._size += 1
        self._live += 1
        self.mutation_generation += 1
        return row

    def add_batch(
        self,
        keys: list[object],
        matrix: np.ndarray,
        signatures: np.ndarray | None = None,
        *,
        assume_unit: bool = False,
    ) -> np.ndarray:
        """Append many rows at once; returns their row ids.

        ``matrix`` rows are normalized in one vectorized pass; zero rows
        raise ``ValueError`` (same contract as :meth:`add`).
        ``assume_unit`` skips the normalization pass when the caller
        already validated and normalized the rows (the index base class
        does, because it derives signatures from them).
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, matrix.shape[-1] if matrix.ndim else 0
            )
        if len(keys) != matrix.shape[0]:
            raise ValueError(
                f"{len(keys)} keys for {matrix.shape[0]} matrix rows"
            )
        for key in keys:
            if key in self._rows:
                raise ValueError(f"key {key!r} already indexed; use update()")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys in one add_batch() call")
        if assume_unit:
            units = matrix.astype(self.dtype, copy=False)
        else:
            norms = np.linalg.norm(matrix.astype(np.float64, copy=False), axis=1)
            zero = np.flatnonzero(norms == 0.0)
            if zero.size:
                raise ValueError(
                    f"cannot index zero vector under key {keys[int(zero[0])]!r}"
                )
            units = (matrix / norms[:, None]).astype(self.dtype)
        if self.signature_words:
            if signatures is None:
                raise ValueError("arena stores signatures; add_batch() requires them")
            signatures = np.asarray(signatures, dtype=np.uint64)
            if signatures.shape != (len(keys), self.signature_words):
                raise DimensionMismatchError(
                    self.signature_words,
                    signatures.shape[-1] if signatures.ndim else 0,
                )
        start = self._size
        count = len(keys)
        if start + count > len(self._alive):
            self._grow(start + count)
        self._matrix[start : start + count] = units
        if self._signatures is not None:
            self._signatures[start : start + count] = signatures
        self._alive[start : start + count] = True
        for offset, key in enumerate(keys):
            self._keys.append(key)
            self._rows[key] = start + offset
        self._size += count
        self._live += count
        self.mutation_generation += 1
        return np.arange(start, start + count)

    def remove(self, key: object) -> bool:
        """Tombstone one key; returns whether a compaction was triggered.

        O(1): the row's alive bit is cleared and its matrix slot left in
        place.  Once dead rows exceed 25% of the occupied region
        (``_COMPACT_DEAD_FRACTION``) the arena compacts (stable rewrite,
        ``generation`` bump) so scans stay within a bounded factor of the
        live count.
        """
        row = self._rows.pop(key, None)
        if row is None:
            raise KeyError(f"key {key!r} is not indexed")
        self._alive[row] = False
        self._keys[row] = None
        self._live -= 1
        self.mutation_generation += 1
        if (
            self._size >= _COMPACT_MIN_ROWS
            and self.dead_count > self._size * _COMPACT_DEAD_FRACTION
        ):
            self.compact()
            return True
        return False

    def touch(self) -> None:
        """Bump :attr:`mutation_generation` without changing any content.

        For owners that must signal "derived state is stale" when a
        logical mutation leaves the stored rows untouched — e.g.
        dropping a table whose columns were already all evicted.
        """
        self.mutation_generation += 1

    def compact(self) -> None:
        """Rewrite live rows densely, preserving order; bumps ``generation``.

        O(live · dim).  Row ids change, so owners holding row-addressed
        structures (LSH bucket postings, pivot distance tables) must treat
        a ``generation`` change as an invalidation signal.
        """
        if self.dead_count == 0:
            return
        self._ensure_writable()
        live = self.live_rows()
        count = int(live.size)
        self._matrix[:count] = self._matrix[live]
        if self._signatures is not None:
            self._signatures[:count] = self._signatures[live]
        self._alive[:count] = True
        self._alive[count : self._size] = False
        self._keys = [self._keys[row] for row in live]
        self._rows = {key: row for row, key in enumerate(self._keys)}
        self._size = count
        self._live = count
        self.generation += 1
        self.mutation_generation += 1

    # -- adoption -----------------------------------------------------------------

    def adopt(
        self,
        keys: list[object],
        matrix: np.ndarray,
        signatures: np.ndarray | None = None,
        *,
        alive: np.ndarray | None = None,
    ) -> np.ndarray:
        """Take ownership of pre-built rows *without copying the vectors*.

        The zero-copy restore path: ``matrix`` (and ``signatures``) become
        the arena's backing storage directly — typically read-only
        ``np.memmap`` views into an uncompressed artifact, so a cold load
        costs O(keys) instead of O(n·dim) and vector pages stream in
        lazily as queries touch them.  Rows are trusted to be ``float32``
        unit vectors (the artifact contract); only shapes are validated.
        Valid on an empty arena only.  The first in-place write
        (compaction) thaws the storage into a private RAM copy; appends
        grow into fresh storage anyway.

        ``alive`` restores a layout-preserving artifact (see
        :meth:`save`): rows whose mask bit is clear are adopted as
        tombstones (their key slot is ignored), reproducing the writer's
        physical layout exactly — the property the multi-process read
        path relies on for bitwise score parity.
        """
        if self._size:
            raise ValueError("adopt() requires an empty arena")
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, matrix.shape[-1] if matrix.ndim else 0
            )
        count = matrix.shape[0]
        if len(keys) != count:
            raise ValueError(f"{len(keys)} keys for {count} matrix rows")
        if alive is not None:
            alive = np.array(alive, dtype=bool)
            if alive.shape != (count,):
                raise ValueError(
                    f"alive mask of {alive.shape} for {count} matrix rows"
                )
            live_keys = [key for key, bit in zip(keys, alive) if bit]
            if len(set(live_keys)) != len(live_keys):
                raise ValueError("duplicate live keys in one adopt() call")
        elif len(set(keys)) != count:
            raise ValueError("duplicate keys in one adopt() call")
        if matrix.dtype != self.dtype:
            matrix = matrix.astype(self.dtype)
        if self.signature_words:
            if signatures is None:
                raise ValueError("arena stores signatures; adopt() requires them")
            signatures = np.asarray(signatures, dtype=np.uint64)
            if signatures.shape != (count, self.signature_words):
                raise DimensionMismatchError(
                    self.signature_words,
                    signatures.shape[-1] if signatures.ndim else 0,
                )
        else:
            signatures = None
        self._matrix = matrix
        self._signatures = signatures
        if alive is None:
            self._alive = np.ones(count, dtype=bool)
            self._keys = list(keys)
            self._rows = {key: row for row, key in enumerate(self._keys)}
            self._live = count
        else:
            self._alive = alive
            self._keys = [
                key if bit else None for key, bit in zip(keys, alive)
            ]
            self._rows = {
                key: row
                for row, (key, bit) in enumerate(zip(keys, alive))
                if bit
            }
            self._live = int(alive.sum())
        self._size = count
        self._owns_memory = bool(matrix.flags.writeable) and (
            signatures is None or bool(signatures.flags.writeable)
        )
        self.mutation_generation += 1
        return np.arange(count)

    # -- persistence --------------------------------------------------------------

    def save(
        self,
        path: str | Path,
        *,
        compress: bool = False,
        preserve_layout: bool = False,
    ) -> Path:
        """Write the arena to ``path`` as an ``.npz`` archive.

        Uncompressed by default: an uncompressed archive saves ~10x faster
        on the embedding matrices this stores (near-incompressible float32
        noise) and — decisively — its members can be memory-mapped on
        load (see :mod:`repro.index.mmapio`), so a cold process maps the
        artifact in milliseconds instead of decompressing it into RAM.
        Pass ``compress=True`` to trade that away for ~20-30% smaller
        files (cold storage, network shipping).

        By default the artifact is compacted on the way out: only live
        rows are stored, so tombstones never ship.  With
        ``preserve_layout=True`` the full occupied region is written
        verbatim — tombstoned rows, alive mask and all — so a reader that
        adopts it reconstructs the *physical* row layout of this arena.
        That is the multi-process replication mode: float32 matrix
        products are sensitive to row layout in the last ulp (BLAS picks
        its reduction order from the matrix shape), so a worker scoring a
        compacted copy can disagree with the writer by one ulp after
        churn.  A layout-preserving segment makes worker arithmetic
        bit-identical to the writer's; the size overhead is bounded by
        the compaction threshold (dead rows never exceed ~25% of the
        region).  Keys are serialized as an object array (refs, strings,
        ints — anything picklable).

        This is the substrate-level primitive (arena in, arena out); the
        *deployment* artifact — config header, portable string refs,
        format versioning — is owned by :mod:`repro.core.persistence`,
        which stores the same arrays under its own envelope.
        """
        path = Path(path)
        if preserve_layout:
            keys = np.empty(self._size, dtype=object)
            keys[:] = self._keys
            payload = {
                "dim": np.int64(self.dim),
                "signature_words": np.int64(self.signature_words),
                "matrix": self._matrix[: self._size],
                "keys": keys,
                "alive": np.array(self._alive[: self._size]),
            }
            if self._signatures is not None:
                payload["signatures"] = self._signatures[: self._size]
        else:
            live = self.live_rows()
            keys = np.empty(len(live), dtype=object)
            keys[:] = [self._keys[row] for row in live]
            payload = {
                "dim": np.int64(self.dim),
                "signature_words": np.int64(self.signature_words),
                "matrix": self._matrix[live],
                "keys": keys,
            }
            if self._signatures is not None:
                payload["signatures"] = self._signatures[live]
        writer = np.savez_compressed if compress else np.savez
        writer(path, **payload)
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = True) -> "VectorArena":
        """Restore an arena written by :meth:`save`.

        With ``mmap=True`` (default), uncompressed archives are adopted
        zero-copy: the vector and signature matrices stay memory-mapped
        and page in lazily.  Compressed archives (and ``mmap=False``)
        load the arrays into memory; either way the restored arena is
        element-for-element identical.
        """
        path = Path(path)
        if mmap:
            from repro.index.mmapio import load_npz_arrays

            payload = load_npz_arrays(path, allow_pickle=True)
            dim = int(payload["dim"])
            signature_words = int(payload["signature_words"])
            matrix = payload["matrix"]
            keys = list(payload["keys"])
            signatures = payload.get("signatures")
            alive = payload.get("alive")
        else:
            with np.load(path, allow_pickle=True) as payload:
                dim = int(payload["dim"])
                signature_words = int(payload["signature_words"])
                matrix = payload["matrix"]
                keys = list(payload["keys"])
                signatures = (
                    payload["signatures"] if "signatures" in payload else None
                )
                alive = payload["alive"] if "alive" in payload else None
        arena = cls(dim, signature_words=signature_words)
        if keys:
            arena.adopt(keys, matrix, signatures, alive=alive)
        return arena


class ColumnarIndex:
    """Shared arena-backed base for the cosine index backends.

    Owns the :class:`VectorArena` plus the add/remove/update lifecycle and
    the batched ranking helpers; subclasses contribute candidate
    generation (:meth:`_candidate_rows`, :meth:`_candidate_flags`) and any
    derived structures via the ``_after_add`` / ``build`` hooks.
    """

    #: default cosine floor applied when a query passes ``threshold=None``
    threshold: float = -1.0

    def __init__(self, dim: int, *, signature_words: int = 0) -> None:
        self.dim = dim
        self._arena = VectorArena(dim, signature_words=signature_words)
        self._quant: ArenaQuantizer | None = None

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._arena)

    def __contains__(self, key: object) -> bool:
        return key in self._arena

    @property
    def arena(self) -> VectorArena:
        """The backing columnar store (shared-substrate introspection)."""
        return self._arena

    @property
    def mutation_generation(self) -> int:
        """Monotonic counter covering every content mutation.

        Any change to what a query could return — add, remove, update,
        bulk load, compaction, artifact adoption — moves it, so a result
        cached under one value is implicitly invalid under any other (the
        :class:`~repro.service.qcache.QueryResultCache` key contract).
        """
        return self._arena.mutation_generation

    def touch(self) -> None:
        """Advance :attr:`mutation_generation` without a content change."""
        self._arena.touch()

    def keys(self) -> list[object]:
        """Live keys in insertion order."""
        return self._arena.keys()

    def vector_of(self, key: object) -> np.ndarray:
        """Stored unit vector of ``key`` (``float32`` copy)."""
        return self._arena.vector_of(key)

    def export_rows(self) -> tuple[list[object], np.ndarray, np.ndarray | None]:
        """Live ``(keys, vectors, signatures)`` in insertion order.

        The persistence layer's gather point, uniform across plain and
        :class:`~repro.index.sharding.ShardedIndex` engines.
        """
        arena = self._arena
        live = arena.live_rows()
        keys = [arena.key_at(int(row)) for row in live]
        vectors = arena.matrix[live]
        signatures = arena.signatures[live] if arena.signature_words else None
        return keys, vectors, signatures

    # -- quantization -------------------------------------------------------------

    def enable_quantization(self, rerank_factor: int = 4, **kwargs) -> None:
        """Score candidates on int8 codes; re-rank the top ``rerank_factor * k``
        survivors exactly in float32 (see :class:`~repro.index.quant.ArenaQuantizer`).

        Rejects ``dim`` beyond the fused scorer's exact-integer envelope
        (127² · dim must stay below 2²⁴): past it the float32 GEMM would
        silently stop reproducing int32 arithmetic and recall would
        degrade unannounced.
        """
        from repro.index.quant import _EXACT_GEMM_MAX_DIM

        if self.dim > _EXACT_GEMM_MAX_DIM:
            raise ValueError(
                f"int8 quantization supports dim <= {_EXACT_GEMM_MAX_DIM} "
                f"(exact int32 accumulation in float32); got dim={self.dim}"
            )
        self._quant = ArenaQuantizer(rerank_factor, **kwargs)

    def disable_quantization(self) -> None:
        """Return to full-float32 scoring."""
        self._quant = None

    @property
    def quantizer(self) -> ArenaQuantizer | None:
        """The active int8 quantizer, or ``None``."""
        return self._quant

    def set_rerank_factor(self, rerank_factor: int) -> None:
        """Retune the live quantizer's re-rank breadth (no-op when off).

        ``rerank_factor`` is read fresh on every query, so a plain
        attribute swap takes effect on the next probe without touching
        the codes — cheap enough for degraded-mode serving to downshift
        and recover at will, and safe under concurrent readers.
        """
        if rerank_factor < 1:
            raise ValueError(f"rerank_factor must be >= 1, got {rerank_factor}")
        if self._quant is not None:
            self._quant.rerank_factor = rerank_factor

    # -- construction -------------------------------------------------------------

    def _signature_for(self, unit: np.ndarray) -> np.ndarray | None:
        """Packed signature row for one unit vector (``None`` = no signatures)."""
        return None

    def _signatures_for(self, units: np.ndarray) -> np.ndarray | None:
        """Packed signature rows for a unit-row matrix."""
        return None

    def _after_add(self, row: int) -> None:
        """Hook: a row was appended (update row-addressed structures)."""

    def _after_remove(self) -> None:
        """Hook: a row was tombstoned (invalidate derived structures)."""

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert one named vector (unit-normalized into the arena).

        Zero vectors are rejected (no direction, cosine undefined); keys
        are unique — re-adding a live key raises ``ValueError`` (use
        :meth:`update`).  Dimension mismatches raise
        :class:`~repro.errors.DimensionMismatchError` on every backend.
        """
        unit = self._arena.coerce_unit(vector)
        if unit is None:
            raise ValueError(f"cannot index zero vector under key {key!r}")
        row = self._arena.add(key, unit, self._signature_for(unit), assume_unit=True)
        self._after_add(row)

    def add_many(self, items: list[tuple[object, np.ndarray]]) -> None:
        """Insert many named vectors."""
        for key, vector in items:
            self.add(key, vector)

    def _after_bulk(self, rows: np.ndarray) -> None:
        """Hook: many rows were appended at once (default: per-row hook)."""
        for row in rows:
            self._after_add(int(row))

    def bulk_load(
        self,
        keys: list[object],
        matrix: np.ndarray,
        *,
        signatures: np.ndarray | None = None,
    ) -> None:
        """Vectorized bulk insert of ``len(keys)`` rows in one pass.

        The columnar fast path: one normalization pass, one (optional)
        batched signature computation, one arena append, one wholesale
        derived-structure rebuild.  Used by index builds and artifact
        restore; results are identical to repeated :meth:`add` calls.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, matrix.shape[-1] if matrix.ndim else 0
            )
        if len(keys) != matrix.shape[0]:
            raise ValueError(f"{len(keys)} keys for {matrix.shape[0]} matrix rows")
        if signatures is None:
            # Normalize once here (zero rows rejected, same contract as
            # add) so the signature pass and the arena share the units.
            norms = np.linalg.norm(matrix.astype(np.float64, copy=False), axis=1)
            zero = np.flatnonzero(norms == 0.0)
            if zero.size:
                raise ValueError(
                    f"cannot index zero vector under key {keys[int(zero[0])]!r}"
                )
            units = (matrix / norms[:, None]).astype(self._arena.dtype)
            signatures = self._signatures_for(units)
            rows = self._arena.add_batch(keys, units, signatures, assume_unit=True)
        else:
            rows = self._arena.add_batch(keys, matrix, signatures)
        self._after_bulk(rows)

    def adopt_rows(
        self,
        keys: list[object],
        matrix: np.ndarray,
        signatures: np.ndarray | None = None,
        *,
        alive: np.ndarray | None = None,
    ) -> None:
        """Zero-copy restore: adopt pre-built unit rows as the arena storage.

        The artifact fast path (format 3): ``matrix`` — typically a
        read-only memmap — becomes the arena's backing storage without a
        normalization or copy pass, and derived structures (LSH buckets,
        pivot tables) are *not* built eagerly: the generation bump leaves
        them stale, so they resynchronize lazily on first use — or
        eagerly via :meth:`build`, which is what the serving layer does
        under its write lock.  Cold-load cost is therefore O(keys),
        independent of ``dim``.  Rows must be ``float32`` unit vectors,
        which every saved artifact guarantees.  Requires an empty index.
        When the backend stores signatures and none are supplied they are
        recomputed (which reads every row once).  ``alive`` restores a
        layout-preserving artifact, tombstones included (see
        :meth:`VectorArena.adopt`).
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, matrix.shape[-1] if matrix.ndim else 0
            )
        if self._arena.signature_words and signatures is None:
            signatures = self._signatures_for(matrix.astype(self._arena.dtype, copy=False))
        self._arena.adopt(keys, matrix, signatures, alive=alive)
        # Same invalidation signal a compaction sends: row-addressed
        # structures notice the generation change and rebuild on demand.
        self._arena.generation += 1

    def remove(self, key: object) -> None:
        """Tombstone one key in O(1); raises ``KeyError`` when absent.

        The arena compacts itself once tombstones pass the dead-fraction
        threshold; derived structures resynchronize lazily via the arena's
        ``generation`` counter (or eagerly on :meth:`build`).
        """
        self._arena.remove(key)
        self._after_remove()

    def update(self, key: object, vector: np.ndarray) -> None:
        """Replace (or insert) the vector stored under ``key``."""
        if key in self._arena:
            self.remove(key)
        self.add(key, vector)

    def build(self) -> None:
        """Eagerly rebuild derived structures (idempotent).

        Queries resynchronize lazily on first use; the serving layer calls
        this after mutations (under its write lock) so the shared read
        path never writes state.  The int8 code mirror is one such
        structure: it syncs here, and subclass overrides call
        ``super().build()`` to keep that true.
        """
        if self._quant is not None:
            self._quant.sync(self._arena)

    # -- query validation ---------------------------------------------------------

    def _check_query(self, k: int) -> None:
        if len(self._arena) == 0:
            raise EmptyIndexError(f"query on empty {type(self).__name__}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")

    def _coerce_queries(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Validate a query block; returns (unit rows float32, zero-row mask)."""
        queries = np.asarray(queries)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, queries.shape[-1] if queries.ndim else 0
            )
        norms = np.linalg.norm(queries.astype(np.float64, copy=False), axis=1)
        zero = norms == 0.0
        safe = np.where(zero, 1.0, norms)
        units = (queries / safe[:, None]).astype(self._arena.dtype)
        return units, zero

    # -- ranking helpers ----------------------------------------------------------

    def _assemble(
        self,
        rows: np.ndarray,
        scores: np.ndarray,
        floor: float,
        k: int,
        exclude: object,
    ) -> list[tuple[object, float]]:
        """Threshold, exclude, and rank scored rows into ``(key, score)``s.

        Ordering is canonical across backends: score descending, then
        ``str(key)`` ascending to break ties deterministically.
        """
        keep = scores >= floor
        rows, scores = rows[keep], scores[keep]
        # Preselect in numpy before touching Python objects: only the top
        # k(+1 for a possible exclusion) can surface, plus every row tied
        # with the boundary score so the str(key) tiebreak stays globally
        # correct.  Without this, a permissive floor (exact backend at
        # threshold -1) would build and sort n Python tuples per query.
        limit = k + (1 if exclude is not None else 0)
        if rows.size > limit:
            order = np.argsort(-scores, kind="stable")
            boundary = scores[order[limit - 1]]
            cutoff = int(np.searchsorted(-scores[order], -boundary, side="right"))
            order = order[:cutoff]
            rows, scores = rows[order], scores[order]
        arena = self._arena
        scored = [
            (arena.key_at(row), float(score))
            for row, score in zip(rows.tolist(), scores.tolist())
        ]
        if exclude is not None:
            scored = [pair for pair in scored if pair[0] != exclude]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored[:k]

    def _rank_rows(
        self,
        unit: np.ndarray,
        rows: np.ndarray,
        floor: float,
        k: int,
        exclude: object,
    ) -> list[tuple[object, float]]:
        """Exact-cosine re-rank of candidate rows: one gathered matvec.

        With quantization enabled, a large candidate set is first cut to
        the top ``rerank_factor * k`` by approximate int8 score, so the
        float32 gather touches a bounded number of rows.
        """
        if rows.size == 0:
            return []
        if self._quant is not None:
            limit = self._quant.rerank_factor * k + (1 if exclude is not None else 0)
            rows = self._quant.preselect(self._arena, unit, rows, limit)
        scores = self._arena.matrix[rows] @ unit
        return self._assemble(rows, scores, floor, k, exclude)

    def _pair_filter(
        self, units: np.ndarray, query_ids: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Candidacy check for above-threshold (query, row) pairs.

        The batched path scores first (one GEMM) and generates candidates
        second: only pairs that already cleared the cosine floor are asked
        whether the backend's pruning structure would have surfaced them.
        A lossless backend (exact scan, pivot filter) accepts every pair;
        LSH verifies band-key collisions.  Because per-query search
        computes ``candidates ∧ above-floor`` and this path computes
        ``above-floor ∧ candidates``, the two orders select the same set.
        """
        return np.ones(query_ids.shape[0], dtype=bool)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        excludes: list[object] | None = None,
    ) -> list[list[tuple[object, float]]]:
        """Batched top-``k``: one matrix product for the whole query block.

        Semantically identical to calling :meth:`query` once per row of
        ``queries`` (same result set, same scores up to the shared
        ``float32`` arithmetic, same ordering), but the exact re-ranking
        runs as a single ``(n_queries × dim) @ (dim × n_rows)`` BLAS GEMM
        instead of per-query gathered matvecs, thresholding happens in one
        vectorized pass, and candidate generation inverts into a cheap
        per-pair verification of the few above-floor survivors
        (:meth:`_pair_filter`) — no per-query bucket probing at all.

        ``excludes`` optionally drops one key per query (parallel list).
        Raises :class:`~repro.errors.EmptyIndexError` on an empty index and
        :class:`~repro.errors.DimensionMismatchError` on a shape mismatch.

        Sized for thresholded serving: the pair expansion holds one entry
        per above-floor (query, row) pair, so a permissive floor (e.g.
        ``threshold=-1``) degrades to O(q·n) transient memory — correct,
        but the per-query path is the better tool there.
        """
        self._check_query(k)
        units, zero = self._coerce_queries(queries)
        n_queries = units.shape[0]
        if excludes is not None and len(excludes) != n_queries:
            raise ValueError(
                f"{len(excludes)} excludes for {n_queries} queries"
            )
        floor = self.threshold if threshold is None else threshold
        if n_queries == 0:
            return []
        arena = self._arena
        # The batched re-rank: one GEMM over the arena, then one
        # vectorized thresholding pass.  Scoring dead or non-candidate
        # rows is wasted work but branch-free; liveness, zero-query, and
        # candidacy masks are applied per surviving *pair* (there are few
        # of those), which keeps results identical to per-query candidate
        # generation without another full-matrix pass.
        #
        # With quantization enabled, the full-matrix pass runs on the int8
        # code mirror instead (approximate scores), the floor is relaxed
        # by the quantizer's slack so above-floor pairs survive their
        # quantization error, and each query's top ``rerank_factor * k``
        # survivors are re-scored exactly in float32 before assembly —
        # the true floor then applies to exact scores only.
        quant = self._quant
        if quant is not None:
            scores = quant.score_block(arena, units)
            generation_floor = floor - quant.floor_slack
        else:
            scores = units @ arena.matrix.T
            generation_floor = floor
        # flatnonzero over the raveled (contiguous) score block is several
        # times faster than np.nonzero on the 2-D boolean; the flat order
        # is row-major, so query_ids comes out sorted for the split below.
        flat = np.flatnonzero(scores.ravel() >= generation_floor)
        query_ids, rows = np.divmod(flat, scores.shape[1])
        if query_ids.size:
            keep = arena.alive[rows]
            if zero.any():
                keep &= ~zero[query_ids]
            query_ids, rows = query_ids[keep], rows[keep]
        if query_ids.size:
            candidate = self._pair_filter(units, query_ids, rows)
            query_ids, rows = query_ids[candidate], rows[candidate]
        kept_scores = scores[query_ids, rows]
        # query_ids is sorted (row-major flat order); slice each query's
        # run without another pass.
        bounds = np.searchsorted(query_ids, np.arange(n_queries + 1))
        results: list[list[tuple[object, float]]] = []
        for query in range(n_queries):
            start, stop = int(bounds[query]), int(bounds[query + 1])
            exclude = excludes[query] if excludes is not None else None
            query_rows = rows[start:stop]
            query_scores = kept_scores[start:stop]
            if quant is not None:
                limit = quant.rerank_factor * k + (1 if exclude is not None else 0)
                if query_rows.size > limit:
                    top = np.argpartition(-query_scores, limit - 1)[:limit]
                    query_rows = query_rows[top]
                if query_rows.size:
                    query_scores = arena.matrix[query_rows] @ units[query]
            results.append(
                self._assemble(query_rows, query_scores, floor, k, exclude)
            )
        return results
