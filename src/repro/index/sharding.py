"""Sharded parallel query engine over per-shard columnar arenas.

One monolithic :class:`~repro.index.arena.VectorArena` scores every query
on one core and locks the world on every compaction.  Partitioned indexes
are how systems at this scale parallelize (LSH Ensemble partitions by set
size; embedding services partition by hash): :class:`ShardedIndex` splits
the corpus across ``n_shards`` independent backend instances — each with
its own arena, buckets, pivot tables, tombstones, and compaction schedule
— and makes the partitioning invisible to callers:

* **placement** is deterministic: ``hash`` (default) routes a key by a
  stable hash of its table identity, so the columns of one table colocate
  and a table drop touches one shard; ``round_robin`` balances corpus
  loads exactly.  A key→shard map preserves global insertion order and
  O(1) ownership lookups.
* **search fan-out**: ``query`` / ``search_batch`` dispatch every
  non-empty shard onto a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (numpy GEMMs release the GIL, so shards score in parallel on multi-core
  hosts) with the calling thread scoring the last shard itself.
* **top-k merge**: each shard returns its own exact top-k above the same
  floor, so the global top-k is a subset of the union; the merge selects
  it with a single ``np.argpartition`` pass plus the canonical
  (score desc, ``str(key)`` asc) tie-break — results are *identical* to a
  1-shard index over the same corpus (pinned by property tests across
  all three backends).
* **mutations stay shard-local**: add/remove/update route to the owning
  shard, so a compaction triggered by churn rewrites one shard's arena
  while the others keep serving untouched.

The wrapper exposes the same surface :class:`~repro.index.arena.ColumnarIndex`
does (``add``/``bulk_load``/``remove``/``update``/``build``/``query``/
``search_batch``/``keys``/``vector_of``/``export_rows``), so WarpGate and
the serving layer treat both interchangeably.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro._util import stable_uint64
from repro.errors import DimensionMismatchError, EmptyIndexError

__all__ = ["ShardedIndex"]

_PLACEMENTS = ("hash", "round_robin")

# One process-wide pool shared by every ShardedIndex: shard fan-out is
# GIL-releasing GEMM work, so a single pool sized to the machine serves
# any number of sharded indexes without thread explosions.
_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _shared_executor() -> ThreadPoolExecutor:
    global _pool
    with _pool_lock:
        if _pool is None:
            workers = max(2, (os.cpu_count() or 1))
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="shard"
            )
        return _pool


def _placement_key(key: object) -> str:
    """Stable placement identity: table address for refs, str otherwise."""
    table_key = getattr(key, "table_key", None)
    if table_key is not None:
        return "\x1f".join(str(part) for part in table_key)
    return str(key)


class ShardedIndex:
    """Partitioned cosine index: S independent shards, one logical index.

    Parameters
    ----------
    dim:
        Vector dimensionality (every shard validates against it).
    factory:
        Zero-argument callable building one backend shard (e.g. a
        configured :class:`~repro.index.lsh.SimHashLSHIndex`).  Called
        ``n_shards`` times; shards must be identically configured for
        merged results to equal the 1-shard index.
    n_shards:
        Number of partitions.
    placement:
        ``hash`` (stable hash of table identity) or ``round_robin``.
    """

    def __init__(
        self,
        dim: int,
        factory,
        *,
        n_shards: int,
        placement: str = "hash",
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if placement not in _PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; choose from {_PLACEMENTS}"
            )
        self.dim = dim
        self.n_shards = n_shards
        self.placement = placement
        self.shards = tuple(factory() for _ in range(n_shards))
        for shard in self.shards:
            if shard.dim != dim:
                raise ValueError(
                    f"factory built a shard with dim {shard.dim}, expected {dim}"
                )
        # key -> shard id; also the global insertion order (dicts preserve
        # it), so keys() matches the 1-shard index exactly.
        self._owner: dict[object, int] = {}
        self._next_shard = 0  # round-robin cursor

    def __repr__(self) -> str:
        sizes = ",".join(str(len(shard)) for shard in self.shards)
        return (
            f"ShardedIndex(n={len(self)}, shards={self.n_shards}[{sizes}], "
            f"placement={self.placement!r}, backend={type(self.shards[0]).__name__})"
        )

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._owner)

    def __contains__(self, key: object) -> bool:
        return key in self._owner

    @property
    def threshold(self) -> float:
        """Default cosine floor (shared by every shard)."""
        return self.shards[0].threshold

    @property
    def mutation_generation(self) -> int:
        """Monotonic content-mutation counter across all shards.

        The sum of shard-local counters: each only ever grows, so the sum
        is monotonic, and any mutation anywhere (including a shard-local
        compaction) moves it — the same implicit-invalidation contract the
        single-arena :attr:`ColumnarIndex.mutation_generation` offers.
        """
        return sum(shard.mutation_generation for shard in self.shards)

    def touch(self) -> None:
        """Advance :attr:`mutation_generation` without a content change."""
        self.shards[0].touch()

    def keys(self) -> list[object]:
        """Live keys in global insertion order."""
        return list(self._owner)

    def vector_of(self, key: object) -> np.ndarray:
        """Stored unit vector of ``key`` (``float32`` copy)."""
        return self.shards[self._owner[key]].vector_of(key)

    def shard_of(self, key: object) -> int:
        """Shard id owning ``key``; raises ``KeyError`` when absent."""
        return self._owner[key]

    def shard_sizes(self) -> list[int]:
        """Live entries per shard (placement balance diagnostics)."""
        return [len(shard) for shard in self.shards]

    # -- placement ----------------------------------------------------------------

    def _place(self, key: object) -> int:
        if self.placement == "hash":
            return int(stable_uint64(_placement_key(key), salt="shard") % self.n_shards)
        chosen = self._next_shard
        self._next_shard = (chosen + 1) % self.n_shards
        return chosen

    # -- mutation -----------------------------------------------------------------

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert one named vector into its owning shard."""
        if key in self._owner:
            raise ValueError(f"key {key!r} already indexed; use update()")
        shard_id = self._place(key)
        self.shards[shard_id].add(key, vector)
        self._owner[key] = shard_id

    def add_many(self, items: list[tuple[object, np.ndarray]]) -> None:
        """Insert many named vectors."""
        for key, vector in items:
            self.add(key, vector)

    def bulk_load(
        self,
        keys: list[object],
        matrix: np.ndarray,
        *,
        signatures: np.ndarray | None = None,
    ) -> None:
        """Partition a bulk insert across shards (one bulk pass per shard).

        Everything a shard could reject — shapes, duplicates, zero rows,
        signature alignment — is validated *before* any shard mutates, so
        a bad batch never leaves some shards loaded and others not.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, matrix.shape[-1] if matrix.ndim else 0
            )
        if len(keys) != matrix.shape[0]:
            raise ValueError(f"{len(keys)} keys for {matrix.shape[0]} matrix rows")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys in one bulk_load() call")
        for key in keys:
            if key in self._owner:
                raise ValueError(f"key {key!r} already indexed; use update()")
        if signatures is not None:
            signatures = np.asarray(signatures)
            if signatures.ndim != 2 or signatures.shape[0] != len(keys):
                raise ValueError(
                    f"signatures shape {signatures.shape} does not align with "
                    f"{len(keys)} keys"
                )
        norms = np.linalg.norm(matrix.astype(np.float64, copy=False), axis=1)
        zero = np.flatnonzero(norms == 0.0)
        if zero.size:
            raise ValueError(
                f"cannot index zero vector under key {keys[int(zero[0])]!r}"
            )
        partitions: list[list[int]] = [[] for _ in range(self.n_shards)]
        owners = [self._place(key) for key in keys]
        for position, shard_id in enumerate(owners):
            partitions[shard_id].append(position)
        for shard_id, positions in enumerate(partitions):
            if not positions:
                continue
            rows = np.asarray(positions, dtype=np.int64)
            self.shards[shard_id].bulk_load(
                [keys[p] for p in positions],
                matrix[rows],
                signatures=None if signatures is None else signatures[rows],
            )
        # Commit ownership only after every shard accepted its partition.
        for key, shard_id in zip(keys, owners):
            self._owner[key] = shard_id

    def remove(self, key: object) -> None:
        """Tombstone one key in its owning shard (shard-local compaction)."""
        shard_id = self._owner.get(key)
        if shard_id is None:
            raise KeyError(f"key {key!r} is not indexed")
        self.shards[shard_id].remove(key)
        del self._owner[key]

    def update(self, key: object, vector: np.ndarray) -> None:
        """Replace (or insert) the vector stored under ``key``.

        Updates stay on the owning shard, so placement never drifts under
        refresh churn (round-robin included).
        """
        shard_id = self._owner.get(key)
        if shard_id is None:
            self.add(key, vector)
            return
        self.shards[shard_id].update(key, vector)

    def build(self) -> None:
        """Eagerly rebuild every non-empty shard's derived structures."""
        for shard in self.shards:
            if len(shard) > 0:
                shard.build()

    # -- quantization -------------------------------------------------------------

    def enable_quantization(self, rerank_factor: int = 4, **kwargs) -> None:
        """Enable int8 candidate scoring on every shard."""
        for shard in self.shards:
            shard.enable_quantization(rerank_factor, **kwargs)

    def disable_quantization(self) -> None:
        for shard in self.shards:
            shard.disable_quantization()

    @property
    def quantizer(self):
        """Shard 0's quantizer (``None`` when quantization is off)."""
        return self.shards[0].quantizer

    def set_rerank_factor(self, rerank_factor: int) -> None:
        """Retune re-rank breadth on every shard (no-op when off)."""
        for shard in self.shards:
            shard.set_rerank_factor(rerank_factor)

    # -- export -------------------------------------------------------------------

    def export_rows(self) -> tuple[list[object], np.ndarray, np.ndarray | None]:
        """Gather ``(keys, vectors, signatures)`` across all shards.

        Concatenated per shard; alignment between the three parts is
        preserved.  The persistence layer re-sorts by ref, so the
        cross-shard order carries no meaning.
        """
        parts = [
            shard.export_rows() for shard in self.shards if len(shard) > 0
        ]
        if not parts:
            return [], np.zeros((0, self.dim), dtype=np.float32), None
        keys = [key for part in parts for key in part[0]]
        vectors = np.concatenate([part[1] for part in parts])
        signatures = (
            np.concatenate([part[2] for part in parts])
            if parts[0][2] is not None
            else None
        )
        return keys, vectors, signatures

    # -- search -------------------------------------------------------------------

    def _live_shards(self) -> list:
        return [shard for shard in self.shards if len(shard) > 0]

    def _check_query(self, k: int) -> None:
        if len(self) == 0:
            raise EmptyIndexError("query on empty ShardedIndex")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")

    def _fan_out(self, tasks: list) -> list:
        """Run per-shard thunks, pool for all but the last (run inline).

        With one live shard this degenerates to a plain call — no pool
        round-trip on the 1-shard configuration.
        """
        if len(tasks) == 1:
            return [tasks[0]()]
        executor = _shared_executor()
        futures = [executor.submit(task) for task in tasks[:-1]]
        last = tasks[-1]()
        return [future.result() for future in futures] + [last]

    @staticmethod
    def _merge_topk(
        per_shard: list[list[tuple[object, float]]], k: int
    ) -> list[tuple[object, float]]:
        """Global top-k from per-shard top-k lists (single argpartition pass).

        Every global top-k entry is inside its own shard's top-k, so the
        union is a superset; selection keeps all entries tied with the
        boundary score so the canonical ``str(key)`` tie-break stays
        globally correct.
        """
        merged = [pair for part in per_shard for pair in part]
        if len(merged) > k:
            scores = np.fromiter(
                (score for _key, score in merged), dtype=np.float64, count=len(merged)
            )
            top = np.argpartition(-scores, k - 1)
            boundary = scores[top[k - 1]]
            keep = np.flatnonzero(scores >= boundary)
            merged = [merged[int(position)] for position in keep]
        merged.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return merged[:k]

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Top-``k`` across all shards; identical to the 1-shard result."""
        self._check_query(k)
        vector = np.asarray(vector)
        if vector.ndim != 1 or vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        floor = self.threshold if threshold is None else threshold
        live = self._live_shards()
        per_shard = self._fan_out(
            [
                (lambda shard=shard: shard.query(
                    vector, k, threshold=floor, exclude=exclude
                ))
                for shard in live
            ]
        )
        return self._merge_topk(per_shard, k)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        excludes: list[object] | None = None,
    ) -> list[list[tuple[object, float]]]:
        """Batched top-``k``: one shard-parallel GEMM block per shard.

        Each shard runs its own one-GEMM ``search_batch`` over the whole
        query block (fanned out on the shared pool), then every query's
        per-shard top-k lists merge exactly as in :meth:`query`.
        """
        self._check_query(k)
        queries = np.asarray(queries)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, queries.shape[-1] if queries.ndim else 0
            )
        n_queries = queries.shape[0]
        if excludes is not None and len(excludes) != n_queries:
            raise ValueError(f"{len(excludes)} excludes for {n_queries} queries")
        if n_queries == 0:
            return []
        floor = self.threshold if threshold is None else threshold
        live = self._live_shards()
        per_shard = self._fan_out(
            [
                (lambda shard=shard: shard.search_batch(
                    queries, k, threshold=floor, excludes=excludes
                ))
                for shard in live
            ]
        )
        return [
            self._merge_topk([shard_block[q] for shard_block in per_shard], k)
            for q in range(n_queries)
        ]
