"""Multi-process shard workers over shared mmap artifacts.

:class:`~repro.index.sharding.ShardedIndex` fans queries out on a thread
pool, but the scoring path is numpy-bound work under one interpreter, so
``shard_speedup`` has sat at ~1.0x in every committed bench run — threads
buy nothing here.  :class:`ProcessShardedIndex` breaks the GIL instead:

* **single writer, many readers.**  The pool *is* a
  :class:`~repro.index.sharding.ShardedIndex` (it subclasses it), so every
  mutation — add, remove, update, bulk load, quantization toggles — lands
  on the in-process writer shards exactly as before, and persistence,
  stats, and ``explain`` see a regular sharded engine.  What changes is
  the read path: ``query`` / ``search_batch`` fan out to one worker
  *process* per shard.
* **shared mmap segments.**  A mutated shard is republished lazily on the
  next read: the writer saves the shard's arena as an uncompressed
  ``.npz`` segment (:meth:`~repro.index.arena.VectorArena.save` with
  ``preserve_layout=True`` — the writer's physical row layout ships
  verbatim, tombstones and alive mask included, because BLAS reduction
  order follows matrix shape and a compacted copy would drift from the
  writer by one ulp after churn) under a generation-suffixed name and
  tells the worker to reload.  The worker rebuilds its backend from the
  segment via :func:`~repro.index.mmapio.load_npz_arrays` —
  :meth:`~repro.index.arena.ColumnarIndex.adopt_rows` over read-only
  ``np.memmap`` views, so vector pages are shared with the page cache and
  never copied per process.  Saved signatures ride along, so LSH band
  keys are bit-identical to the writer's.
* **exact merge.**  Workers return their shard-local top-k over the same
  floor; the pool merges with the inherited single-``argpartition``
  :meth:`~repro.index.sharding.ShardedIndex._merge_topk`, so results are
  bitwise-identical to the in-process engine (pinned by property tests
  across all three backends, including churn).
* **crash containment.**  Every RPC runs under a deadline with liveness
  polling: a worker that dies or stalls mid-request is reaped and the
  request fails with :class:`~repro.errors.WorkerCrashError` — never a
  hang.  The next read respawns the worker from the last published
  segment automatically.

Transports: ``pipe`` (default) pickles the query block over the request
pipe; ``shm`` stages it in a :class:`multiprocessing.shared_memory`
buffer and sends only the descriptor — same results, no query-block
pickling on the hot path.

Linux-oriented: workers are started with the ``fork`` context so the
backend factory (a closure over the engine config) needs no pickling and
spawn cost is one page-table copy.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro._util import RespawnGovernor
from repro.errors import (
    DimensionMismatchError,
    IndexError_,
    RespawnLimitError,
    WorkerCrashError,
)
from repro.index.mmapio import load_npz_arrays
from repro.index.sharding import ShardedIndex

__all__ = ["ProcessShardedIndex"]

_TRANSPORTS = ("pipe", "shm")

#: Seconds between liveness checks while waiting on a worker response.
_POLL_INTERVAL_S = 0.05
#: Grace window to drain a response a worker sent just before exiting.
_DRAIN_WINDOW_S = 0.2


@dataclass
class _ShardWorker:
    """One worker process plus its request pipe and serialization lock."""

    process: multiprocessing.process.BaseProcess
    conn: object
    #: Segment generation the worker last adopted (0 = nothing loaded).
    loaded_generation: int = 0
    #: Held across one send+recv pair so requests never interleave.
    lock: threading.Lock = field(default_factory=threading.Lock)


def _decode_block(payload) -> np.ndarray:
    """Materialize a query block shipped by either transport."""
    if payload[0] == "raw":
        return payload[1]
    _kind, name, shape, dtype = payload
    view = shared_memory.SharedMemory(name=name)
    try:
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=view.buf).copy()
    finally:
        view.close()
        try:
            # Attaching registers the segment with this process's resource
            # tracker (fixed only in 3.13's track=False); the *parent*
            # owns unlinking, so drop the bogus registration or the
            # worker warns about an already-unlinked segment at exit.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(view._name, "shared_memory")
        except Exception:  # noqa: BLE001 — best-effort, private API
            pass


def _worker_main(conn, factory) -> None:
    """Shard worker loop: adopt published segments, serve search RPCs.

    The worker owns one backend instance rebuilt from the factory on
    every ``reload`` — adoption requires an empty index, and a fresh
    backend guarantees no state leaks across republishes.  Errors raised
    while handling a request are reported back as ``("error", text)``;
    only a broken pipe (parent gone) ends the loop.
    """
    backend = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        try:
            if command == "stop":
                conn.send(("ok", None))
                break
            if command == "ping":
                conn.send(("ok", os.getpid()))
                continue
            if command == "reload":
                _path, rerank = message[1], message[2]
                backend = factory()
                payload = load_npz_arrays(Path(_path), allow_pickle=True)
                keys = list(payload["keys"])
                if keys:
                    backend.adopt_rows(
                        keys,
                        payload["matrix"],
                        payload.get("signatures"),
                        alive=payload.get("alive"),
                    )
                if rerank is not None:
                    backend.enable_quantization(rerank)
                backend.build()
                conn.send(("ok", len(keys)))
                continue
            if command == "query":
                block, k, floor, exclude, delay = message[1:]
                if delay:
                    time.sleep(delay)
                vector = _decode_block(block)
                conn.send(
                    ("ok", backend.query(vector, k, threshold=floor, exclude=exclude))
                )
                continue
            if command == "search_batch":
                block, k, floor, excludes, delay = message[1:]
                if delay:
                    time.sleep(delay)
                queries = _decode_block(block)
                conn.send(
                    (
                        "ok",
                        backend.search_batch(
                            queries, k, threshold=floor, excludes=excludes
                        ),
                    )
                )
                continue
            conn.send(("error", f"unknown command {command!r}"))
        except Exception as error:  # noqa: BLE001 — reported to the parent
            try:
                conn.send(("error", f"{type(error).__name__}: {error}"))
            except (BrokenPipeError, OSError):
                break
    conn.close()


def _shutdown_pool(workers: list, segment_dir: Path) -> None:
    """Terminate every live worker and remove the segment directory.

    Module-level (not a method) so ``weakref.finalize`` can run it after
    the pool itself is gone; ``workers`` is the pool's own mutable list,
    so late spawns are still covered.
    """
    for worker in workers:
        if worker is None:
            continue
        try:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
            worker.conn.close()
        except (OSError, ValueError):
            pass
    shutil.rmtree(segment_dir, ignore_errors=True)


class ProcessShardedIndex(ShardedIndex):
    """Sharded index whose read path fans out to worker processes.

    Parameters
    ----------
    dim, factory, n_shards, placement:
        As for :class:`~repro.index.sharding.ShardedIndex`.  The factory
        also runs inside each worker (inherited through ``fork``) to
        rebuild the shard backend around the adopted segment.
    transport:
        ``pipe`` (pickle query blocks over the request pipe) or ``shm``
        (stage them in a shared-memory buffer, ship the descriptor).
    request_timeout_s:
        Deadline for one worker RPC; past it the worker is declared
        crashed, reaped, and :class:`~repro.errors.WorkerCrashError`
        raised.
    """

    def __init__(
        self,
        dim: int,
        factory,
        *,
        n_shards: int,
        placement: str = "hash",
        transport: str = "pipe",
        request_timeout_s: float = 30.0,
    ) -> None:
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {_TRANSPORTS}"
            )
        if request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        super().__init__(dim, factory, n_shards=n_shards, placement=placement)
        self.transport = transport
        self._factory = factory
        self._request_timeout_s = float(request_timeout_s)
        self._ctx = multiprocessing.get_context("fork")
        self._segment_dir = Path(tempfile.mkdtemp(prefix="repro-procpool-"))
        self._workers: list[_ShardWorker | None] = [None] * n_shards
        # Per-shard respawn governor: exponential backoff between worker
        # respawns and a circuit breaker against crash loops (a worker
        # dying instantly on a poisoned segment would otherwise respawn
        # in a hot spin).  Tests swap in governors with injected clocks.
        self._governors = [RespawnGovernor() for _ in range(n_shards)]
        # Shards start dirty: nothing is published until the first read.
        self._dirty = [True] * n_shards
        self._segment_gen = [0] * n_shards
        self._segment_path: list[Path | None] = [None] * n_shards
        self._rerank: int | None = None
        self._closed = False
        # Test hook: workers sleep this long before serving each search
        # RPC, so crash tests can kill one deterministically mid-query.
        self._test_query_delay_s = 0.0
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._workers, self._segment_dir
        )

    def __repr__(self) -> str:
        sizes = ",".join(str(len(shard)) for shard in self.shards)
        live = sum(
            1
            for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )
        return (
            f"ProcessShardedIndex(n={len(self)}, shards={self.n_shards}[{sizes}], "
            f"workers={live}/{self.n_shards}, transport={self.transport!r})"
        )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Terminate every worker and delete the published segments."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ProcessShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pids(self) -> list[int | None]:
        """Per-shard worker pid (``None`` when not currently spawned)."""
        return [
            worker.process.pid
            if worker is not None and worker.process.is_alive()
            else None
            for worker in self._workers
        ]

    # -- mutation (writer-side; marks shards for republish) -----------------------

    def add(self, key: object, vector: np.ndarray) -> None:
        super().add(key, vector)
        self._dirty[self._owner[key]] = True

    def bulk_load(
        self,
        keys: list[object],
        matrix: np.ndarray,
        *,
        signatures: np.ndarray | None = None,
    ) -> None:
        super().bulk_load(keys, matrix, signatures=signatures)
        for shard_id in {self._owner[key] for key in keys}:
            self._dirty[shard_id] = True

    def remove(self, key: object) -> None:
        shard_id = self._owner.get(key)
        super().remove(key)
        if shard_id is not None:
            self._dirty[shard_id] = True

    def update(self, key: object, vector: np.ndarray) -> None:
        super().update(key, vector)
        self._dirty[self._owner[key]] = True

    def enable_quantization(self, rerank_factor: int = 4, **kwargs) -> None:
        super().enable_quantization(rerank_factor, **kwargs)
        self._rerank = rerank_factor
        self._dirty = [True] * self.n_shards

    def disable_quantization(self) -> None:
        super().disable_quantization()
        self._rerank = None
        self._dirty = [True] * self.n_shards

    def set_rerank_factor(self, rerank_factor: int) -> None:
        """No-op: worker processes own their quantizers.

        Workers adopt the spawn-time re-rank factor with each published
        segment; retuning live would force a full segment republish per
        shard — exactly the wrong work under overload, which is when
        degraded-mode serving calls this.  Worker-backed engines keep
        their configured factor instead.
        """

    # -- segment publish + worker supervision -------------------------------------

    def _spawn(self, shard_id: int) -> _ShardWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._factory),
            daemon=True,
            name=f"procshard-{shard_id}",
        )
        process.start()
        child_conn.close()
        worker = _ShardWorker(process=process, conn=parent_conn)
        self._workers[shard_id] = worker
        return worker

    def _reap(self, shard_id: int, worker: _ShardWorker) -> None:
        """Kill and forget a misbehaving worker (respawned on next read)."""
        try:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=1.0)
            worker.conn.close()
        except (OSError, ValueError):
            pass
        if self._workers[shard_id] is worker:
            self._workers[shard_id] = None
        self._governors[shard_id].record_failure()

    def _publish(self, shard_id: int) -> None:
        """Write the shard's arena as a fresh mmap segment, layout intact.

        ``preserve_layout=True`` ships the writer's physical row layout —
        tombstones included (bounded ≤~25% by arena compaction) — because
        BLAS picks its reduction order from the matrix shape: a worker
        scoring a *compacted* copy of a churned shard would drift from
        the writer by one ulp.  Identical layout ⇒ identical arithmetic
        ⇒ the bitwise-parity contract survives add/remove churn.
        """
        generation = self._segment_gen[shard_id] + 1
        path = self._segment_dir / f"shard{shard_id}-g{generation}.npz"
        self.shards[shard_id].arena.save(path, preserve_layout=True)
        self._segment_gen[shard_id] = generation
        self._dirty[shard_id] = False

    def _ensure_current(self, shard_id: int) -> None:
        """Make the shard's worker live and loaded with the newest segment.

        Republish is lazy (write amplification only when a mutated shard
        is actually read) and the old segment file is unlinked only after
        the worker adopted the new one — an unlinked-but-mapped file stays
        readable, so a worker mid-query on the old generation is safe.
        """
        if self._closed:
            raise IndexError_("ProcessShardedIndex is closed")
        if self._dirty[shard_id]:
            self._publish(shard_id)
        worker = self._workers[shard_id]
        if worker is not None and not worker.process.is_alive():
            # Died silently since the last RPC (no reap happened yet).
            self._reap(shard_id, worker)
            worker = None
        if worker is None:
            governor = self._governors[shard_id]
            if not governor.allow():
                raise RespawnLimitError(
                    f"shard worker {shard_id}",
                    governor.recent_failures,
                    governor.window_s,
                )
            delay = governor.next_delay_s()
            if delay > 0.0:
                time.sleep(delay)
            worker = self._spawn(shard_id)
        if worker.loaded_generation != self._segment_gen[shard_id]:
            generation = self._segment_gen[shard_id]
            path = self._segment_dir / f"shard{shard_id}-g{generation}.npz"
            previous = self._segment_path[shard_id]
            self._rpc(shard_id, worker, ("reload", str(path), self._rerank))
            worker.loaded_generation = generation
            self._segment_path[shard_id] = path
            if previous is not None and previous != path:
                previous.unlink(missing_ok=True)

    # -- transport ----------------------------------------------------------------

    def _encode_block(self, block: np.ndarray):
        """Stage one query array for shipping; returns (payload, shm|None)."""
        if self.transport == "shm":
            block = np.ascontiguousarray(block)
            staged = shared_memory.SharedMemory(
                create=True, size=max(1, block.nbytes)
            )
            view = np.ndarray(block.shape, dtype=block.dtype, buffer=staged.buf)
            view[:] = block
            return ("shm", staged.name, block.shape, block.dtype.str), staged
        return ("raw", block), None

    def _rpc(self, shard_id: int, worker: _ShardWorker, message: tuple):
        """One send+recv round with crash containment.

        The per-worker lock keeps concurrent requests from interleaving
        on one pipe; the wait loop polls worker liveness so a killed
        process surfaces in ~``_POLL_INTERVAL_S``, not at the deadline.
        """
        with worker.lock:
            try:
                worker.conn.send(message)
                deadline = time.monotonic() + self._request_timeout_s
                while True:
                    if worker.conn.poll(_POLL_INTERVAL_S):
                        status, payload = worker.conn.recv()
                        break
                    if not worker.process.is_alive():
                        # Drain a response sent in the worker's last breath.
                        if worker.conn.poll(_DRAIN_WINDOW_S):
                            status, payload = worker.conn.recv()
                            break
                        raise EOFError("worker process died")
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"no response within {self._request_timeout_s}s"
                        )
            except (
                EOFError,
                BrokenPipeError,
                ConnectionResetError,
                TimeoutError,
                OSError,
            ) as error:
                self._reap(shard_id, worker)
                raise WorkerCrashError(
                    shard_id, str(error) or type(error).__name__
                ) from error
        if status == "error":
            raise IndexError_(f"shard worker {shard_id} failed: {payload}")
        # A served request proves the worker healthy: close the breaker
        # window so isolated crashes spread over time never accumulate.
        self._governors[shard_id].record_success()
        return payload

    def _search_rpc(self, shard_id: int, command: str, block: np.ndarray, args: tuple):
        worker = self._workers[shard_id]
        payload, staged = self._encode_block(block)
        try:
            return self._rpc(
                shard_id,
                worker,
                (command, payload, *args, self._test_query_delay_s),
            )
        finally:
            if staged is not None:
                staged.close()
                staged.unlink()

    # -- search -------------------------------------------------------------------

    def _live_shard_ids(self) -> list[int]:
        return [
            shard_id
            for shard_id, shard in enumerate(self.shards)
            if len(shard) > 0
        ]

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Top-``k`` across all shard workers; identical to the in-process result."""
        self._check_query(k)
        vector = np.asarray(vector)
        if vector.ndim != 1 or vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        floor = self.threshold if threshold is None else threshold
        live = self._live_shard_ids()
        for shard_id in live:
            self._ensure_current(shard_id)
        per_shard = self._fan_out(
            [
                (
                    lambda shard_id=shard_id: self._search_rpc(
                        shard_id, "query", vector, (k, floor, exclude)
                    )
                )
                for shard_id in live
            ]
        )
        return self._merge_topk(per_shard, k)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        excludes: list[object] | None = None,
    ) -> list[list[tuple[object, float]]]:
        """Batched top-``k``: one worker-process GEMM block per shard."""
        self._check_query(k)
        queries = np.asarray(queries)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, queries.shape[-1] if queries.ndim else 0
            )
        n_queries = queries.shape[0]
        if excludes is not None and len(excludes) != n_queries:
            raise ValueError(f"{len(excludes)} excludes for {n_queries} queries")
        if n_queries == 0:
            return []
        floor = self.threshold if threshold is None else threshold
        live = self._live_shard_ids()
        for shard_id in live:
            self._ensure_current(shard_id)
        per_shard = self._fan_out(
            [
                (
                    lambda shard_id=shard_id: self._search_rpc(
                        shard_id, "search_batch", queries, (k, floor, excludes)
                    )
                )
                for shard_id in live
            ]
        )
        return [
            self._merge_topk([shard_block[q] for shard_block in per_shard], k)
            for q in range(n_queries)
        ]
