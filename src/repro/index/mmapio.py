"""Zero-copy reads of uncompressed ``.npz`` members via ``np.memmap``.

``np.load(..., mmap_mode="r")`` memory-maps bare ``.npy`` files but not
``.npz`` archives — zip members go through the ``zipfile`` stream reader,
which materializes every array in RAM (and, for ``savez_compressed``,
decompresses it first).  For a multi-GB index artifact that turns a cold
service start into seconds of copying.

An *uncompressed* zip, however, stores each member's bytes verbatim and
contiguously, so a stored ``.npy`` member is a perfectly valid npy file
sitting at a fixed offset inside the archive.  :func:`load_npz_arrays`
exploits that: it walks the zip directory, parses each stored member's
local header and npy header, and hands back ``np.memmap`` views directly
into the archive — the OS pages vector data in lazily as queries touch
it, and opening a multi-GB artifact costs milliseconds.

Members that cannot be mapped — deflated (compressed) members, object
(pickled) arrays, non-``.npy`` entries — fall back to a regular in-memory
read, so the loader works uniformly across artifact generations.
"""

from __future__ import annotations

import io
import struct
import zipfile
from pathlib import Path

import numpy as np

__all__ = ["load_npz_arrays"]

# Fixed-size prefix of a zip local file header (PK\x03\x04 ... extra_len).
_LOCAL_HEADER_SIZE = 30


def _member_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """Absolute offset of a stored member's payload inside the archive.

    The central directory's name/extra fields may differ from the local
    header's (zip writers pad the local extra field), so the local header
    must be parsed to find where the payload actually starts.
    """
    raw.seek(info.header_offset)
    header = raw.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != b"PK\x03\x04":
        raise ValueError(f"corrupt local header for member {info.filename!r}")
    name_len, extra_len = struct.unpack_from("<HH", header, 26)
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _mmap_member(path: Path, raw, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Memory-map one stored ``.npy`` member; ``None`` when not mappable."""
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    data_offset = _member_data_offset(raw, info)
    raw.seek(data_offset)
    try:
        version = np.lib.format.read_magic(raw)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
        else:
            return None
    except ValueError:
        return None
    if dtype.hasobject:
        return None  # pickled payload; must go through the regular reader
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=raw.tell(),
        shape=shape,
        order="F" if fortran else "C",
    )


def load_npz_arrays(
    path: str | Path, *, allow_pickle: bool = False
) -> dict[str, np.ndarray]:
    """Load every array of a ``.npz``, memory-mapping what can be mapped.

    Returns ``{member_name_without_suffix: array}``.  Stored numeric
    members come back as read-only ``np.memmap`` views into the archive
    (zero copy, lazy paging); anything else (deflated members, object
    arrays) is read into memory the normal way.  The archive file remains
    open for the lifetime of the returned memmaps (the OS handles paging
    and close-on-drop).
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        with open(path, "rb") as raw:
            for info in archive.infolist():
                if not info.filename.endswith(".npy"):
                    continue
                name = info.filename[: -len(".npy")]
                mapped = _mmap_member(path, raw, info)
                if mapped is not None:
                    arrays[name] = mapped
                    continue
                payload = io.BytesIO(archive.read(info.filename))
                arrays[name] = np.load(payload, allow_pickle=allow_pickle)
    return arrays
