"""Similarity-index substrate.

WarpGate's search step (§3.1.2) hashes column embeddings into a SimHash
(random hyperplane) LSH index approximating cosine similarity.  This package
provides that index plus the alternatives the paper discusses, all built on
one columnar substrate:

* :class:`VectorArena` / :class:`ColumnarIndex` — the shared columnar
  store: contiguous ``float32`` vector matrix, packed ``uint64`` SimHash
  band keys, tombstone deletion with threshold-triggered compaction, and
  the batched (one-GEMM) ``search_batch`` ranking path;
* :class:`SimHashLSHIndex` — the production index (banded SimHash, exact
  cosine re-ranking of candidates);
* :class:`ExactCosineIndex` — brute-force verification arm;
* :class:`PivotFilterIndex` — §5.2.3's block-and-verify direction
  (pivot-based metric filtering, after PEXESO);
* :class:`MinHashIndex` / :class:`MinHashSignature` — Jaccard machinery
  used by the Aurum and D3L baselines;
* :class:`ShardedIndex` — partitioned engine: per-shard arenas queried in
  parallel on a shared thread pool, exact top-k merge;
* :class:`ProcessShardedIndex` — the same partitioned engine with the
  read path fanned out to worker *processes* over shared mmap segments
  (GIL-free scoring, single in-process writer);
* :class:`ArenaQuantizer` — int8 per-dimension quantization with a fused
  int32 candidate scorer and exact float32 re-rank;
* :func:`load_npz_arrays` — zero-copy ``np.memmap`` reads of uncompressed
  ``.npz`` artifact members (format 3 cold loads).
"""

from repro.index.arena import ColumnarIndex, VectorArena
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.minhash import MinHashIndex, MinHashSignature
from repro.index.mmapio import load_npz_arrays
from repro.index.pivot import PivotFilterIndex
from repro.index.procpool import ProcessShardedIndex
from repro.index.quant import ArenaQuantizer
from repro.index.sharding import ShardedIndex
from repro.index.simhash import (
    SimHashFamily,
    hamming_distance,
    pack_band_keys,
    signature_cosine,
)

__all__ = [
    "ArenaQuantizer",
    "ColumnarIndex",
    "ExactCosineIndex",
    "MinHashIndex",
    "MinHashSignature",
    "PivotFilterIndex",
    "ProcessShardedIndex",
    "ShardedIndex",
    "SimHashFamily",
    "SimHashLSHIndex",
    "VectorArena",
    "hamming_distance",
    "load_npz_arrays",
    "pack_band_keys",
    "signature_cosine",
]
