"""MinHash signatures and Jaccard LSH.

The syntactic machinery of the baselines: Aurum profiles columns with
MinHash and links profiles whose estimated Jaccard clears a threshold; D3L's
value-extent evidence is a MinHash LSH lookup.  Signatures use the standard
universal-hashing construction ``h_i(x) = (a_i * h(x) + b_i) mod p`` over a
stable 64-bit base hash, so estimates are unbiased and fully deterministic.

(Set-based, not vector-based: this machinery intentionally does *not* sit
on the cosine backends' columnar :class:`~repro.index.arena.VectorArena`.)
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro._util import rng_for, stable_uint64
from repro.errors import EmptyIndexError

__all__ = ["MinHashSignature", "MinHashIndex"]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 61) - 2


class _PermutationFamily:
    """Shared (a, b) parameter draws for a given signature size."""

    _cache: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def parameters(cls, n_perm: int, seed_key: str) -> tuple[np.ndarray, np.ndarray]:
        key = (n_perm, seed_key)
        if key not in cls._cache:
            rng = rng_for("minhash-permutations", seed_key, n_perm)
            a = rng.integers(1, _MERSENNE_PRIME, size=n_perm, dtype=np.uint64)
            b = rng.integers(0, _MERSENNE_PRIME, size=n_perm, dtype=np.uint64)
            cls._cache[key] = (a, b)
        return cls._cache[key]


class MinHashSignature:
    """MinHash sketch of a set of string values."""

    __slots__ = ("n_perm", "seed_key", "values")

    def __init__(
        self,
        n_perm: int = 128,
        *,
        seed_key: str = "minhash-v1",
        values: np.ndarray | None = None,
    ) -> None:
        if n_perm <= 0:
            raise ValueError(f"n_perm must be positive, got {n_perm}")
        self.n_perm = n_perm
        self.seed_key = seed_key
        self.values = (
            values
            if values is not None
            else np.full(n_perm, _MAX_HASH, dtype=np.uint64)
        )

    @classmethod
    def of(
        cls,
        items: Iterable[object],
        n_perm: int = 128,
        *,
        seed_key: str = "minhash-v1",
    ) -> "MinHashSignature":
        """Sketch the distinct string forms of ``items``."""
        signature = cls(n_perm, seed_key=seed_key)
        signature.update(items)
        return signature

    def update(self, items: Iterable[object]) -> None:
        """Fold more items into the sketch (duplicates are harmless)."""
        a, b = _PermutationFamily.parameters(self.n_perm, self.seed_key)
        base_hashes = np.array(
            [
                stable_uint64(str(item)) % _MERSENNE_PRIME
                for item in items
                if item is not None
            ],
            dtype=np.uint64,
        )
        if base_hashes.size == 0:
            return
        # (n_items, n_perm) permuted hashes, reduced by min per permutation.
        permuted = (
            base_hashes[:, None] * a[None, :] + b[None, :]
        ) % _MERSENNE_PRIME
        self.values = np.minimum(self.values, permuted.min(axis=0))

    @property
    def is_empty(self) -> bool:
        """True when nothing has been folded in."""
        return bool(np.all(self.values == _MAX_HASH))

    def jaccard_estimate(self, other: "MinHashSignature") -> float:
        """Unbiased Jaccard estimate: fraction of matching slots."""
        if self.n_perm != other.n_perm or self.seed_key != other.seed_key:
            raise ValueError("signatures are from different permutation families")
        if self.is_empty and other.is_empty:
            return 1.0
        return float(np.mean(self.values == other.values))

    def containment_estimate(
        self, other: "MinHashSignature", self_size: int, other_size: int
    ) -> float:
        """Estimated containment ``C = |self ∩ other| / |self|``.

        MinHash sketches estimate Jaccard directly; containment follows
        from it once the true distinct counts are known:
        ``|A ∩ B| = J / (1 + J) · (|A| + |B|)``.  The estimate is clipped
        to ``[0, 1]`` (the Jaccard estimator's variance can push the raw
        ratio past 1 on near-identical sets).  ``self_size`` /
        ``other_size`` are the *distinct* value counts of the sketched
        sets; a non-positive ``self_size`` yields 0.0 (an empty query
        column is contained in nothing).
        """
        if self_size <= 0 or other_size <= 0:
            return 0.0
        jaccard = self.jaccard_estimate(other)
        if jaccard <= 0.0:
            return 0.0
        intersection = jaccard / (1.0 + jaccard) * (self_size + other_size)
        return min(1.0, intersection / self_size)

    def band_keys(self, n_bands: int) -> list[bytes]:
        """Split the signature into hashable band keys."""
        if self.n_perm % n_bands != 0:
            raise ValueError(
                f"n_perm ({self.n_perm}) must be divisible by n_bands ({n_bands})"
            )
        rows = self.n_perm // n_bands
        return [
            self.values[band * rows : (band + 1) * rows].tobytes()
            for band in range(n_bands)
        ]


class MinHashIndex:
    """Banded LSH index over MinHash signatures (Jaccard similarity)."""

    def __init__(
        self,
        *,
        n_perm: int = 128,
        n_bands: int = 32,
        threshold: float = 0.7,
        seed_key: str = "minhash-v1",
    ) -> None:
        if n_perm % n_bands != 0:
            raise ValueError(
                f"n_perm ({n_perm}) must be divisible by n_bands ({n_bands})"
            )
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.n_perm = n_perm
        self.n_bands = n_bands
        self.threshold = threshold
        self.seed_key = seed_key
        self._signatures: dict[object, MinHashSignature] = {}
        self._buckets: list[dict[bytes, list[object]]] = [
            {} for _ in range(n_bands)
        ]

    def __len__(self) -> int:
        return len(self._signatures)

    def __repr__(self) -> str:
        return (
            f"MinHashIndex(n={len(self)}, n_perm={self.n_perm}, "
            f"bands={self.n_bands}, threshold={self.threshold})"
        )

    def add(self, key: object, signature: MinHashSignature) -> None:
        """Insert a sketched set under ``key``."""
        if signature.n_perm != self.n_perm or signature.seed_key != self.seed_key:
            raise ValueError("signature does not match this index's family")
        self._signatures[key] = signature
        for band, band_key in enumerate(signature.band_keys(self.n_bands)):
            self._buckets[band].setdefault(band_key, []).append(key)

    def signature_of(self, key: object) -> MinHashSignature:
        """Stored signature for ``key``."""
        return self._signatures[key]

    def query(
        self,
        signature: MinHashSignature,
        k: int | None = None,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Keys whose estimated Jaccard clears the threshold, ranked.

        ``k=None`` returns all matches (Aurum-style edge enumeration).
        """
        if not self._signatures:
            raise EmptyIndexError("query on empty MinHashIndex")
        floor = self.threshold if threshold is None else threshold
        seen: set[object] = set()
        for band, band_key in enumerate(signature.band_keys(self.n_bands)):
            seen.update(self._buckets[band].get(band_key, ()))
        scored = []
        for key in seen:
            if exclude is not None and key == exclude:
                continue
            estimate = signature.jaccard_estimate(self._signatures[key])
            if estimate >= floor:
                scored.append((key, estimate))
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored if k is None else scored[:k]

    def expected_candidate_rate(self, jaccard: float) -> float:
        """Banding S-curve ``1 - (1 - s^r)^b`` for a true Jaccard ``s``."""
        rows = self.n_perm // self.n_bands
        return 1.0 - (1.0 - jaccard**rows) ** self.n_bands
