"""Symmetric per-dimension int8 quantization of arena vectors.

The float32 arena is exact but memory-hungry: at warehouse scale the
embedding matrix is the dominant resident structure, and every batched
search streams all of it through the CPU.  Compact codes are the standard
answer (product/scalar quantization in embedding indexes, compact sketches
in LSH Ensemble): score *candidates* on a 4x-smaller int8 view, then
re-rank only the few survivors exactly.

:class:`ArenaQuantizer` implements the scalar flavour:

* **per-dimension symmetric scales** — ``scale[d] = max|matrix[:, d]| / 127``,
  so each dimension uses the full int8 range regardless of how anisotropic
  the embedding distribution is (column embeddings concentrate on a
  low-dimensional manifold; a single tensor-wide scale would waste most
  of the range on the few high-variance dimensions);
* **a fused int32 dot-product scorer** — per-dimension scales do not factor
  out of an integer dot product, so the query is *folded*: the database
  scales are multiplied into the query before it is quantized with one
  scalar scale, making ``int_dot ≈ cosine / query_scale`` a plain integer
  dot.  The int32 accumulation runs as a float32 GEMM over the codes
  (every product and partial sum stays below 2^24 for dim ≤ 1024, so the
  float32 arithmetic is *exactly* the integer arithmetic, at BLAS speed,
  chunked so the transient float32 view of the codes stays bounded);
* **exact re-rank** — callers keep only the top ``rerank_factor * k``
  survivors by approximate score and re-score them against the float32
  arena, so the final ranking, scores, and threshold semantics are exact
  over the surviving set.  ``rerank_factor`` is the recall knob: the
  measured recall@10 versus full-float32 search is ≥ 0.98 at the default
  (see ``BENCH_index.json``'s ``quant`` stage).

The quantizer tracks the arena incrementally: appended rows are encoded
with the frozen scales (clipped into range), and a compaction (arena
``generation`` bump) triggers a full re-quantization — the same lazy
resynchronization discipline the LSH buckets and pivot tables use.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArenaQuantizer", "quantize_rows"]

#: dim above which the float32-GEMM int accumulation could overflow the
#: 24-bit exact-integer range of float32 (127 * 127 * dim < 2**24).
_EXACT_GEMM_MAX_DIM = 1024


def quantize_rows(matrix: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Encode float rows into int8 codes under per-dimension ``scales``.

    Values beyond the scale range (possible for rows appended after the
    scales were frozen) saturate at ±127 instead of wrapping.
    """
    safe = np.where(scales > 0.0, scales, 1.0)
    return np.clip(np.rint(matrix / safe), -127, 127).astype(np.int8)


class ArenaQuantizer:
    """Int8 code mirror of a :class:`~repro.index.arena.VectorArena`.

    Parameters
    ----------
    rerank_factor:
        Survivors kept per query for exact re-ranking, as a multiple of
        ``k``.  Higher = better recall, more float32 work.
    floor_slack:
        How far below the cosine floor the *approximate* scores may fall
        while still surfacing as candidates in the batched path; absorbs
        quantization error so above-floor pairs are not lost before the
        exact re-rank (which applies the true floor).
    chunk_rows:
        Arena rows promoted to float32 per scoring chunk; bounds the
        transient memory of the fused scorer to ``chunk_rows * dim * 4``
        bytes.
    """

    def __init__(
        self,
        rerank_factor: int = 4,
        *,
        floor_slack: float = 0.05,
        chunk_rows: int = 16384,
    ) -> None:
        if rerank_factor < 1:
            raise ValueError(f"rerank_factor must be >= 1, got {rerank_factor}")
        if floor_slack < 0.0:
            raise ValueError(f"floor_slack must be >= 0, got {floor_slack}")
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self.rerank_factor = rerank_factor
        self.floor_slack = floor_slack
        self.chunk_rows = chunk_rows
        self._codes: np.ndarray | None = None  # (capacity, dim) int8
        self._scales: np.ndarray | None = None  # (dim,) float32
        self._size = 0
        self._synced_generation = -1
        self.rebuilds = 0

    def __repr__(self) -> str:
        return (
            f"ArenaQuantizer(rows={self._size}, "
            f"rerank_factor={self.rerank_factor}, rebuilds={self.rebuilds})"
        )

    # -- synchronization ----------------------------------------------------------

    def sync(self, arena) -> None:
        """Bring the code mirror up to date with ``arena``.

        Appends since the last sync are encoded incrementally with the
        frozen scales; a compaction (``generation`` change) or shrink
        re-quantizes from scratch so the scales track the live data.

        A current mirror makes this a pure no-op, which is what makes
        the serving layer's concurrency discipline work: mutations call
        the owning index's ``build()`` under the write lock (which syncs
        here), so the shared-lock search path only ever *reads* the
        mirror.  Like the rest of the index layer, concurrent mutation
        without that discipline is not thread-safe.
        """
        if (
            self._codes is not None
            and self._synced_generation == arena.generation
            and arena.size == self._size
        ):
            return
        if (
            self._codes is None
            or self._synced_generation != arena.generation
            or arena.size < self._size
        ):
            self._rebuild(arena)
            return
        fresh = arena.matrix[self._size : arena.size]
        self._append(quantize_rows(fresh, self._scales))
        self._size = arena.size

    def _rebuild(self, arena) -> None:
        matrix = arena.matrix  # occupied region, float32
        dim = arena.dim
        if matrix.shape[0] == 0:
            scales = np.ones(dim, dtype=np.float32)
        else:
            scales = (
                np.abs(matrix).max(axis=0).astype(np.float32) / 127.0
            )
            scales[scales == 0.0] = 1.0
        self._scales = scales
        codes = quantize_rows(matrix, scales)
        capacity = max(64, int(matrix.shape[0]))
        self._codes = np.zeros((capacity, dim), dtype=np.int8)
        self._codes[: codes.shape[0]] = codes
        self._size = matrix.shape[0]
        self._synced_generation = arena.generation
        self.rebuilds += 1

    def _append(self, codes: np.ndarray) -> None:
        assert self._codes is not None
        needed = self._size + codes.shape[0]
        capacity = self._codes.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.zeros((capacity, self._codes.shape[1]), dtype=np.int8)
            grown[: self._size] = self._codes[: self._size]
            self._codes = grown
        self._codes[self._size : needed] = codes

    # -- query-side quantization --------------------------------------------------

    def _fold_queries(self, units: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fold db scales into a query block; returns (codes_f32, dequant).

        ``codes_f32`` holds exact integers in float32 (ready for the fused
        GEMM); ``dequant[i] * int_dot ≈ cosine`` recovers the score scale.
        """
        assert self._scales is not None
        folded = units.astype(np.float32, copy=False) * self._scales[None, :]
        query_scales = np.abs(folded).max(axis=1) / 127.0
        safe = np.where(query_scales > 0.0, query_scales, 1.0)
        codes = np.rint(folded / safe[:, None])
        return codes, safe

    # -- scoring ------------------------------------------------------------------

    def score_block(self, arena, units: np.ndarray) -> np.ndarray:
        """Approximate cosine of every query against every occupied row.

        The fused scorer: one float32 GEMM per code chunk, with exact int32
        semantics (all intermediate values < 2^24 for dim ≤ 1024), then one
        dequantization multiply.  Shape ``(n_queries, arena.size)``.
        """
        self.sync(arena)
        n_queries = units.shape[0]
        size = self._size
        scores = np.empty((n_queries, size), dtype=np.float32)
        if size == 0 or n_queries == 0:
            return scores
        query_codes, dequant = self._fold_queries(units)
        for start in range(0, size, self.chunk_rows):
            stop = min(start + self.chunk_rows, size)
            block = self._codes[start:stop].astype(np.float32)
            scores[:, start:stop] = query_codes @ block.T
        scores *= dequant[:, None]
        return scores

    def preselect(
        self, arena, unit: np.ndarray, rows: np.ndarray, limit: int
    ) -> np.ndarray:
        """Top-``limit`` of ``rows`` by approximate int8 score (one query).

        Row order of the result is ascending (deterministic gathers); the
        caller re-ranks the survivors exactly, so only membership matters.
        """
        if rows.size <= limit:
            return rows
        self.sync(arena)
        query_codes, _dequant = self._fold_queries(unit[None, :])
        gathered = self._codes[rows].astype(np.float32)
        approx = gathered @ query_codes[0]
        top = np.argpartition(-approx, limit - 1)[:limit]
        return np.sort(rows[top])

    # -- introspection ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Rows currently mirrored as int8 codes."""
        return self._size

    def stats(self) -> dict[str, object]:
        """Memory accounting of the code mirror vs the float32 arena."""
        dim = 0 if self._codes is None else int(self._codes.shape[1])
        return {
            "rows": self._size,
            "dim": dim,
            "bytes_int8": self._size * dim,
            "bytes_float32": self._size * dim * 4,
            "rerank_factor": self.rerank_factor,
            "floor_slack": self.floor_slack,
            "rebuilds": self.rebuilds,
        }
