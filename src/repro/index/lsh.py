"""Banded SimHash LSH index with exact-cosine re-ranking, arena-backed.

The index stores every vector's SimHash signature as ``n_bands`` packed
``uint64`` band keys in the shared columnar
:class:`~repro.index.arena.VectorArena` (one contiguous ``float32`` vector
matrix plus one contiguous ``uint64`` signature matrix — no per-vector
Python objects).  Vectors sharing any full band key with the query become
candidates; candidates are then re-ranked by exact cosine on the stored
vectors — a single gathered matrix product, or one GEMM for a whole query
block via :meth:`search_batch` — and filtered by the similarity threshold
(the paper sets 0.7), so the LSH layer only buys *speed*, never changes
the ranking measure.

Deletion tombstones the arena row in O(1); bucket postings keep pointing
at dead rows until the arena's threshold-triggered compaction, after which
the buckets are rebuilt wholesale from the packed signature matrix (the
arena ``generation`` counter flags this).  Dead postings are filtered by
the alive mask during candidate generation, so searches stay correct
between compactions.
"""

from __future__ import annotations

import numpy as np

from repro.index.arena import ColumnarIndex
from repro.index.simhash import SimHashFamily, pack_band_keys

__all__ = ["SimHashLSHIndex"]


class _BucketState:
    """Band buckets for one arena generation.

    ``postings``: per band, a dict mapping the packed band key to the list
    of arena rows carrying it.  ``frozen``: per band, a lazily-populated
    cache of those posting lists as ``int64`` arrays — queries hit the same
    hot buckets repeatedly, and freezing once amortizes the list→array
    conversion across every later probe.  The whole state is swapped
    atomically (single attribute assignment) when a compaction forces a
    rebuild, so concurrent readers always see a coherent pair.
    """

    __slots__ = ("generation", "postings", "frozen")

    def __init__(self, generation: int, n_bands: int) -> None:
        self.generation = generation
        self.postings: list[dict[int, list[int]]] = [{} for _ in range(n_bands)]
        self.frozen: list[dict[int, np.ndarray]] = [{} for _ in range(n_bands)]

    def insert(self, band_keys: list[int], row: int) -> None:
        for band, band_key in enumerate(band_keys):
            self.postings[band].setdefault(band_key, []).append(row)
            self.frozen[band].pop(band_key, None)

    def bucket_array(self, band: int, band_key: int) -> np.ndarray | None:
        """Posting list of one bucket as a cached ``int64`` array."""
        cached = self.frozen[band].get(band_key)
        if cached is not None:
            return cached
        postings = self.postings[band].get(band_key)
        if postings is None:
            return None
        array = np.asarray(postings, dtype=np.int64)
        self.frozen[band][band_key] = array
        return array


class SimHashLSHIndex(ColumnarIndex):
    """Approximate cosine top-k search over named vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_bits:
        Total signature bits (``n_bands * rows_per_band`` must equal it).
    n_bands / rows_per_band:
        Banding layout: more rows per band → stricter candidate generation;
        more bands → higher recall.  ``rows_per_band`` may not exceed 64 (a
        band key must pack into one ``uint64``).
    threshold:
        Cosine floor applied after exact re-ranking (paper: 0.7).
    """

    def __init__(
        self,
        dim: int,
        *,
        n_bits: int = 128,
        n_bands: int = 16,
        threshold: float = 0.7,
        seed_key: str = "warpgate-lsh",
    ) -> None:
        if n_bits % n_bands != 0:
            raise ValueError(
                f"n_bits ({n_bits}) must be divisible by n_bands ({n_bands})"
            )
        if n_bits // n_bands > 64:
            raise ValueError(
                f"rows_per_band ({n_bits // n_bands}) exceeds 64; a band key "
                "must pack into one uint64"
            )
        if not -1.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [-1, 1], got {threshold}")
        super().__init__(dim, signature_words=n_bands)
        self.n_bits = n_bits
        self.n_bands = n_bands
        self.rows_per_band = n_bits // n_bands
        self.threshold = threshold
        self._family = SimHashFamily(dim, n_bits, seed_key=seed_key)
        self._buckets = _BucketState(self._arena.generation, n_bands)
        self._last_candidate_count = 0

    def __repr__(self) -> str:
        return (
            f"SimHashLSHIndex(n={len(self)}, dim={self.dim}, "
            f"bands={self.n_bands}x{self.rows_per_band}, "
            f"threshold={self.threshold})"
        )

    # -- signatures ---------------------------------------------------------------

    def _signature_for(self, unit: np.ndarray) -> np.ndarray:
        return pack_band_keys(self._family.signature(unit), self.n_bands)

    def _signatures_for(self, units: np.ndarray) -> np.ndarray:
        return pack_band_keys(self._family.signatures(units), self.n_bands)

    # -- bucket maintenance -------------------------------------------------------

    def _synced_buckets(self) -> _BucketState:
        """Current bucket state, rebuilt if a compaction renumbered rows."""
        state = self._buckets
        if state.generation != self._arena.generation:
            state = self._rebuild_buckets()
        return state

    def _rebuild_buckets(self) -> _BucketState:
        """Regroup live rows by band key from the packed signature matrix.

        One argsort per band over the live rows — O(bands · n log n) — then
        contiguous runs become posting arrays directly, so the rebuild
        never touches per-row Python objects.
        """
        arena = self._arena
        state = _BucketState(arena.generation, self.n_bands)
        live = arena.live_rows()
        if live.size:
            signatures = arena.signatures[live]
            for band in range(self.n_bands):
                keys_column = signatures[:, band]
                order = np.argsort(keys_column, kind="stable")
                sorted_keys = keys_column[order]
                sorted_rows = live[order]
                run_starts = np.flatnonzero(
                    np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
                )
                run_bounds = np.append(run_starts, live.size)
                postings = state.postings[band]
                frozen = state.frozen[band]
                for run in range(run_starts.size):
                    start, stop = int(run_bounds[run]), int(run_bounds[run + 1])
                    band_key = int(sorted_keys[start])
                    rows = sorted_rows[start:stop]
                    postings[band_key] = rows.tolist()
                    frozen[band_key] = rows
        self._buckets = state
        return state

    def _after_add(self, row: int) -> None:
        state = self._buckets
        if state.generation != self._arena.generation:
            # A compaction invalidated the buckets; the rebuild reads the
            # arena, which already holds the new row — inserting it again
            # would duplicate its postings.
            self._rebuild_buckets()
            return
        state.insert(self._arena.signatures[row].tolist(), row)

    def _after_bulk(self, rows: np.ndarray) -> None:
        # A bulk append regroups wholesale from the packed signature
        # matrix (one argsort per band) instead of running the per-row
        # insert path len(rows) times.
        self._rebuild_buckets()

    def build(self) -> None:
        """Eagerly resynchronize buckets after mutations (idempotent).

        Queries resynchronize lazily; the serving layer calls this under
        its write lock so the concurrent read path never rebuilds state.
        """
        super().build()
        self._synced_buckets()

    # -- search -------------------------------------------------------------------

    def _candidate_rows(
        self, state: _BucketState, band_keys: list[int]
    ) -> np.ndarray:
        """Live rows sharing at least one band key with the query.

        Bucket posting arrays are concatenated and deduplicated through a
        flag vector (one vectorized pass over the occupied region), then
        intersected with the alive mask so tombstoned rows never surface.
        """
        arena = self._arena
        hits = [
            array
            for band, band_key in enumerate(band_keys)
            if (array := state.bucket_array(band, band_key)) is not None
        ]
        if not hits:
            return np.empty(0, dtype=np.int64)
        flags = np.zeros(arena.size, dtype=bool)
        flags[np.concatenate(hits)] = True
        flags &= arena.alive
        return np.flatnonzero(flags)

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Top-``k`` keys by exact cosine among LSH candidates.

        ``threshold`` overrides the index default; ``exclude`` drops one key
        (conventionally the query column itself).  Raises
        :class:`~repro.errors.EmptyIndexError` on an empty index.
        """
        self._check_query(k)
        unit = self._arena.coerce_unit(vector)
        if unit is None:
            return []
        floor = self.threshold if threshold is None else threshold
        state = self._synced_buckets()
        band_keys = self._signature_for(unit).tolist()
        candidates = self._candidate_rows(state, band_keys)
        self._last_candidate_count = int(candidates.size)
        return self._rank_rows(unit, candidates, floor, k, exclude)

    def _pair_filter(
        self, units: np.ndarray, query_ids: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        # Batched candidate generation, inverted: the shared GEMM +
        # threshold pass has already reduced the block to a small set of
        # above-floor (query, row) pairs; candidacy is then one vectorized
        # band-key compare per pair against the packed signature matrix —
        # a pair survives iff the pair shares at least one full band,
        # exactly the bucket-probe criterion of the per-query path.
        packed = self._signatures_for(units)
        return np.any(
            self._arena.signatures[rows] == packed[query_ids], axis=1
        )

    @property
    def last_candidate_count(self) -> int:
        """Candidate-set size of the most recent query (probe selectivity).

        Diagnostics only and not synchronized: under concurrent queries it
        reflects whichever query wrote last.
        """
        return self._last_candidate_count

    def expected_candidate_rate(self, cosine: float) -> float:
        """Probability a vector at ``cosine`` similarity becomes a candidate.

        ``1 - (1 - p^r)^b`` with ``p`` the per-bit agreement probability —
        the standard banding S-curve, exposed for the threshold ablation.
        """
        p = SimHashFamily.collision_probability(cosine)
        return 1.0 - (1.0 - p**self.rows_per_band) ** self.n_bands
