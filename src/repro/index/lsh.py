"""Banded SimHash LSH index with exact-cosine re-ranking.

The index stores every vector's SimHash signature split into ``n_bands``
bands of ``rows_per_band`` bits; vectors sharing any full band with the
query become candidates.  Candidates are then re-ranked by exact cosine on
the stored vectors and filtered by the similarity threshold (the paper sets
0.7), so the LSH layer only buys *speed*, never changes the ranking measure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.index.simhash import SimHashFamily

__all__ = ["SimHashLSHIndex"]


class SimHashLSHIndex:
    """Approximate cosine top-k search over named vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_bits:
        Total signature bits (``n_bands * rows_per_band`` must equal it).
    n_bands / rows_per_band:
        Banding layout: more rows per band → stricter candidate generation;
        more bands → higher recall.
    threshold:
        Cosine floor applied after exact re-ranking (paper: 0.7).
    """

    def __init__(
        self,
        dim: int,
        *,
        n_bits: int = 128,
        n_bands: int = 16,
        threshold: float = 0.7,
        seed_key: str = "warpgate-lsh",
    ) -> None:
        if n_bits % n_bands != 0:
            raise ValueError(
                f"n_bits ({n_bits}) must be divisible by n_bands ({n_bands})"
            )
        if not -1.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [-1, 1], got {threshold}")
        self.dim = dim
        self.n_bits = n_bits
        self.n_bands = n_bands
        self.rows_per_band = n_bits // n_bands
        self.threshold = threshold
        self._family = SimHashFamily(dim, n_bits, seed_key=seed_key)
        self._keys: list[object] = []
        self._vectors: list[np.ndarray] = []
        self._signatures: list[np.ndarray] = []
        self._positions: dict[object, int] = {}
        self._buckets: list[dict[bytes, list[int]]] = [
            {} for _ in range(n_bands)
        ]
        self._last_candidate_count = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._positions

    def __repr__(self) -> str:
        return (
            f"SimHashLSHIndex(n={len(self)}, dim={self.dim}, "
            f"bands={self.n_bands}x{self.rows_per_band}, "
            f"threshold={self.threshold})"
        )

    # -- construction -----------------------------------------------------------

    def _band_keys(self, signature: np.ndarray) -> list[bytes]:
        """Split a signature into per-band byte keys."""
        return [
            signature[band * self.rows_per_band : (band + 1) * self.rows_per_band]
            .tobytes()
            for band in range(self.n_bands)
        ]

    def _insert_buckets(self, signature: np.ndarray, index: int) -> None:
        for band, band_key in enumerate(self._band_keys(signature)):
            self._buckets[band].setdefault(band_key, []).append(index)

    def _evict_buckets(self, signature: np.ndarray, index: int) -> None:
        for band, band_key in enumerate(self._band_keys(signature)):
            bucket = self._buckets[band][band_key]
            bucket.remove(index)
            if not bucket:
                del self._buckets[band][band_key]

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert one named vector.

        Zero vectors are rejected: they carry no direction, so cosine
        against them is undefined.  Keys are unique: re-adding a live key
        raises ``ValueError`` (use :meth:`update` to replace its vector).
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        if key in self._positions:
            raise ValueError(f"key {key!r} already indexed; use update()")
        norm = np.linalg.norm(vector)
        if norm == 0:
            raise ValueError(f"cannot index zero vector under key {key!r}")
        unit = vector / norm
        index = len(self._keys)
        self._keys.append(key)
        self._vectors.append(unit)
        signature = self._family.signature(unit)
        self._signatures.append(signature)
        self._positions[key] = index
        self._insert_buckets(signature, index)

    def add_many(self, items: list[tuple[object, np.ndarray]]) -> None:
        """Insert many named vectors."""
        for key, vector in items:
            self.add(key, vector)

    def remove(self, key: object) -> None:
        """Delete one key in O(signature) time (swap-with-last compaction).

        The last entry is moved into the vacated slot so bucket postings
        stay dense; raises ``KeyError`` when the key is not indexed.
        """
        position = self._positions.pop(key, None)
        if position is None:
            raise KeyError(f"key {key!r} is not indexed")
        last = len(self._keys) - 1
        self._evict_buckets(self._signatures[position], position)
        if position != last:
            moved_key = self._keys[last]
            moved_signature = self._signatures[last]
            self._evict_buckets(moved_signature, last)
            self._keys[position] = moved_key
            self._vectors[position] = self._vectors[last]
            self._signatures[position] = moved_signature
            self._positions[moved_key] = position
            self._insert_buckets(moved_signature, position)
        self._keys.pop()
        self._vectors.pop()
        self._signatures.pop()

    def update(self, key: object, vector: np.ndarray) -> None:
        """Replace (or insert) the vector stored under ``key``."""
        if key in self._positions:
            self.remove(key)
        self.add(key, vector)

    # -- search -------------------------------------------------------------------

    def _candidates(self, signature: np.ndarray) -> list[int]:
        """Indices of vectors sharing at least one band with the signature."""
        seen: set[int] = set()
        for band, band_key in enumerate(self._band_keys(signature)):
            seen.update(self._buckets[band].get(band_key, ()))
        return sorted(seen)

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Top-``k`` keys by exact cosine among LSH candidates.

        ``threshold`` overrides the index default; ``exclude`` drops one key
        (conventionally the query column itself).  Raises
        :class:`EmptyIndexError` on an empty index.
        """
        if not self._keys:
            raise EmptyIndexError("query on empty SimHashLSHIndex")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        norm = np.linalg.norm(vector)
        if norm == 0:
            return []
        unit = vector / norm
        floor = self.threshold if threshold is None else threshold
        signature = self._family.signature(unit)
        candidate_indices = self._candidates(signature)
        self._last_candidate_count = len(candidate_indices)
        if not candidate_indices:
            return []
        matrix = np.stack([self._vectors[i] for i in candidate_indices])
        cosines = matrix @ unit
        scored = [
            (self._keys[candidate_indices[pos]], float(cosines[pos]))
            for pos in range(len(candidate_indices))
            if cosines[pos] >= floor
            and (exclude is None or self._keys[candidate_indices[pos]] != exclude)
        ]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored[:k]

    @property
    def last_candidate_count(self) -> int:
        """Candidate-set size of the most recent query (probe selectivity).

        Diagnostics only and not synchronized: under concurrent queries it
        reflects whichever query wrote last.
        """
        return self._last_candidate_count

    def expected_candidate_rate(self, cosine: float) -> float:
        """Probability a vector at ``cosine`` similarity becomes a candidate.

        ``1 - (1 - p^r)^b`` with ``p`` the per-bit agreement probability —
        the standard banding S-curve, exposed for the threshold ablation.
        """
        p = SimHashFamily.collision_probability(cosine)
        return 1.0 - (1.0 - p**self.rows_per_band) ** self.n_bands
