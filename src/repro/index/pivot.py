"""Pivot-based block-and-verify search (§5.2.3, after PEXESO).

The paper's first proposed search optimization: pick pivot vectors, store
every indexed vector's distance to each pivot, and at query time prune any
vector whose triangle-inequality lower bound already exceeds the search
radius; only survivors are verified with exact distance computations.

On unit vectors, Euclidean distance is monotone in cosine
(``d² = 2 - 2·cos``), so a cosine threshold maps to a metric radius and the
filter is exact — it never drops a true result, it only skips verification
work.  The benchmark reports the fraction of exact computations avoided.

Vectors live in the shared :class:`~repro.index.arena.VectorArena`; the
pivot distance table is one contiguous ``(rows, pivots)`` ``float32``
matrix over the arena, rebuilt lazily after mutations (the arena's
``generation`` counter flags compactions) or eagerly via :meth:`build`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyIndexError
from repro.index.arena import ColumnarIndex

__all__ = ["PivotFilterIndex", "cosine_to_radius"]


def cosine_to_radius(threshold: float) -> float:
    """Euclidean search radius equivalent to a cosine floor on unit vectors."""
    clipped = min(1.0, max(-1.0, threshold))
    return float(np.sqrt(max(0.0, 2.0 - 2.0 * clipped)))


class PivotFilterIndex(ColumnarIndex):
    """Exact thresholded cosine search accelerated by pivot filtering.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_pivots:
        Number of pivots; chosen greedily (max-min) from the indexed data at
        :meth:`build` time for good coverage.
    threshold:
        Default cosine floor.
    """

    def __init__(self, dim: int, *, n_pivots: int = 8, threshold: float = 0.7) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if n_pivots <= 0:
            raise ValueError(f"n_pivots must be positive, got {n_pivots}")
        super().__init__(dim)
        self.n_pivots = n_pivots
        self.threshold = threshold
        self._pivots: np.ndarray | None = None
        self._pivot_distances: np.ndarray | None = None
        self._built_size = 0
        self._built_generation = -1
        self.last_verified_count = 0

    def __repr__(self) -> str:
        return (
            f"PivotFilterIndex(n={len(self)}, dim={self.dim}, "
            f"pivots={self.n_pivots}, threshold={self.threshold})"
        )

    # -- derived structures -------------------------------------------------------

    def _after_add(self, row: int) -> None:
        self._pivots = None  # force rebuild

    def _after_bulk(self, rows: np.ndarray) -> None:
        self._pivots = None  # one invalidation covers the whole batch

    def _after_remove(self) -> None:
        # A tombstone alone keeps the distance table valid (dead rows are
        # masked at query time), but a threshold-triggered compaction
        # renumbers rows; _ensure_built detects that via the generation.
        pass

    def _stale(self) -> bool:
        return (
            self._pivots is None
            or self._built_size != self._arena.size
            or self._built_generation != self._arena.generation
        )

    def build(self) -> None:
        """Choose pivots (greedy max-min) and precompute pivot distances.

        O(live · pivots · dim).  The distance table spans the occupied
        arena region; tombstoned rows keep a (stale) table entry and are
        dropped by the alive mask at query time.
        """
        super().build()
        arena = self._arena
        live = arena.live_rows()
        if live.size == 0:
            raise EmptyIndexError("cannot build an empty PivotFilterIndex")
        matrix = arena.matrix
        n_pivots = min(self.n_pivots, int(live.size))
        # Greedy max-min (farthest-point) pivot selection over live rows,
        # seeded at the first live row.
        chosen = [int(live[0])]
        distances = np.linalg.norm(matrix[live] - matrix[chosen[0]], axis=1)
        while len(chosen) < n_pivots:
            farthest = int(np.argmax(distances))
            if distances[farthest] == 0.0:
                break
            chosen.append(int(live[farthest]))
            new_distances = np.linalg.norm(matrix[live] - matrix[chosen[-1]], axis=1)
            distances = np.minimum(distances, new_distances)
        pivots = matrix[chosen].copy()
        # (rows, n_pivots) distance table over the whole occupied region.
        self._pivot_distances = np.linalg.norm(
            matrix[:, None, :] - pivots[None, :, :], axis=2
        )
        self._built_size = arena.size
        self._built_generation = arena.generation
        # Assigned last: _ensure_built keys off _pivots, so a build must be
        # fully published before any reader can see it as complete.
        self._pivots = pivots

    def _ensure_built(self) -> None:
        if self._stale():
            self.build()

    def _survivors(self, unit: np.ndarray, radius: float) -> np.ndarray:
        """Live rows whose triangle-inequality lower bound is within radius."""
        assert self._pivots is not None and self._pivot_distances is not None
        query_to_pivots = np.linalg.norm(self._pivots - unit, axis=1)
        lower_bounds = np.abs(
            self._pivot_distances - query_to_pivots[None, :]
        ).max(axis=1)
        return np.flatnonzero(self._arena.alive & (lower_bounds <= radius))

    # -- search -------------------------------------------------------------------

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Exact thresholded top-``k``; prunes with pivot lower bounds first."""
        self._check_query(k)
        unit = self._arena.coerce_unit(vector)
        if unit is None:
            return []
        self._ensure_built()
        floor = self.threshold if threshold is None else threshold
        survivors = self._survivors(unit, cosine_to_radius(floor))
        self.last_verified_count = int(survivors.size)
        return self._rank_rows(unit, survivors, floor, k, exclude)

    # search_batch: the pivot filter is lossless (it only skips
    # verification work, never drops a true result), so the inherited
    # GEMM-then-threshold path already returns exactly the per-query
    # result set; no _pair_filter override is needed.

    @property
    def prune_rate(self) -> float:
        """Fraction of stored vectors skipped by the last query's filter.

        Diagnostics only and not synchronized: under concurrent queries it
        reflects whichever query wrote last.
        """
        if len(self) == 0:
            return 0.0
        return 1.0 - self.last_verified_count / len(self)
