"""Pivot-based block-and-verify search (§5.2.3, after PEXESO).

The paper's first proposed search optimization: pick pivot vectors, store
every indexed vector's distance to each pivot, and at query time prune any
vector whose triangle-inequality lower bound already exceeds the search
radius; only survivors are verified with exact distance computations.

On unit vectors, Euclidean distance is monotone in cosine
(``d² = 2 - 2·cos``), so a cosine threshold maps to a metric radius and the
filter is exact — it never drops a true result, it only skips verification
work.  The benchmark reports the fraction of exact computations avoided.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError, EmptyIndexError

__all__ = ["PivotFilterIndex", "cosine_to_radius"]


def cosine_to_radius(threshold: float) -> float:
    """Euclidean search radius equivalent to a cosine floor on unit vectors."""
    clipped = min(1.0, max(-1.0, threshold))
    return float(np.sqrt(max(0.0, 2.0 - 2.0 * clipped)))


class PivotFilterIndex:
    """Exact thresholded cosine search accelerated by pivot filtering.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_pivots:
        Number of pivots; chosen greedily (max-min) from the indexed data at
        :meth:`build` time for good coverage.
    threshold:
        Default cosine floor.
    """

    def __init__(self, dim: int, *, n_pivots: int = 8, threshold: float = 0.7) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if n_pivots <= 0:
            raise ValueError(f"n_pivots must be positive, got {n_pivots}")
        self.dim = dim
        self.n_pivots = n_pivots
        self.threshold = threshold
        self._keys: list[object] = []
        self._rows: list[np.ndarray] = []
        self._positions: dict[object, int] = {}
        self._matrix: np.ndarray | None = None
        self._pivots: np.ndarray | None = None
        self._pivot_distances: np.ndarray | None = None
        self.last_verified_count = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._positions

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert one named vector (unit-normalized internally).

        Keys are unique: re-adding a live key raises ``ValueError`` (use
        :meth:`update` to replace its vector).
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        if key in self._positions:
            raise ValueError(f"key {key!r} already indexed; use update()")
        norm = np.linalg.norm(vector)
        if norm == 0:
            raise ValueError(f"cannot index zero vector under key {key!r}")
        self._positions[key] = len(self._keys)
        self._keys.append(key)
        self._rows.append(vector / norm)
        self._pivots = None  # force rebuild

    def remove(self, key: object) -> None:
        """Delete one key (swap-with-last); raises ``KeyError`` if absent.

        Pivots and the distance table are rebuilt lazily on the next query
        (or eagerly via :meth:`build`).
        """
        position = self._positions.pop(key, None)
        if position is None:
            raise KeyError(f"key {key!r} is not indexed")
        last = len(self._keys) - 1
        if position != last:
            moved_key = self._keys[last]
            self._keys[position] = moved_key
            self._rows[position] = self._rows[last]
            self._positions[moved_key] = position
        self._keys.pop()
        self._rows.pop()
        self._pivots = None  # force rebuild

    def update(self, key: object, vector: np.ndarray) -> None:
        """Replace (or insert) the vector stored under ``key``."""
        if key in self._positions:
            self.remove(key)
        self.add(key, vector)

    def build(self) -> None:
        """Choose pivots (greedy max-min) and precompute pivot distances."""
        if not self._rows:
            raise EmptyIndexError("cannot build an empty PivotFilterIndex")
        matrix = np.stack(self._rows)
        count = len(self._rows)
        n_pivots = min(self.n_pivots, count)
        # Greedy max-min (farthest-point) pivot selection, seeded at index 0.
        chosen = [0]
        distances = np.linalg.norm(matrix - matrix[0], axis=1)
        while len(chosen) < n_pivots:
            farthest = int(np.argmax(distances))
            if distances[farthest] == 0.0:
                break
            chosen.append(farthest)
            new_distances = np.linalg.norm(matrix - matrix[farthest], axis=1)
            distances = np.minimum(distances, new_distances)
        pivots = matrix[chosen]
        self._matrix = matrix
        # (n_points, n_pivots) distance table.
        self._pivot_distances = np.linalg.norm(
            matrix[:, None, :] - pivots[None, :, :], axis=2
        )
        # Assigned last: _ensure_built keys off _pivots, so a build must be
        # fully published before any reader can see it as complete.
        self._pivots = pivots

    def _ensure_built(self) -> None:
        if self._pivots is None:
            self.build()

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float | None = None,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Exact thresholded top-``k``; prunes with pivot lower bounds first."""
        if not self._rows:
            raise EmptyIndexError("query on empty PivotFilterIndex")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        norm = np.linalg.norm(vector)
        if norm == 0:
            return []
        unit = vector / norm
        self._ensure_built()
        assert self._matrix is not None
        assert self._pivots is not None and self._pivot_distances is not None
        floor = self.threshold if threshold is None else threshold
        radius = cosine_to_radius(floor)
        # Lower bound per point: max over pivots of |d(q,p) - d(x,p)|.
        query_to_pivots = np.linalg.norm(self._pivots - unit, axis=1)
        lower_bounds = np.abs(
            self._pivot_distances - query_to_pivots[None, :]
        ).max(axis=1)
        survivors = np.flatnonzero(lower_bounds <= radius)
        self.last_verified_count = int(survivors.size)
        if survivors.size == 0:
            return []
        cosines = self._matrix[survivors] @ unit
        scored = [
            (self._keys[int(point)], float(score))
            for point, score in zip(survivors, cosines)
            if score >= floor
            and (exclude is None or self._keys[int(point)] != exclude)
        ]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored[:k]

    @property
    def prune_rate(self) -> float:
        """Fraction of stored vectors skipped by the last query's filter.

        Diagnostics only and not synchronized: under concurrent queries it
        reflects whichever query wrote last.
        """
        if not self._keys:
            return 0.0
        return 1.0 - self.last_verified_count / len(self._keys)
