"""SimHash: random-hyperplane signatures for cosine similarity.

Charikar (2002): draw random hyperplanes; each bit of a vector's signature
records which side of one hyperplane the vector falls on.  Two vectors
disagree on a bit with probability θ/π (θ = angle between them), so Hamming
similarity of signatures estimates cosine similarity.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.errors import DimensionMismatchError

__all__ = [
    "SimHashFamily",
    "hamming_distance",
    "pack_band_keys",
    "signature_cosine",
]


class SimHashFamily:
    """A fixed draw of ``n_bits`` random hyperplanes in ``dim`` dimensions."""

    def __init__(self, dim: int, n_bits: int = 128, *, seed_key: str = "simhash-v1") -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        self.dim = dim
        self.n_bits = n_bits
        rng = rng_for("simhash-family", seed_key, dim, n_bits)
        self._hyperplanes = rng.standard_normal((n_bits, dim))

    def __repr__(self) -> str:
        return f"SimHashFamily(dim={self.dim}, n_bits={self.n_bits})"

    def signature(self, vector: np.ndarray) -> np.ndarray:
        """Bit signature of one vector: shape (n_bits,), dtype uint8."""
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        return (self._hyperplanes @ vector >= 0).astype(np.uint8)

    def signatures(self, matrix: np.ndarray) -> np.ndarray:
        """Signatures of many vectors at once: shape (n, n_bits)."""
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise DimensionMismatchError(self.dim, matrix.shape[-1] if matrix.ndim else 0)
        return (matrix @ self._hyperplanes.T >= 0).astype(np.uint8)

    @staticmethod
    def collision_probability(cosine: float) -> float:
        """Per-bit agreement probability for a given cosine similarity.

        ``p = 1 - arccos(cos) / π`` — monotonically increasing in cosine.
        """
        clipped = min(1.0, max(-1.0, cosine))
        return 1.0 - np.arccos(clipped) / np.pi


def pack_band_keys(bits: np.ndarray, n_bands: int) -> np.ndarray:
    """Pack bit signatures into one ``uint64`` key per LSH band.

    ``bits`` has shape ``(..., n_bits)`` with ``n_bits`` divisible by
    ``n_bands``; each band of ``n_bits // n_bands`` consecutive bits becomes
    one little-endian integer, giving shape ``(..., n_bands)`` of dtype
    ``uint64``.  This is the canonical on-arena signature layout: band
    equality reduces to a single integer compare, and a whole corpus of
    signatures packs into one contiguous 2-D array.
    """
    n_bits = bits.shape[-1]
    if n_bits % n_bands != 0:
        raise ValueError(f"n_bits ({n_bits}) must be divisible by n_bands ({n_bands})")
    rows_per_band = n_bits // n_bands
    if rows_per_band > 64:
        raise ValueError(
            f"rows_per_band ({rows_per_band}) exceeds 64; a band must fit in uint64"
        )
    grouped = bits.reshape(*bits.shape[:-1], n_bands, rows_per_band).astype(np.uint64)
    weights = np.left_shift(np.uint64(1), np.arange(rows_per_band, dtype=np.uint64))
    return (grouped * weights).sum(axis=-1, dtype=np.uint64)


def hamming_distance(left: np.ndarray, right: np.ndarray) -> int:
    """Number of differing bits between two uint8 bit signatures."""
    if left.shape != right.shape:
        raise DimensionMismatchError(left.shape[0], right.shape[0])
    return int(np.count_nonzero(left != right))


def signature_cosine(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity estimated from two signatures.

    Inverts the collision probability: ``cos(π * hamming_fraction)``.
    """
    n_bits = left.shape[0]
    fraction = hamming_distance(left, right) / n_bits
    return float(np.cos(np.pi * fraction))
