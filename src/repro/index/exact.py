"""Brute-force exact cosine top-k index.

The verification arm for LSH correctness tests and the baseline for the
block-and-verify comparison: always correct, O(n·dim) per query.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError, EmptyIndexError

__all__ = ["ExactCosineIndex"]


class ExactCosineIndex:
    """Exact cosine top-k over named unit vectors."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._keys: list[object] = []
        self._rows: list[np.ndarray] = []
        self._positions: dict[object, int] = {}
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._positions

    def __repr__(self) -> str:
        return f"ExactCosineIndex(n={len(self)}, dim={self.dim})"

    def add(self, key: object, vector: np.ndarray) -> None:
        """Insert one named vector (unit-normalized internally).

        Keys are unique: re-adding a live key raises ``ValueError`` (use
        :meth:`update` to replace its vector).
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        if key in self._positions:
            raise ValueError(f"key {key!r} already indexed; use update()")
        norm = np.linalg.norm(vector)
        if norm == 0:
            raise ValueError(f"cannot index zero vector under key {key!r}")
        self._positions[key] = len(self._keys)
        self._keys.append(key)
        self._rows.append(vector / norm)
        self._matrix = None  # invalidate the cached stack

    def remove(self, key: object) -> None:
        """Delete one key (swap-with-last); raises ``KeyError`` if absent."""
        position = self._positions.pop(key, None)
        if position is None:
            raise KeyError(f"key {key!r} is not indexed")
        last = len(self._keys) - 1
        if position != last:
            moved_key = self._keys[last]
            self._keys[position] = moved_key
            self._rows[position] = self._rows[last]
            self._positions[moved_key] = position
        self._keys.pop()
        self._rows.pop()
        self._matrix = None

    def update(self, key: object, vector: np.ndarray) -> None:
        """Replace (or insert) the vector stored under ``key``."""
        if key in self._positions:
            self.remove(key)
        self.add(key, vector)

    def _materialize(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(self._rows)
        return self._matrix

    def build(self) -> None:
        """Eagerly materialize the cached matrix (idempotent).

        Queries materialize lazily on first use; the serving layer calls
        this after mutations so the shared read path never writes state.
        """
        if self._rows:
            self._materialize()

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float = -1.0,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Exact top-``k`` by cosine, optionally thresholded."""
        if not self._keys:
            raise EmptyIndexError("query on empty ExactCosineIndex")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise DimensionMismatchError(self.dim, int(np.prod(vector.shape)))
        norm = np.linalg.norm(vector)
        if norm == 0:
            return []
        unit = vector / norm
        cosines = self._materialize() @ unit
        order = np.argsort(-cosines)
        results: list[tuple[object, float]] = []
        for position in order:
            key = self._keys[int(position)]
            score = float(cosines[int(position)])
            if score < threshold:
                break
            if exclude is not None and key == exclude:
                continue
            results.append((key, score))
            if len(results) == k:
                break
        return results
