"""Brute-force exact cosine top-k index over the columnar arena.

The verification arm for LSH correctness tests and the baseline for the
block-and-verify comparison: always correct, O(n·dim) per query.  Vectors
live in the shared :class:`~repro.index.arena.VectorArena` (contiguous
``float32`` rows), so a query is one masked matrix-vector product and a
batch is one GEMM — there is no per-vector Python storage to stack.
"""

from __future__ import annotations

import numpy as np

from repro.index.arena import ColumnarIndex

__all__ = ["ExactCosineIndex"]


class ExactCosineIndex(ColumnarIndex):
    """Exact cosine top-k over named unit vectors."""

    threshold = -1.0

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        super().__init__(dim)

    def __repr__(self) -> str:
        return f"ExactCosineIndex(n={len(self)}, dim={self.dim})"

    def query(
        self,
        vector: np.ndarray,
        k: int,
        *,
        threshold: float = -1.0,
        exclude: object = None,
    ) -> list[tuple[object, float]]:
        """Exact top-``k`` by cosine, optionally thresholded.

        One masked matvec over the arena: every occupied row is scored,
        tombstoned rows are dropped by the alive mask, and survivors are
        ranked score-descending (ties broken by ``str(key)``).  With
        quantization enabled the full matvec runs on the int8 code mirror
        instead (via ``_rank_rows``' preselect) and only the top
        ``rerank_factor * k`` survivors are scored in float32.
        """
        self._check_query(k)
        unit = self._arena.coerce_unit(vector)
        if unit is None:
            return []
        arena = self._arena
        if self._quant is not None:
            return self._rank_rows(unit, arena.live_rows(), threshold, k, exclude)
        scores = arena.matrix @ unit
        rows = np.flatnonzero(arena.alive & (scores >= threshold))
        return self._assemble(rows, scores[rows], threshold, k, exclude)
