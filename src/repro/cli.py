"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``discover``
    Load a directory of CSV files as one warehouse, index it, and print the
    top-k joinable columns for a query column (``table.column``).
``serve``
    Index a CSV directory and expose it over JSON-over-HTTP
    (``/search``, ``/index/add``, ``/index/drop``, ``/stats``,
    ``/healthz``).
``demo``
    Run the Joey walkthrough end to end on the Sigma Sample Database.
``corpus-stats``
    Print the Table-1-style statistics of the built-in corpora.
``index`` / ``query``
    Build a persistent index artifact from a CSV directory, then query it
    later without re-scanning.
``graph``
    Build the join graph over a CSV directory, answer multi-hop path
    queries (``--src``/``--dst``), or export it as DOT/JSON.
``bench``
    Run the index perf suite (build / single-query / batched-search
    timings per corpus size) and write the machine-readable
    ``BENCH_index.json`` report tracked across PRs.
``bench-compare``
    Diff the last two same-profile ``BENCH_history.jsonl`` entries and
    fail when any headline metric regressed beyond the noise band.

All commands route through the :class:`~repro.service.DiscoveryService`
facade — the same code path applications are expected to use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.config import WarpGateConfig
from repro.core.lookup import LookupService
from repro.embedding.registry import available_models
from repro.errors import ReproError
from repro.service import DiscoveryService, serve
from repro.storage.csv_codec import read_csv_file
from repro.storage.schema import ColumnRef
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector

__all__ = ["main", "build_parser"]


def _warehouse_from_csv_dir(directory: Path, database: str = "lake") -> Warehouse:
    """Load every ``*.csv`` under ``directory`` into one warehouse."""
    paths = sorted(directory.glob("*.csv"))
    if not paths:
        raise ReproError(f"no CSV files found in {directory}")
    warehouse = Warehouse(directory.name or "csv-lake")
    for path in paths:
        warehouse.add_table(database, read_csv_file(path))
    return warehouse


def _parse_query_ref(text: str, database: str = "lake") -> ColumnRef:
    ref = ColumnRef.parse(text)
    if not ref.database:
        ref = ColumnRef(database, ref.table, ref.column)
    return ref


def _config_from_args(args: argparse.Namespace) -> WarpGateConfig:
    return WarpGateConfig(
        threshold=args.threshold,
        sample_size=args.sample_size,
        model_name=args.model,
        n_shards=getattr(args, "shards", 1),
        quantize=getattr(args, "quantize", False),
        coalesce=not getattr(args, "no_coalesce", False),
        coalesce_max_batch=getattr(args, "max_batch", 32),
        coalesce_max_wait_us=getattr(args, "max_wait_us", 500),
        query_cache_size=getattr(args, "query_cache_size", 4096),
        shard_workers=getattr(args, "shard_workers", 0),
        worker_transport=getattr(args, "worker_transport", "pipe"),
        durable_dir=getattr(args, "durable_dir", "") or None,
        durable_fsync=getattr(args, "fsync", "always"),
        checkpoint_every=getattr(args, "checkpoint_every", 256),
        default_deadline_ms=getattr(args, "deadline_ms", 0),
    )


def cmd_discover(args: argparse.Namespace) -> int:
    warehouse = _warehouse_from_csv_dir(Path(args.directory))
    service = DiscoveryService(_config_from_args(args))
    report = service.open(WarehouseConnector(warehouse))
    print(f"indexed {report.columns_indexed} columns from {args.directory}")
    query = _parse_query_ref(args.query)
    response = service.search(query, args.k)
    if not response.candidates:
        print(f"no joinable columns found for {query} (threshold {args.threshold})")
        return 1
    print(response.describe())
    if args.lookup:
        lookup = LookupService(service)
        for recommendation in lookup.recommend(query, k=min(args.k, 3)):
            rate = lookup.match_rate(query, recommendation.candidate)
            print(f"  verified match rate vs {recommendation.candidate}: {rate:.0%}")
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    warehouse = _warehouse_from_csv_dir(Path(args.directory))
    service = DiscoveryService(_config_from_args(args))
    report = service.open(WarehouseConnector(warehouse))
    artifact = service.save(args.output)
    print(
        f"indexed {report.columns_indexed} columns; artifact written to {artifact}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    # Re-attach the CSV lake so the query column can be scanned and embedded.
    warehouse = _warehouse_from_csv_dir(Path(args.directory))
    service = DiscoveryService.load(
        args.artifact, connector=WarehouseConnector(warehouse)
    )
    query = _parse_query_ref(args.query)
    response = service.search(query, args.k)
    if not response.candidates:
        print(f"no joinable columns found for {query}")
        return 1
    print(response.describe())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    warehouse = _warehouse_from_csv_dir(Path(args.directory))
    config = _config_from_args(args)
    if config.durable_dir and args.procs > 1:
        # The durable store is single-writer (one WAL, one manifest);
        # forked children would race their appends and checkpoints.
        print(
            "error: --durable-dir requires --procs 1 (the WAL is "
            "single-writer)",
            file=sys.stderr,
        )
        return 2
    if args.procs > 1:
        from repro.service import serve_multiprocess

        # The warehouse is loaded once pre-fork (copy-on-write pages);
        # each child builds its own service so the whole request path
        # runs GIL-free in parallel across processes.
        def factory() -> DiscoveryService:
            service = DiscoveryService(config)
            service.open(WarehouseConnector(warehouse))
            return service

        serve_multiprocess(
            factory,
            args.host,
            args.port,
            procs=args.procs,
            workers=args.workers,
            admission_queue_depth=args.admission_queue_depth,
            max_body_bytes=args.max_body_bytes,
            body_read_timeout_s=args.body_timeout,
        )
        return 0
    if config.durable_dir and (Path(config.durable_dir) / "MANIFEST").exists():
        # A previous run (clean or crashed) left a durable store here:
        # recover it instead of re-indexing the corpus over it.
        service = DiscoveryService.load_durable(
            config.durable_dir, connector=WarehouseConnector(warehouse)
        )
        report = service.recovery_report or {}
        print(
            f"recovered {report.get('recovered_columns', 0)} columns from "
            f"{config.durable_dir} (replayed "
            f"{report.get('wal_records_replayed', 0)} WAL record(s), "
            f"discarded {report.get('torn_tail_bytes', 0)} torn byte(s))"
        )
    else:
        service = DiscoveryService(config)
        report = service.open(WarehouseConnector(warehouse))
        print(f"indexed {report.columns_indexed} columns from {args.directory}")
        if config.durable_dir:
            print(f"durable store established at {config.durable_dir}")
    serve(
        service,
        args.host,
        args.port,
        workers=args.workers,
        admission_queue_depth=args.admission_queue_depth,
        max_body_bytes=args.max_body_bytes,
        body_read_timeout_s=args.body_timeout,
    )
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.durability import fsck_store

    report = fsck_store(args.directory)
    manifest = report["manifest"]
    if manifest is not None:
        print(
            f"manifest seq {manifest['manifest_seq']}: "
            f"{manifest['segments']} segment(s), "
            f"wal_applied_seq {manifest['wal_applied_seq']}"
        )
    wal = report["wal"]
    print(
        f"wal: {wal['records']} replayable record(s), "
        f"torn tail {wal['torn_tail_bytes']} byte(s)"
    )
    for warning in report["warnings"]:
        print(f"warning: {warning}")
    for problem in report["problems"]:
        print(f"problem: {problem}")
    if args.recover and not report["problems"]:
        service = DiscoveryService.load_durable(args.directory)
        recovery = service.recovery_report or {}
        print(
            f"recovery ok: {recovery.get('recovered_columns', 0)} columns "
            f"({recovery.get('wal_records_replayed', 0)} WAL record(s) "
            "replayed)"
        )
        if args.checkpoint:
            manifest = service.checkpoint()
            print(
                f"checkpointed: manifest seq {manifest['manifest_seq']}, "
                "WAL truncated"
            )
        service.close()
    print("store is clean" if report["clean"] else "store needs attention")
    return 0 if not report["problems"] else 1


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.datasets.sigma import JOEY_QUERY, generate_sigma_sample_database

    corpus = generate_sigma_sample_database(with_snapshots=False)
    service = DiscoveryService()
    service.open(corpus.connector())
    lookup = LookupService(service)
    query = ColumnRef(*JOEY_QUERY)
    print(f"query: {query}")
    for recommendation in lookup.recommend(query, k=args.k):
        print(f"  {recommendation}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval.perf import (
        append_history,
        run_perf_suite,
        validate_report,
        write_report,
    )
    from repro.eval.report import render_table

    if args.pin_cpus:
        import os

        if not hasattr(os, "sched_setaffinity"):
            print("error: --pin-cpus is not supported on this platform", file=sys.stderr)
            return 2
        pinned = {int(cpu) for cpu in args.pin_cpus.split(",")}
        os.sched_setaffinity(0, pinned)
        print(f"pinned to cpu(s) {sorted(pinned)}")
    sizes = (
        tuple(int(size) for size in args.sizes.split(",")) if args.sizes else None
    )
    stages = (
        tuple(stage.strip() for stage in args.stages.split(",") if stage.strip())
        if args.stages
        else None
    )
    if sizes is not None and len(sizes) < 3 and (stages is None or "results" in stages):
        # Fail before the (potentially multi-minute) run, not after it:
        # the report contract requires >= 3 corpus sizes.
        print(
            "error: malformed perf report: results must list >= 3 corpus sizes",
            file=sys.stderr,
        )
        return 2
    report = run_perf_suite(
        profile=args.profile,
        sizes=sizes,
        dim=args.dim,
        batch_size=args.batch_size,
        k=args.k,
        repeats=args.repeats,
        stages=stages,
        progress=print,
    )
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"error: malformed perf report: {problem}", file=sys.stderr)
        return 2
    path = write_report(report, args.output)
    rows = [
        [
            row["n_columns"],
            f"{row['build_bulk_s']:.3f}",
            f"{row['single_query_ms']:.3f}",
            f"{row['batch_per_query_ms']:.3f}",
            f"{row['batch_speedup']:.1f}x",
            f"{row['candidate_fraction']:.1%}",
        ]
        for row in report["results"]
    ]
    if rows:
        print(
            render_table(
                ["columns", "build s", "1-query ms", "batch ms/q", "speedup", "cand %"],
                rows,
                title=f"Index perf suite ({args.profile} profile)",
            )
        )
    embed_rows = [
        [
            row["n_columns"],
            f"{row['sequential_cols_per_s']:.0f}",
            f"{row['batched_cols_per_s']:.0f}",
            f"{row['speedup']:.1f}x",
            f"{row['cache_hit_rate']:.1%}",
        ]
        for row in report["embed"]
    ]
    if embed_rows:
        print(
            render_table(
                ["columns", "seq cols/s", "batch cols/s", "speedup", "cache hit %"],
                embed_rows,
                title="Embedding throughput (sequential vs batched encode)",
            )
        )
    shard_rows = [
        [
            row["n_columns"],
            row["n_shards"],
            f"{row['batch_ms_single']:.1f}",
            f"{row['batch_ms_sharded']:.1f}",
            f"{row['shard_speedup']:.2f}x",
            f"{row['merge_equal_fraction']:.0%}",
        ]
        for row in report["shard"]
    ]
    if shard_rows:
        print(
            render_table(
                ["columns", "shards", "1-arena ms", "sharded ms", "speedup", "merge ="],
                shard_rows,
                title=f"Sharded search ({report['environment']['cpus']} cpu core(s))",
            )
        )
    quant_rows = [
        [
            row["n_columns"],
            f"{row['batch_ms_float32']:.1f}",
            f"{row['batch_ms_int8']:.1f}",
            f"{row['quant_speedup']:.2f}x",
            f"{row['recall_at_k']:.1%}",
            f"{row['bytes_float32'] // max(1, row['bytes_int8'])}x",
        ]
        for row in report["quant"]
    ]
    if quant_rows:
        print(
            render_table(
                ["columns", "f32 ms", "int8 ms", "speedup", "recall@k", "mem"],
                quant_rows,
                title="Int8 candidate scoring + exact re-rank (exact backend)",
            )
        )
    artifact_rows = [
        [
            row["n_columns"],
            f"{row['load_v2_s'] * 1e3:.1f}",
            f"{row['load_v3_s'] * 1e3:.1f}",
            f"{row['load_speedup']:.0f}x",
        ]
        for row in report["artifact"]
    ]
    if artifact_rows:
        print(
            render_table(
                ["columns", "v2 load ms", "v3 mmap load ms", "speedup"],
                artifact_rows,
                title="Artifact cold load (compressed v2 vs mmap v3)",
            )
        )
    serve_rows = [
        [
            row["n_columns"],
            row["clients"],
            f"{row['qps_baseline']:.0f}",
            f"{row['qps_engine']:.0f}",
            f"{row['coalesced_speedup']:.2f}x",
            f"{row['p99_engine_ms']:.1f}",
            f"{row['cache_hit_rate']:.0%}",
            f"{row['mean_batch']:.1f}",
        ]
        for row in report["serve"]
    ]
    if serve_rows:
        print(
            render_table(
                [
                    "columns",
                    "clients",
                    "base qps",
                    "engine qps",
                    "speedup",
                    "p99 ms",
                    "cache hit",
                    "batch",
                ],
                serve_rows,
                title="HTTP serving engine (thread-per-request vs pool+coalesce+cache)",
            )
        )
    mpserve_rows = [
        [
            row["n_columns"],
            row["n_workers"],
            f"{row['batch_ms_inproc']:.1f}",
            f"{row['batch_ms_proc']:.1f}",
            f"{row['proc_shard_speedup']:.2f}x",
            f"{row['merge_equal_fraction']:.0%}",
            f"{row['qps_one_proc']:.0f}",
            f"{row['qps_two_proc']:.0f}",
            f"{row['http_speedup']:.2f}x",
        ]
        for row in report["mpserve"]
    ]
    if mpserve_rows:
        print(
            render_table(
                [
                    "columns",
                    "workers",
                    "thread ms",
                    "proc ms",
                    "speedup",
                    "merge =",
                    "1-proc qps",
                    "2-proc qps",
                    "http x",
                ],
                mpserve_rows,
                title=(
                    "Multi-process engines "
                    f"({report['environment']['cpus']} cpu core(s), "
                    f"{report['config']['mpserve']['transport']} transport)"
                ),
            )
        )
    overload_rows = [
        [
            row["n_columns"],
            f"{row['workers']}/{row['queue_depth']}",
            f"{row['p99_unsat_ms']:.1f}",
            f"{row['goodput_4x']:.0f}",
            f"{row['shed_rate_4x']:.0%}",
            f"{row['shed_p99_4x_ms']:.2f}",
            f"{row['deadline_miss_rate_4x']:.1%}",
            f"{row['accepted_p99_4x_ms']:.1f}",
            "yes" if row["recovered"] else "NO",
        ]
        for row in report.get("overload", [])
    ]
    if overload_rows:
        print(
            render_table(
                [
                    "columns",
                    "wrk/queue",
                    "1x p99 ms",
                    "4x goodput",
                    "4x shed",
                    "shed p99 ms",
                    "miss 504",
                    "4x p99 ms",
                    "recovered",
                ],
                overload_rows,
                title="Overload shedding (admission control at 4x offered load)",
            )
        )
    graph_rows = [
        [
            row["n_columns"],
            row["n_tables"],
            row["n_edges"],
            f"{row['build_full_s']:.2f}",
            f"{row['incremental_update_s'] * 1e3:.1f}",
            f"{row['incremental_speedup']:.0f}x",
            f"{row['path_query_ms']:.2f}",
            f"{row['path_prune_speedup']:.1f}x",
        ]
        for row in report["graph"]
    ]
    if graph_rows:
        print(
            render_table(
                [
                    "columns",
                    "tables",
                    "edges",
                    "full build s",
                    "incr ms",
                    "speedup",
                    "path q ms",
                    "prune x",
                ],
                graph_rows,
                title="Join graph (full rebuild vs incremental table update)",
            )
        )
    durability_rows = [
        [
            row["n_columns"],
            row["wal_records"],
            f"{row['wal_append_ms']:.3f}",
            f"{row['wal_append_nofsync_ms']:.3f}",
            f"{row['inmem_update_ms']:.3f}",
            f"{row['wal_overhead_x']:.1f}x",
            f"{row['checkpoint_s']:.3f}",
            f"{row['recovery_s']:.3f}",
        ]
        for row in report.get("durability", [])
    ]
    if durability_rows:
        print(
            render_table(
                [
                    "columns",
                    "wal recs",
                    "append ms",
                    "nofsync ms",
                    "in-mem ms",
                    "overhead",
                    "ckpt s",
                    "recover s",
                ],
                durability_rows,
                title="Durable store (WAL append overhead, recovery wall time)",
            )
        )
    quality_rows = [
        [
            row["dataset_key"],
            row["system"] + ("" if row["arm"] == "default" else f"[{row['arm']}]"),
            row["n_queries"],
            f"{row['p_at_10']:.3f}",
            f"{row['r_at_10']:.3f}",
            f"{row['map']:.3f}",
            f"{row['mrr']:.3f}",
        ]
        for row in report.get("quality", [])
    ]
    if quality_rows:
        quality_profile = report["config"]["quality"]["profile"]
        print(
            render_table(
                ["dataset", "system", "queries", "P@10", "R@10", "MAP", "MRR"],
                quality_rows,
                title=f"Join quality matrix ({quality_profile} profile, exact backend)",
            )
        )
    print(f"report written to {path}")
    from repro.eval.perf import ALL_STAGES, BENCH_HISTORY_NAME

    if set(report["stages"]) != set(ALL_STAGES):
        # A partial run would commit a trajectory entry whose headline
        # numbers are mostly null; keep the history full-suite only.
        print("stage subset run: skipping history append")
        return 0
    history_target = (
        args.history
        if args.history is not None
        else str(Path(args.output).parent / BENCH_HISTORY_NAME)
    )
    if history_target:
        history = append_history(report, history_target)
        print(f"history entry appended to {history}")
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    from repro.eval.report import render_table
    from repro.graph.paths import format_table

    warehouse = _warehouse_from_csv_dir(Path(args.directory))
    service = DiscoveryService(_config_from_args(args))
    report = service.open(WarehouseConnector(warehouse))
    if args.action == "paths":
        if not args.src or not args.dst:
            print("error: 'graph paths' requires --src and --dst", file=sys.stderr)
            return 2
        paths = service.find_paths(
            args.src,
            args.dst,
            max_hops=args.max_hops,
            limit=args.limit,
            combiner=args.combiner,
        )
        if not paths:
            print(
                f"no join path from {args.src} to {args.dst} "
                f"within {args.max_hops} hops"
            )
            return 1
        for path in paths:
            print(f"{path.score:.4f}  {path.describe()}")
        return 0
    if args.action == "export":
        text = service.export_graph(args.format)
        if args.output:
            Path(args.output).write_text(text, encoding="utf-8")
            print(f"graph written to {args.output}")
        else:
            print(text, end="")
        return 0
    stats = service.graph_stats()
    print(
        f"indexed {report.columns_indexed} columns; join graph has "
        f"{stats['tables']} tables and {stats['edges']} edges "
        f"(edge threshold {stats['edge_threshold']})"
    )
    edges = service.join_graph.edges()[:10]
    if edges:
        rows = [
            [
                format_table(edge.left.table_key),
                format_table(edge.right.table_key),
                f"{edge.left.column}~{edge.right.column}",
                f"{edge.cosine:.3f}",
                "-" if edge.jaccard is None else f"{edge.jaccard:.3f}",
                f"{edge.confidence:.3f}",
            ]
            for edge in edges
        ]
        print(
            render_table(
                ["left table", "right table", "columns", "cosine", "jaccard", "conf"],
                rows,
                title="Top join edges",
            )
        )
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.eval.compare import DEFAULT_TOLERANCE, compare_history, render_comparison

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    outcome = compare_history(
        args.history, profile=args.profile or None, tolerance=tolerance
    )
    print(render_comparison(outcome))
    regressions = outcome["regressions"]
    if regressions:
        print(
            f"error: {len(regressions)} metric(s) regressed beyond the "
            f"{tolerance:.0%} noise band: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_corpus_stats(args: argparse.Namespace) -> int:
    from repro.datasets.nextiajd import TESTBED_PROFILES, generate_testbed
    from repro.datasets.sigma import generate_sigma_sample_database
    from repro.datasets.spider import generate_spider_corpus
    from repro.eval.report import render_table

    rows = []
    keys = args.corpora.split(",") if args.corpora else [*TESTBED_PROFILES, "spider", "sigma"]
    for key in keys:
        if key in TESTBED_PROFILES:
            corpus = generate_testbed(key)
        elif key == "spider":
            corpus = generate_spider_corpus()
        elif key == "sigma":
            corpus = generate_sigma_sample_database()
        else:
            raise ReproError(f"unknown corpus {key!r}")
        summary = corpus.summary_row()
        rows.append([summary[k] for k in ("corpus", "tables", "columns", "avg_rows", "queries", "avg_answers")])
    print(
        render_table(
            ["corpus", "tables", "columns", "avg rows", "queries", "avg answers"],
            rows,
            title="Corpus statistics (cf. Table 1)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WarpGate semantic join discovery (CIDR 2023 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_model_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("-k", type=int, default=5, help="results per query")
        sub.add_argument(
            "--threshold", type=float, default=0.7, help="cosine similarity floor"
        )
        sub.add_argument(
            "--sample-size", type=int, default=None, help="rows sampled per column"
        )
        sub.add_argument(
            "--model",
            default="webtable",
            choices=available_models(),
            help="embedding model",
        )
        sub.add_argument(
            "--shards",
            type=int,
            default=1,
            help="index partitions searched in parallel (1 = single arena)",
        )
        sub.add_argument(
            "--quantize",
            action="store_true",
            help="score candidates on int8 codes with exact float32 re-rank",
        )
        sub.add_argument(
            "--shard-workers",
            type=int,
            default=0,
            help="shard worker processes fanning queries out over shared "
            "mmap segments (0 = in-process index)",
        )
        sub.add_argument(
            "--worker-transport",
            default="pipe",
            choices=("pipe", "shm"),
            help="query-vector transport to shard workers (shm = POSIX "
            "shared memory for large batches)",
        )

    discover = subparsers.add_parser(
        "discover", help="find joinable columns in a directory of CSV files"
    )
    discover.add_argument("directory", help="directory containing *.csv files")
    discover.add_argument("query", help="query column as table.column")
    discover.add_argument(
        "--lookup", action="store_true", help="verify match rates of the top hits"
    )
    add_model_args(discover)
    discover.set_defaults(handler=cmd_discover)

    index = subparsers.add_parser("index", help="build a persistent index artifact")
    index.add_argument("directory", help="directory containing *.csv files")
    index.add_argument("output", help="artifact path (.npz)")
    add_model_args(index)
    index.set_defaults(handler=cmd_index)

    query = subparsers.add_parser("query", help="query a saved index artifact")
    query.add_argument("artifact", help="artifact path (.npz)")
    query.add_argument("directory", help="the CSV directory the artifact indexed")
    query.add_argument("query", help="query column as table.column")
    add_model_args(query)
    query.set_defaults(handler=cmd_query)

    serve_cmd = subparsers.add_parser(
        "serve", help="index a CSV directory and serve it over HTTP"
    )
    serve_cmd.add_argument("directory", help="directory containing *.csv files")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks a free port)"
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=32,
        help="fixed HTTP worker pool size (concurrent persistent connections)",
    )
    serve_cmd.add_argument(
        "--procs",
        type=int,
        default=1,
        help="server processes sharing the port via SO_REUSEPORT "
        "(1 = single process; >1 forks one full server per process)",
    )
    serve_cmd.add_argument(
        "--admission-queue-depth",
        type=int,
        default=None,
        help="accepted connections the admission queue holds before the "
        "server sheds new ones with 503 + Retry-After (default: 2x "
        "--workers; health probes are always answered)",
    )
    serve_cmd.add_argument(
        "--max-body-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="largest accepted request body; a bigger Content-Length is "
        "rejected with 413 before any of it is read",
    )
    serve_cmd.add_argument(
        "--body-timeout",
        type=float,
        default=10.0,
        help="seconds a client gets to deliver its declared request body "
        "before the read is abandoned with 408 (slow-client defense)",
    )
    serve_cmd.add_argument(
        "--deadline-ms",
        type=int,
        default=0,
        help="default per-request deadline in milliseconds; expiry "
        "answers 504 without probing the index (0 = no deadline; "
        "clients override per request via X-Deadline-Ms or "
        "deadline_ms in the body)",
    )
    serve_cmd.add_argument(
        "--no-coalesce",
        action="store_true",
        help="serve each /search alone instead of micro-batching concurrent ones",
    )
    serve_cmd.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="requests coalesced into one batched index probe",
    )
    serve_cmd.add_argument(
        "--max-wait-us",
        type=int,
        default=500,
        help="microseconds a coalescing leader waits for its batch to fill",
    )
    serve_cmd.add_argument(
        "--query-cache-size",
        type=int,
        default=4096,
        help="entries in the generation-keyed query-result cache (0 disables)",
    )
    serve_cmd.add_argument(
        "--durable-dir",
        default="",
        help="directory for the crash-safe index store (WAL + segments + "
        "manifest); mutations are durable once acknowledged, and a "
        "restart recovers the store instead of re-indexing "
        "(single-process only)",
    )
    serve_cmd.add_argument(
        "--fsync",
        default="always",
        choices=("always", "never"),
        help="WAL fsync policy: 'always' makes every acknowledged "
        "mutation crash-durable, 'never' leaves appends OS-buffered",
    )
    serve_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        help="WAL records between automatic checkpoints (0 = never "
        "auto-compact)",
    )
    add_model_args(serve_cmd)
    serve_cmd.set_defaults(handler=cmd_serve)

    fsck = subparsers.add_parser(
        "fsck",
        help="validate a durable index store (manifest, segment checksums, "
        "WAL); exit 1 on hard corruption",
    )
    fsck.add_argument("directory", help="durable store directory")
    fsck.add_argument(
        "--recover",
        action="store_true",
        help="additionally run full recovery (segment load + WAL replay) "
        "and report what it rebuilds",
    )
    fsck.add_argument(
        "--checkpoint",
        action="store_true",
        help="with --recover: compact the recovered state into a fresh "
        "segment and truncate the WAL (clears torn tails and orphans)",
    )
    fsck.set_defaults(handler=cmd_fsck)

    graph = subparsers.add_parser(
        "graph", help="build, query, or export the join graph of a CSV directory"
    )
    graph.add_argument("directory", help="directory containing *.csv files")
    graph.add_argument(
        "action",
        nargs="?",
        default="build",
        choices=("build", "paths", "export"),
        help="build: print graph stats; paths: rank --src to --dst; export: DOT/JSON",
    )
    graph.add_argument("--src", default="", help="source table as db.table")
    graph.add_argument("--dst", default="", help="destination table as db.table")
    graph.add_argument(
        "--max-hops", type=int, default=3, help="maximum join-path length in edges"
    )
    graph.add_argument("--limit", type=int, default=5, help="paths returned per query")
    graph.add_argument(
        "--combiner",
        default="product",
        choices=("product", "min"),
        help="how edge confidences combine into a path score",
    )
    graph.add_argument(
        "--format", default="dot", choices=("dot", "json"), help="export format"
    )
    graph.add_argument(
        "--output", default="", help="export target file (default: stdout)"
    )
    add_model_args(graph)
    graph.set_defaults(handler=cmd_graph)

    demo = subparsers.add_parser("demo", help="run the Joey walkthrough")
    demo.add_argument("-k", type=int, default=4)
    demo.set_defaults(handler=cmd_demo)

    stats = subparsers.add_parser("corpus-stats", help="print corpus statistics")
    stats.add_argument(
        "--corpora", default="", help="comma-separated subset (default: all)"
    )
    stats.set_defaults(handler=cmd_corpus_stats)

    bench = subparsers.add_parser(
        "bench", help="run the index perf suite and write BENCH_index.json"
    )
    bench.add_argument(
        "--profile",
        default="full",
        choices=("fast", "full"),
        help="suite scale: 'full' is the committed baseline, 'fast' the CI smoke",
    )
    bench.add_argument(
        "--sizes",
        default="",
        help="comma-separated corpus sizes overriding the profile (need >= 3)",
    )
    bench.add_argument(
        "--stages",
        default="",
        help="comma-separated subset of stages to run (default: all); "
        "choices: results, embed, shard, quant, artifact, serve, mpserve, overload, "
        "graph, durability, quality; subset runs skip the history append",
    )
    bench.add_argument("--dim", type=int, default=256, help="embedding dimensionality")
    bench.add_argument(
        "--batch-size", type=int, default=64, help="queries per batched search"
    )
    bench.add_argument("-k", type=int, default=10, help="results per query")
    bench.add_argument(
        "--repeats", type=int, default=None, help="best-of-N timing repeats"
    )
    bench.add_argument(
        "--pin-cpus",
        default="",
        help="comma-separated CPU ids to pin the suite to "
        "(sched_setaffinity; recorded in environment.cpu_affinity)",
    )
    bench.add_argument(
        "--output", default="BENCH_index.json", help="report path (JSON)"
    )
    bench.add_argument(
        "--history",
        default=None,
        help="bench-trajectory file to append (git SHA + timestamp + "
        "headline numbers); defaults to BENCH_history.jsonl next to "
        "--output, pass an empty string to skip",
    )
    bench.set_defaults(handler=cmd_bench)

    compare = subparsers.add_parser(
        "bench-compare",
        help="diff the last two same-profile bench history entries; "
        "exit 1 on regression",
    )
    compare.add_argument(
        "--history", default="BENCH_history.jsonl", help="bench-trajectory file"
    )
    compare.add_argument(
        "--profile",
        default="",
        choices=("", "fast", "full"),
        help="profile whose entries to compare (default: the latest entry's)",
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="fractional noise band before a change counts as a regression",
    )
    compare.set_defaults(handler=cmd_bench_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
