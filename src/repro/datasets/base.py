"""Corpus containers: tables + queries + ground truth.

A :class:`TableCorpus` bundles a simulated warehouse, the benchmark query
columns, and (when available) the ground-truth answer sets.  Everything the
evaluation harness consumes is here; generators in this package produce it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.errors import MissingGroundTruthError
from repro.storage.schema import ColumnRef
from repro.storage.store import ColumnStore
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector

__all__ = ["JoinQuery", "GroundTruth", "TableCorpus"]


@dataclass(frozen=True, slots=True)
class JoinQuery:
    """One benchmark query: find columns joinable with ``ref``."""

    ref: ColumnRef

    def __str__(self) -> str:
        return f"JoinQuery({self.ref})"


class GroundTruth:
    """Query column → set of correct answer columns."""

    def __init__(self, answers: Mapping[ColumnRef, Iterable[ColumnRef]] | None = None) -> None:
        self._answers: dict[ColumnRef, frozenset[ColumnRef]] = {}
        if answers:
            for query, candidates in answers.items():
                self._answers[query] = frozenset(candidates)

    def __len__(self) -> int:
        return len(self._answers)

    def __contains__(self, query: ColumnRef) -> bool:
        return query in self._answers

    def add(self, query: ColumnRef, answer: ColumnRef) -> None:
        """Record one (query, answer) pair."""
        current = self._answers.get(query, frozenset())
        self._answers[query] = current | {answer}

    def answers(self, query: ColumnRef) -> frozenset[ColumnRef]:
        """Answer set for ``query`` (empty set if none recorded)."""
        return self._answers.get(query, frozenset())

    def is_answer(self, query: ColumnRef, candidate: ColumnRef) -> bool:
        """True when ``candidate`` is a correct answer for ``query``."""
        return candidate in self._answers.get(query, frozenset())

    def queries_with_answers(self) -> Iterator[ColumnRef]:
        """Query refs that have at least one answer."""
        for query, answers in self._answers.items():
            if answers:
                yield query

    @property
    def total_answers(self) -> int:
        """Total number of (query, answer) pairs."""
        return sum(len(answers) for answers in self._answers.values())

    @property
    def average_answers(self) -> float:
        """Mean answer-set size over queries with answers."""
        sizes = [len(answers) for answers in self._answers.values() if answers]
        return sum(sizes) / len(sizes) if sizes else 0.0


@dataclass
class TableCorpus:
    """A named evaluation corpus over a simulated warehouse."""

    name: str
    warehouse: Warehouse
    queries: list[JoinQuery] = field(default_factory=list)
    ground_truth: GroundTruth | None = None

    def connector(self, **kwargs) -> WarehouseConnector:
        """Fresh metered connector to this corpus's warehouse."""
        return WarehouseConnector(self.warehouse, **kwargs)

    def to_store(self) -> ColumnStore:
        """Materialize every table into an in-memory column store.

        Bypasses metering — intended for ground-truth computation and tests,
        not for the discovery systems (they must use a connector).
        """
        store = ColumnStore()
        for database_name, table in self.warehouse.table_refs():
            store.add_table(table, database=database_name)
        return store

    def require_ground_truth(self) -> GroundTruth:
        """Ground truth or a loud :class:`MissingGroundTruthError`."""
        if self.ground_truth is None:
            raise MissingGroundTruthError(
                f"corpus {self.name!r} has no ground truth (the paper's Sigma "
                "corpus is evaluated qualitatively only)"
            )
        return self.ground_truth

    # -- summary statistics (Table 1) ------------------------------------------

    @property
    def table_count(self) -> int:
        """Number of tables."""
        return self.warehouse.table_count

    @property
    def column_count(self) -> int:
        """Number of columns."""
        return self.warehouse.column_count

    @property
    def average_rows(self) -> float:
        """Mean rows per table."""
        tables = [table for _db, table in self.warehouse.table_refs()]
        if not tables:
            return 0.0
        return sum(table.row_count for table in tables) / len(tables)

    @property
    def query_count(self) -> int:
        """Number of benchmark queries."""
        return len(self.queries)

    @property
    def average_answers(self) -> float:
        """Mean ground-truth answers per query (0.0 without ground truth)."""
        if self.ground_truth is None:
            return 0.0
        sizes = [len(self.ground_truth.answers(query.ref)) for query in self.queries]
        positive = [size for size in sizes if size > 0]
        return sum(positive) / len(positive) if positive else 0.0

    def summary_row(self) -> dict[str, object]:
        """One Table-1-style summary row."""
        return {
            "corpus": self.name,
            "tables": self.table_count,
            "columns": self.column_count,
            "avg_rows": round(self.average_rows, 1),
            "queries": self.query_count,
            "avg_answers": round(self.average_answers, 1) if self.ground_truth else None,
        }
