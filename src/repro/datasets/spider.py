"""Spider-style corpus: multi-database schemas with declared PK/FK paths.

The paper parses Spider's schema SQL and uses PK/FK join paths as ground
truth for within-database join discovery (Figure 4c).  We regenerate the
setup: many small databases, each with entity tables (declared primary
keys) and detail tables whose foreign keys reference them.  Ground truth
comes from the *declared* keys, not value overlap — exactly like parsing
``FOREIGN KEY`` clauses.

Signals are deliberately mixed, as in real Spider:

* ~60% of databases key their entities with prefixed codes
  (``stu-00042``) — distinctive value families;
* the rest use plain sequential integers, which collide across databases
  and across unrelated tables — the precision noise every system suffers;
* foreign keys cover only 30–90% of the referenced key's values, so
  FK→PK Jaccard similarity is usually *below* high thresholds while
  containment is total: the situation that separates embedding search
  from thresholded MinHash;
* column names of FKs resemble the referenced table's name, feeding
  D3L's name evidence (the paper singles out D3L's recall jump at k=10
  on Spider as a name-similarity effect).
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.datasets import domains as dom
from repro.datasets.base import GroundTruth, JoinQuery, TableCorpus
from repro.storage.column import Column
from repro.storage.schema import ColumnRef, ForeignKey
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.warehouse.catalog import Warehouse

__all__ = ["generate_spider_corpus"]

# Database topics: (db name stem, entity concepts).  Each concept becomes an
# entity table; every database also gets 1-3 detail tables referencing them.
_DB_TOPICS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("college", ("student", "course", "instructor")),
    ("airline", ("flight", "airport", "aircraft")),
    ("hospital", ("patient", "physician", "ward")),
    ("library", ("book", "member", "branch")),
    ("ecommerce", ("customer", "product", "seller")),
    ("hr", ("employee", "department", "project")),
    ("banking", ("account", "branch", "client")),
    ("logistics", ("shipment", "warehouse", "carrier")),
    ("events", ("event", "venue", "sponsor")),
    ("music", ("artist", "album", "label")),
    ("sports", ("player", "team", "stadium")),
    ("realty", ("property", "agent", "office")),
    ("insurance", ("policy", "holder", "adjuster")),
    ("transit", ("route", "station", "operator")),
    ("cinema", ("film", "director", "studio")),
    ("hotel", ("guest", "room", "property")),
    ("gov", ("citizen", "agency", "permit")),
    ("energy", ("plant", "grid", "supplier")),
    ("farm", ("crop", "field", "harvester")),
    ("telecom", ("subscriber", "plan", "tower")),
)

# Attribute columns attached to entity tables: (name, domain or shape).
_ENTITY_ATTRIBUTES: tuple[tuple[str, str], ...] = (
    ("name", "person"),
    ("city", "city"),
    ("state", "state"),
    ("country", "country"),
    ("label", "product"),
    ("group_name", "category"),
)


def _pk_values(
    concept: str,
    concept_index: int,
    database_index: int,
    size: int,
    use_codes: bool,
) -> tuple:
    """Primary-key universe for one entity table.

    Integer keys start at per-table offsets (auto-increment sequences that
    have drifted apart), so id ranges mostly distinguish tables — with a
    deliberate minority of low ranges that still collide across databases,
    the precision noise every system shows on Spider.
    """
    if use_codes:
        prefix = concept[:3]
        return dom.code_pool(prefix, size, start=1 + database_index * 10_000)
    if database_index % 3 == 0 and concept_index == 0:
        return tuple(range(1, size + 1))  # fresh sequence: collides elsewhere
    start = 1 + (database_index * 7 + concept_index * 3) * 2_048
    return tuple(range(start, start + size))


def generate_spider_corpus(
    n_databases: int = 20,
    *,
    seed: int = 13,
    rows_scale: float = 1.0,
    max_queries: int = 60,
) -> TableCorpus:
    """Generate the Spider-style PK/FK corpus.

    Default shape mirrors the paper's dev-set slice: ~70 tables, ~430
    columns, with queries drawn from declared join paths (avg answers ≈ 1).
    """
    if n_databases <= 0:
        raise ValueError(f"n_databases must be positive, got {n_databases}")
    if rows_scale <= 0:
        raise ValueError(f"rows_scale must be positive, got {rows_scale}")
    warehouse = Warehouse("spider")
    truth = GroundTruth()
    fk_queries: list[ColumnRef] = []
    pk_queries: list[ColumnRef] = []

    for database_index in range(n_databases):
        stem, concepts = _DB_TOPICS[database_index % len(_DB_TOPICS)]
        database_name = f"{stem}_{database_index:02d}"
        rng = rng_for("spider-db", seed, database_index)
        use_codes = rng.random() < 0.6
        n_entities = int(rng.integers(2, len(concepts) + 1))
        entity_rows = max(20, int(rng.integers(300, 1_500) * rows_scale))

        pk_refs: dict[str, tuple[ColumnRef, tuple]] = {}
        for concept_index, concept in enumerate(concepts[:n_entities]):
            table_name = concept + "s"
            pk_name = f"{concept}_id"
            pk_universe = _pk_values(
                concept, concept_index, database_index, entity_rows, use_codes
            )
            columns = [
                Column(
                    pk_name,
                    list(pk_universe),
                    DataType.STRING if use_codes else DataType.INTEGER,
                )
            ]
            n_attributes = int(rng.integers(2, 5))
            attribute_rng = rng_for("spider-attrs", seed, database_index, concept)
            for attr_index in range(n_attributes):
                attr_name, attr_domain = _ENTITY_ATTRIBUTES[
                    (database_index + attr_index) % len(_ENTITY_ATTRIBUTES)
                ]
                if any(column.name == attr_name for column in columns):
                    continue
                subset = dom.draw_subset(
                    attr_domain,
                    attribute_rng,
                    min(entity_rows, max(10, entity_rows // 3)),
                )
                values = dom.materialize_values(
                    subset,
                    entity_rows,
                    attribute_rng,
                    domain_name=attr_domain,
                    style=dom.domain(attr_domain).styles[0],
                )
                columns.append(Column(attr_name, values, DataType.STRING))
            columns.append(
                Column(
                    "created_at",
                    dom.random_dates(attribute_rng, entity_rows),
                    DataType.DATE,
                    coerce=True,
                )
            )
            table = Table(table_name, columns, primary_key=pk_name)
            warehouse.add_table(database_name, table)
            pk_refs[concept] = (
                ColumnRef(database_name, table_name, pk_name),
                pk_universe,
            )

        # Detail tables: each holds 1-2 FKs referencing entity PKs.
        n_details = int(rng.integers(1, 4))
        for detail_index in range(n_details):
            detail_rng = rng_for("spider-detail", seed, database_index, detail_index)
            detail_rows = max(30, int(detail_rng.integers(500, 2_500) * rows_scale))
            referenced = list(pk_refs.items())
            detail_rng.shuffle(referenced)
            n_fks = min(len(referenced), int(detail_rng.integers(1, 3)))
            columns = [
                Column(
                    "record_id",
                    dom.sequential_ids(1 + detail_index * 100_000, detail_rows),
                    DataType.INTEGER,
                )
            ]
            foreign_keys = []
            detail_name = f"{stem}_records_{detail_index}"
            for concept, (pk_ref, pk_universe) in referenced[:n_fks]:
                # ~30% of FKs reference only a sparse slice of the parent
                # (rare children): extent overlap falls below ensemble
                # retrieval thresholds and only name evidence recovers the
                # pair — the D3L late-recall effect the paper points at.
                sparse = detail_rng.random() < 0.2
                if sparse:
                    coverage = float(detail_rng.uniform(0.05, 0.28))
                else:
                    coverage = float(detail_rng.uniform(0.4, 1.0))
                covered = pk_universe[: max(2, int(coverage * len(pk_universe)))]
                # Every covered key appears at least once (children exist for
                # these parents), so FK→PK Jaccard equals the coverage rather
                # than a sampling accident.
                if detail_rows >= len(covered):
                    extra = detail_rng.integers(
                        0, len(covered), size=detail_rows - len(covered)
                    )
                    indices = list(range(len(covered))) + [int(i) for i in extra]
                else:
                    indices = [
                        int(i)
                        for i in detail_rng.choice(
                            len(covered), size=detail_rows, replace=False
                        )
                    ]
                detail_rng.shuffle(indices)
                # Most FKs keep the referenced column's name (sparse ones
                # almost always do — lookup-style references); the rest are
                # renamed, as in real Spider schemas.
                rename_draw = detail_rng.random()
                keep, mild = (0.8, 0.9) if sparse else (0.5, 0.7)
                if rename_draw < keep:
                    fk_name = f"{concept}_id"
                elif rename_draw < mild:
                    fk_name = f"{concept}_ref"
                elif rename_draw < (1.0 + mild) / 2:
                    fk_name = f"parent_{concept[:4]}"
                else:
                    fk_name = f"{concept[:3]}_key"
                fk_values = [covered[i] for i in indices]
                columns.append(
                    Column(
                        fk_name,
                        fk_values,
                        DataType.STRING if use_codes else DataType.INTEGER,
                    )
                )
                foreign_keys.append(ForeignKey(fk_name, pk_ref))
                fk_ref = ColumnRef(database_name, detail_name, fk_name)
                # Declared join path: both directions are ground truth.
                truth.add(fk_ref, pk_ref)
                truth.add(pk_ref, fk_ref)
                fk_queries.append(fk_ref)
                pk_queries.append(pk_ref)
            columns.append(
                Column(
                    "amount",
                    dom.lognormal_amounts(detail_rng, detail_rows),
                    DataType.FLOAT,
                )
            )
            columns.append(
                Column(
                    "event_date",
                    dom.random_dates(detail_rng, detail_rows),
                    DataType.DATE,
                    coerce=True,
                )
            )
            table = Table(detail_name, columns, foreign_keys=tuple(foreign_keys))
            warehouse.add_table(database_name, table)

    # Queries: all FK columns plus referenced PKs, deduplicated, capped.
    seen: set[ColumnRef] = set()
    query_refs: list[ColumnRef] = []
    for ref in fk_queries + pk_queries:
        if ref not in seen:
            seen.add(ref)
            query_refs.append(ref)
    if len(query_refs) > max_queries:
        picker = rng_for("spider-queries", seed)
        chosen = picker.choice(len(query_refs), size=max_queries, replace=False)
        query_refs = [query_refs[int(i)] for i in sorted(chosen)]

    corpus = TableCorpus("spider", warehouse)
    corpus.ground_truth = truth
    corpus.queries = [JoinQuery(ref) for ref in query_refs]
    return corpus
