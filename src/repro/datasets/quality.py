"""NextiaJD join-quality labelling.

Flores, Nadal & Romero (EDBT 2021) label attribute pairs by a *join quality*
derived from two measurable proxies over distinct value sets:

* containment ``C(A, B) = |A ∩ B| / |A|`` — how much of the query column
  finds a join partner;
* cardinality proportion ``K(A, B) = min(|A|, |B|) / max(|A|, |B|)`` — how
  balanced the two sides are.

with empirically determined thresholds mapping (C, K) to a discrete quality
level.  The paper's evaluation uses pairs labelled **Good** or **High** as
ground truth; we implement the same rule and apply it to the *generated*
data, so labels reflect actual value overlap rather than generator intent.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from enum import IntEnum

from repro.datasets.base import GroundTruth, JoinQuery
from repro.storage.schema import ColumnRef
from repro.storage.store import ColumnStore
from repro.storage.types import DataType

__all__ = [
    "JoinQuality",
    "cardinality_proportion",
    "label_quality",
    "compute_ground_truth",
]


class JoinQuality(IntEnum):
    """Discrete join-quality levels, ordered."""

    NONE = 0
    POOR = 1
    MODERATE = 2
    GOOD = 3
    HIGH = 4


# (containment floor, cardinality-proportion floor) per level, best first.
_QUALITY_RULES: tuple[tuple[JoinQuality, float, float], ...] = (
    (JoinQuality.HIGH, 0.75, 0.25),
    (JoinQuality.GOOD, 0.50, 0.10),
    (JoinQuality.MODERATE, 0.25, 0.05),
    (JoinQuality.POOR, 0.10, 0.0),
)


def cardinality_proportion(size_left: int, size_right: int) -> float:
    """``K(A, B) = min(|A|, |B|) / max(|A|, |B|)`` — symmetric, in [0, 1].

    0.0 when either side is empty (an empty column is joinable with
    nothing, matching the NONE label).
    """
    if size_left <= 0 or size_right <= 0:
        return 0.0
    return min(size_left, size_right) / max(size_left, size_right)


def label_quality(containment: float, cardinality_proportion: float) -> JoinQuality:
    """Map (C, K) to a :class:`JoinQuality` with the NextiaJD thresholds.

    >>> label_quality(0.9, 0.5)
    <JoinQuality.HIGH: 4>
    >>> label_quality(0.6, 0.2)
    <JoinQuality.GOOD: 3>
    """
    for level, containment_floor, proportion_floor in _QUALITY_RULES:
        if containment >= containment_floor and cardinality_proportion >= proportion_floor:
            return level
    return JoinQuality.NONE


# NextiaJD labels *textual* attributes; unconstrained numeric columns
# (quantities, years, ratings) would otherwise all appear mutually joinable.
_LABELABLE_TYPES = (DataType.STRING,)


def compute_ground_truth(
    store: ColumnStore,
    *,
    minimum_quality: JoinQuality = JoinQuality.GOOD,
    min_distinct: int = 3,
) -> tuple[GroundTruth, list[JoinQuery]]:
    """Label every cross-table column pair of the corpus by join quality.

    Pairs at or above ``minimum_quality`` become ground truth; every column
    with at least one answer becomes a benchmark query.  An inverted
    value→columns index restricts containment computation to pairs that
    share at least one value (pairs sharing nothing are NONE by definition),
    keeping labelling near-linear in total distinct values.
    """
    refs: list[ColumnRef] = []
    distinct_sets: dict[ColumnRef, frozenset[str]] = {}
    for ref in store.column_refs():
        column = store.column(ref)
        if column.dtype not in _LABELABLE_TYPES:
            continue
        distinct = frozenset(str(value) for value in column.distinct_values)
        if len(distinct) < min_distinct:
            continue
        refs.append(ref)
        distinct_sets[ref] = distinct

    # Inverted index: value -> column ids holding it.
    ref_ids = {ref: index for index, ref in enumerate(refs)}
    holders: dict[str, list[int]] = defaultdict(list)
    for ref in refs:
        rid = ref_ids[ref]
        for value in distinct_sets[ref]:
            holders[value].append(rid)

    # Pairwise intersection sizes, only for co-occurring pairs.
    intersections: Counter[tuple[int, int]] = Counter()
    for holder_ids in holders.values():
        if len(holder_ids) < 2:
            continue
        for position, left in enumerate(holder_ids):
            for right in holder_ids[position + 1 :]:
                key = (left, right) if left < right else (right, left)
                intersections[key] += 1

    truth = GroundTruth()
    for (left_id, right_id), shared in intersections.items():
        left_ref, right_ref = refs[left_id], refs[right_id]
        if left_ref.same_table(right_ref):
            continue
        size_left = len(distinct_sets[left_ref])
        size_right = len(distinct_sets[right_ref])
        proportion = cardinality_proportion(size_left, size_right)
        # Quality is directional: label both directions independently.
        if label_quality(shared / size_left, proportion) >= minimum_quality:
            truth.add(left_ref, right_ref)
        if label_quality(shared / size_right, proportion) >= minimum_quality:
            truth.add(right_ref, left_ref)

    queries = [JoinQuery(ref) for ref in refs if truth.answers(ref)]
    return truth, queries
