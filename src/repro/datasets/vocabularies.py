"""Deterministic domain lexicons.

These pools are the shared "world knowledge" linking the synthetic web-table
training corpus to the evaluation corpora: a pretrained embedding model is
useful precisely because the entities in an enterprise warehouse also occur
on the web.  Pools are plain tuples built at import time — no RNG — so every
run of every generator sees the identical universe.
"""

from __future__ import annotations

from itertools import product

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "CITIES",
    "COUNTRIES",
    "US_STATES",
    "SECTORS",
    "INDUSTRY_GROUPS",
    "COMPANY_NAMES",
    "TICKER_OF_COMPANY",
    "PRODUCT_NAMES",
    "PRODUCT_CATEGORIES",
    "JOB_TITLES",
    "STREET_NAMES",
    "EMAIL_DOMAINS",
    "CURRENCIES",
    "COLORS",
    "CUISINES",
    "ENDPOINTS",
    "USER_AGENT_TOKENS",
]

FIRST_NAMES: tuple[str, ...] = (
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "lisa", "daniel", "nancy", "matthew", "betty", "anthony", "sandra",
    "mark", "margaret", "donald", "ashley", "steven", "kimberly", "andrew",
    "emily", "paul", "donna", "joshua", "michelle", "kenneth", "carol",
    "kevin", "amanda", "brian", "melissa", "george", "deborah", "timothy",
    "stephanie", "ronald", "rebecca", "jason", "sharon", "edward", "laura",
    "jeffrey", "cynthia", "ryan", "kathleen", "jacob", "amy", "gary",
    "angela", "nicholas", "shirley", "eric", "anna", "jonathan", "brenda",
    "stephen", "pamela", "larry", "emma", "justin", "nicole", "scott",
    "helen", "brandon", "samantha", "benjamin", "katherine", "samuel",
    "christine", "gregory", "debra", "alexander", "rachel", "patrick",
    "carolyn", "frank", "janet", "raymond", "maria", "jack", "olivia",
    "dennis", "heather", "jerry", "diane", "tyler", "julie", "aaron",
    "joyce", "jose", "victoria", "adam", "ruth", "nathan", "virginia",
    "henry", "lauren", "zachary", "kelly", "douglas", "christina", "peter",
    "joan", "kyle", "evelyn", "noah", "judith", "ethan", "andrea",
)

LAST_NAMES: tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
    "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
    "sullivan", "bell", "coleman", "butler", "henderson", "barnes",
    "fisher", "vasquez", "simmons", "romero", "jordan", "patterson",
    "alexander", "hamilton", "graham", "reynolds", "griffin", "wallace",
)

CITIES: tuple[str, ...] = (
    "new york", "los angeles", "chicago", "houston", "phoenix",
    "philadelphia", "san antonio", "san diego", "dallas", "san jose",
    "austin", "jacksonville", "fort worth", "columbus", "charlotte",
    "san francisco", "indianapolis", "seattle", "denver", "boston",
    "el paso", "nashville", "detroit", "oklahoma city", "portland",
    "las vegas", "memphis", "louisville", "baltimore", "milwaukee",
    "albuquerque", "tucson", "fresno", "sacramento", "kansas city",
    "mesa", "atlanta", "omaha", "colorado springs", "raleigh", "miami",
    "virginia beach", "oakland", "minneapolis", "tulsa", "arlington",
    "tampa", "new orleans", "wichita", "cleveland", "bakersfield",
    "aurora", "anaheim", "honolulu", "santa ana", "riverside",
    "corpus christi", "lexington", "stockton", "henderson", "saint paul",
    "st louis", "cincinnati", "pittsburgh", "greensboro", "anchorage",
    "plano", "lincoln", "orlando", "irvine", "newark", "toledo", "durham",
    "chula vista", "fort wayne", "jersey city", "st petersburg", "laredo",
    "madison", "chandler", "buffalo", "lubbock", "scottsdale", "reno",
    "glendale", "gilbert", "winston salem", "north las vegas", "norfolk",
    "chesapeake", "garland", "irving", "hialeah", "fremont", "boise",
    "richmond", "baton rouge", "spokane", "des moines", "tacoma",
    "london", "paris", "berlin", "madrid", "rome", "amsterdam", "vienna",
    "dublin", "lisbon", "prague", "tokyo", "osaka", "seoul", "singapore",
    "sydney", "melbourne", "toronto", "vancouver", "montreal", "mexico city",
)

COUNTRIES: tuple[str, ...] = (
    "united states", "canada", "mexico", "brazil", "argentina", "chile",
    "colombia", "peru", "united kingdom", "france", "germany", "spain",
    "italy", "portugal", "netherlands", "belgium", "switzerland", "austria",
    "sweden", "norway", "denmark", "finland", "ireland", "poland",
    "czech republic", "hungary", "greece", "turkey", "russia", "ukraine",
    "china", "japan", "south korea", "india", "indonesia", "thailand",
    "vietnam", "philippines", "malaysia", "singapore", "australia",
    "new zealand", "south africa", "nigeria", "egypt", "kenya", "morocco",
    "israel", "saudi arabia", "united arab emirates", "qatar", "pakistan",
    "bangladesh", "sri lanka", "nepal", "taiwan", "hong kong", "iceland",
    "luxembourg", "estonia",
)

US_STATES: tuple[str, ...] = (
    "alabama", "alaska", "arizona", "arkansas", "california", "colorado",
    "connecticut", "delaware", "florida", "georgia", "hawaii", "idaho",
    "illinois", "indiana", "iowa", "kansas", "kentucky", "louisiana",
    "maine", "maryland", "massachusetts", "michigan", "minnesota",
    "mississippi", "missouri", "montana", "nebraska", "nevada",
    "new hampshire", "new jersey", "new mexico", "new york",
    "north carolina", "north dakota", "ohio", "oklahoma", "oregon",
    "pennsylvania", "rhode island", "south carolina", "south dakota",
    "tennessee", "texas", "utah", "vermont", "virginia", "washington",
    "west virginia", "wisconsin", "wyoming",
)

SECTORS: tuple[str, ...] = (
    "energy", "materials", "industrials", "consumer discretionary",
    "consumer staples", "health care", "financials",
    "information technology", "communication services", "utilities",
    "real estate",
)

INDUSTRY_GROUPS: tuple[str, ...] = (
    "automobiles", "banks", "capital goods", "commercial services",
    "consumer durables", "consumer services", "diversified financials",
    "energy equipment", "food and beverage", "food retailing",
    "health care equipment", "household products", "insurance",
    "materials", "media and entertainment", "pharmaceuticals",
    "real estate management", "retailing", "semiconductors",
    "software and services", "technology hardware", "telecommunication",
    "transportation", "utilities",
)

_COMPANY_PREFIXES: tuple[str, ...] = (
    "acme", "global", "north", "south", "east", "west", "pacific",
    "atlantic", "summit", "pinnacle", "apex", "vertex", "nova", "stellar",
    "quantum", "fusion", "synergy", "united", "allied", "premier", "prime",
    "omega", "alpha", "delta", "sigma", "vector", "matrix", "nexus",
    "orbit", "terra", "aqua", "solar", "lunar", "arctic", "cascade",
    "granite", "ironwood", "silverlake", "bluepeak", "redstone", "coastal",
    "heartland", "frontier", "liberty", "sterling", "crescent", "beacon",
    "harbor", "meridian", "zenith",
)

_COMPANY_CORES: tuple[str, ...] = (
    "dynamics", "logistics", "analytics", "robotics", "biotech", "pharma",
    "energy", "motors", "airlines", "foods", "beverages", "retail",
    "media", "telecom", "networks", "software", "hardware", "semiconductor",
    "materials", "mining", "chemical", "textile", "apparel", "finance",
    "capital", "insurance", "realty", "shipping", "rail", "freight",
    "agro", "dairy", "paper", "packaging", "plastics", "steel", "aero",
    "marine", "medical", "dental",
)

_COMPANY_SUFFIXES: tuple[str, ...] = (
    "corp", "inc", "llc", "ltd", "group", "holdings", "partners",
    "industries", "international", "technologies", "systems", "labs",
    "solutions", "enterprises", "ventures", "co",
)


def _build_company_names() -> tuple[str, ...]:
    """~2000 distinct two- or three-part company names, deterministic order.

    The cartesian product is striped (prefix-core pairs cycle through
    suffixes) so adjacent pool entries don't share a suffix — subsets drawn
    from a pool slice still look diverse.
    """
    names = []
    pairs = list(product(_COMPANY_PREFIXES, _COMPANY_CORES))
    for index, (prefix, core) in enumerate(pairs):
        suffix = _COMPANY_SUFFIXES[index % len(_COMPANY_SUFFIXES)]
        names.append(f"{prefix} {core} {suffix}")
    return tuple(names)


COMPANY_NAMES: tuple[str, ...] = _build_company_names()


def _ticker_of(company: str, used: set[str]) -> str:
    """Derive a distinct uppercase ticker from a company name."""
    words = company.split()
    base = (words[0][:2] + words[1][:2]).upper()
    ticker = base
    attempt = 1
    while ticker in used:
        ticker = f"{base}{attempt}"
        attempt += 1
    used.add(ticker)
    return ticker


def _build_tickers() -> dict[str, str]:
    used: set[str] = set()
    return {company: _ticker_of(company, used) for company in COMPANY_NAMES}


TICKER_OF_COMPANY: dict[str, str] = _build_tickers()

_PRODUCT_ADJECTIVES: tuple[str, ...] = (
    "classic", "premium", "deluxe", "compact", "portable", "wireless",
    "organic", "vintage", "modern", "ergonomic", "ultra", "smart", "eco",
    "pro", "mini", "max", "turbo", "heavy duty", "lightweight", "foldable",
)

_PRODUCT_NOUNS: tuple[str, ...] = (
    "backpack", "headphones", "keyboard", "monitor", "desk lamp",
    "water bottle", "notebook", "sneakers", "jacket", "umbrella", "mug",
    "blender", "toaster", "vacuum", "drill", "hammer", "wrench", "tent",
    "sleeping bag", "bicycle", "scooter", "camera", "tripod", "speaker",
    "charger", "router", "printer", "scanner", "projector", "microphone",
    "guitar", "keyboard stand", "yoga mat", "dumbbell", "treadmill",
    "sofa", "bookshelf", "mattress", "pillow", "curtain",
)

PRODUCT_NAMES: tuple[str, ...] = tuple(
    f"{adjective} {noun}"
    for adjective, noun in product(_PRODUCT_ADJECTIVES, _PRODUCT_NOUNS)
)

PRODUCT_CATEGORIES: tuple[str, ...] = (
    "electronics", "home and kitchen", "sports and outdoors", "clothing",
    "office supplies", "tools and hardware", "furniture", "music",
    "fitness", "travel gear", "toys and games", "garden", "automotive",
    "pet supplies", "beauty", "grocery",
)

JOB_TITLES: tuple[str, ...] = (
    "software engineer", "data analyst", "product manager",
    "account executive", "sales director", "marketing manager",
    "financial analyst", "operations manager", "hr specialist",
    "customer success manager", "data scientist", "devops engineer",
    "business analyst", "controller", "treasurer", "chief executive",
    "chief financial officer", "chief technology officer",
    "regional manager", "support engineer", "solutions architect",
    "technical writer", "recruiter", "office manager", "legal counsel",
    "procurement specialist", "quality engineer", "research scientist",
    "ux designer", "project coordinator",
)

STREET_NAMES: tuple[str, ...] = (
    "main", "oak", "pine", "maple", "cedar", "elm", "washington", "lake",
    "hill", "park", "sunset", "ridge", "river", "spring", "church",
    "franklin", "highland", "forest", "jackson", "lincoln", "madison",
    "jefferson", "adams", "monroe", "chestnut", "walnut", "willow",
    "birch", "spruce", "magnolia", "dogwood", "juniper", "sycamore",
    "laurel", "hawthorn", "poplar", "aspen", "cherry", "peach", "orchard",
)

EMAIL_DOMAINS: tuple[str, ...] = (
    "gmail.com", "yahoo.com", "outlook.com", "hotmail.com", "aol.com",
    "icloud.com", "proton.me", "fastmail.com", "zoho.com", "mail.com",
)

CURRENCIES: tuple[str, ...] = (
    "usd", "eur", "gbp", "jpy", "cad", "aud", "chf", "cny", "inr", "brl",
    "mxn", "krw", "sek", "nok", "dkk", "sgd",
)

COLORS: tuple[str, ...] = (
    "black", "white", "red", "blue", "green", "yellow", "orange", "purple",
    "pink", "brown", "gray", "navy", "teal", "maroon", "olive", "silver",
    "gold", "beige", "turquoise", "charcoal",
)

CUISINES: tuple[str, ...] = (
    "italian", "mexican", "chinese", "japanese", "thai", "indian",
    "french", "greek", "spanish", "korean", "vietnamese", "american",
    "mediterranean", "ethiopian", "lebanese", "turkish", "brazilian",
    "peruvian", "moroccan", "german",
)

ENDPOINTS: tuple[str, ...] = (
    "/api/v1/users", "/api/v1/orders", "/api/v1/products", "/api/v1/carts",
    "/api/v1/payments", "/api/v1/sessions", "/api/v1/search",
    "/api/v1/recommendations", "/api/v1/inventory", "/api/v1/shipping",
    "/api/v2/users", "/api/v2/orders", "/api/v2/metrics", "/api/v2/events",
    "/health", "/metrics", "/login", "/logout", "/signup", "/checkout",
)

USER_AGENT_TOKENS: tuple[str, ...] = (
    "mozilla", "chrome", "safari", "firefox", "edge", "opera", "webkit",
    "gecko", "mobile", "android", "iphone", "ipad", "macintosh", "windows",
    "linux", "curl", "python-requests", "okhttp", "bot", "crawler",
)
