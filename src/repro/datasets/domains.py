"""Value domains: the generative backbone of every synthetic corpus.

A :class:`ValueDomain` is a named universe of entity values (companies,
people, cities, …) with *rendering styles*.  Two columns drawn from the same
domain are semantically related; whether they are *joinable* depends on how
much of the domain subset they share (containment) — and whether that
joinability is visible syntactically depends on the styles ("ACME DYNAMICS
CORP" vs "Acme Dynamics Corp" vs "acme dynamics").  This is exactly the
semantic-vs-syntactic axis the paper's evaluation probes.

Numeric / date / code helpers live here too so all generators share one
vocabulary of data shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from repro.datasets import vocabularies as vocab
from repro.storage.types import DataType

__all__ = [
    "ValueDomain",
    "DOMAINS",
    "PERSON_NAMES",
    "domain",
    "render_value",
    "draw_subset",
    "materialize_values",
    "code_pool",
    "sequential_ids",
    "random_dates",
    "lognormal_amounts",
    "uniform_ints",
    "uniform_floats",
]


def _striped_person_names(limit: int = 3000) -> tuple[str, ...]:
    """A diverse subset of first+last combinations, deterministic order."""
    names = []
    firsts, lasts = vocab.FIRST_NAMES, vocab.LAST_NAMES
    for index in range(limit):
        first = firsts[index % len(firsts)]
        last = lasts[(index * 7 + index // len(firsts)) % len(lasts)]
        names.append(f"{first} {last}")
    # The stripe can collide; keep first occurrences, preserving order.
    return tuple(dict.fromkeys(names))


PERSON_NAMES: tuple[str, ...] = _striped_person_names()


def _email_pool() -> tuple[str, ...]:
    domains = vocab.EMAIL_DOMAINS
    return tuple(
        f"{name.replace(' ', '.')}@{domains[index % len(domains)]}"
        for index, name in enumerate(PERSON_NAMES)
    )


def _street_pool(limit: int = 1200) -> tuple[str, ...]:
    street_types = ("st", "ave", "blvd", "rd", "ln", "dr", "ct", "way")
    streets = []
    for index in range(limit):
        number = 100 + (index * 37) % 9900
        name = vocab.STREET_NAMES[index % len(vocab.STREET_NAMES)]
        stype = street_types[(index // len(vocab.STREET_NAMES)) % len(street_types)]
        streets.append(f"{number} {name} {stype}")
    return tuple(dict.fromkeys(streets))


@dataclass(frozen=True)
class ValueDomain:
    """A named entity universe with rendering styles.

    ``pool`` holds canonical (lowercase) values; ``styles`` lists the
    rendering variants :func:`render_value` accepts for this domain.
    """

    name: str
    dtype: DataType
    pool: tuple[str, ...]
    styles: tuple[str, ...] = ("title",)

    def __post_init__(self) -> None:
        if not self.pool:
            raise ValueError(f"domain {self.name!r} has an empty pool")


DOMAINS: dict[str, ValueDomain] = {
    d.name: d
    for d in (
        ValueDomain(
            "company",
            DataType.STRING,
            vocab.COMPANY_NAMES,
            styles=("title", "upper", "lower", "no_suffix"),
        ),
        ValueDomain(
            "person",
            DataType.STRING,
            PERSON_NAMES,
            styles=("title", "upper", "last_first"),
        ),
        ValueDomain("city", DataType.STRING, vocab.CITIES, styles=("title", "upper")),
        ValueDomain("country", DataType.STRING, vocab.COUNTRIES, styles=("title", "upper")),
        ValueDomain("state", DataType.STRING, vocab.US_STATES, styles=("title", "upper")),
        ValueDomain("sector", DataType.STRING, vocab.SECTORS, styles=("title",)),
        ValueDomain(
            "industry_group", DataType.STRING, vocab.INDUSTRY_GROUPS, styles=("title",)
        ),
        ValueDomain("product", DataType.STRING, vocab.PRODUCT_NAMES, styles=("title", "lower")),
        ValueDomain(
            "category", DataType.STRING, vocab.PRODUCT_CATEGORIES, styles=("title", "lower")
        ),
        ValueDomain("job_title", DataType.STRING, vocab.JOB_TITLES, styles=("title",)),
        ValueDomain(
            "ticker",
            DataType.STRING,
            tuple(vocab.TICKER_OF_COMPANY.values()),
            styles=("upper",),
        ),
        ValueDomain("cuisine", DataType.STRING, vocab.CUISINES, styles=("title", "lower")),
        ValueDomain("color", DataType.STRING, vocab.COLORS, styles=("title", "lower")),
        ValueDomain("email", DataType.STRING, _email_pool(), styles=("lower",)),
        ValueDomain("street", DataType.STRING, _street_pool(), styles=("title",)),
        ValueDomain("endpoint", DataType.STRING, vocab.ENDPOINTS, styles=("lower",)),
        ValueDomain("currency", DataType.STRING, vocab.CURRENCIES, styles=("upper", "lower")),
    )
}


def domain(name: str) -> ValueDomain:
    """Look up a domain by name."""
    try:
        return DOMAINS[name]
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; available: {', '.join(sorted(DOMAINS))}"
        ) from None


def render_value(domain_name: str, value: str, style: str) -> str:
    """Render a canonical pool value in one of the domain's styles."""
    styles = domain(domain_name).styles
    if style not in styles:
        raise ValueError(
            f"domain {domain_name!r} does not support style {style!r}; "
            f"supported: {styles}"
        )
    if style == "title":
        return value.title()
    if style == "upper":
        return value.upper()
    if style == "lower":
        return value
    if style == "no_suffix":
        words = value.split()
        return " ".join(words[:-1]).title() if len(words) > 1 else value.title()
    if style == "last_first":
        words = value.split()
        if len(words) >= 2:
            return f"{words[-1].title()}, {' '.join(words[:-1]).title()}"
        return value.title()
    raise AssertionError(f"style {style!r} declared but not implemented")


def draw_subset(
    domain_name: str, rng: np.random.Generator, size: int, *, anchor: int | None = None
) -> tuple[str, ...]:
    """Draw ``size`` distinct canonical values from a domain pool.

    With ``anchor`` set, the subset is a contiguous slice starting at that
    pool offset — useful for carving deliberately disjoint subsets (hard
    negatives) out of one domain.
    """
    pool = domain(domain_name).pool
    size = min(size, len(pool))
    if anchor is not None:
        start = anchor % len(pool)
        doubled = pool + pool
        return tuple(doubled[start : start + size])
    indices = rng.choice(len(pool), size=size, replace=False)
    return tuple(pool[int(index)] for index in indices)


def materialize_values(
    subset: tuple[str, ...],
    n_rows: int,
    rng: np.random.Generator,
    *,
    domain_name: str,
    style: str = "title",
    null_fraction: float = 0.0,
    skew: float = 1.2,
) -> list[str | None]:
    """Expand a distinct-value subset into a realistic column payload.

    Values repeat with a Zipf-like skew (join columns are rarely uniform),
    rows are shuffled, and ``null_fraction`` of cells are nulled.  Every
    subset value appears at least once when ``n_rows >= len(subset)``, so the
    column's distinct set equals the subset — the property the ground-truth
    labelling relies on.
    """
    if not subset:
        raise ValueError("cannot materialize from an empty subset")
    if not 0.0 <= null_fraction < 1.0:
        raise ValueError(f"null_fraction must be in [0, 1), got {null_fraction}")
    size = len(subset)
    if n_rows >= size:
        base = list(range(size))
        weights = 1.0 / np.arange(1, size + 1, dtype=np.float64) ** skew
        weights /= weights.sum()
        extra = rng.choice(size, size=n_rows - size, p=weights)
        indices = np.concatenate([np.asarray(base), extra])
    else:
        indices = rng.choice(size, size=n_rows, replace=False)
    rng.shuffle(indices)
    rendered = [render_value(domain_name, subset[int(i)], style) for i in indices]
    if null_fraction > 0.0:
        null_mask = rng.random(n_rows) < null_fraction
        rendered = [
            None if null_mask[row] else value for row, value in enumerate(rendered)
        ]
    return rendered


# -- non-entity data shapes ----------------------------------------------------


def code_pool(prefix: str, size: int, *, width: int = 5, start: int = 1) -> tuple[str, ...]:
    """Codes like ``CUST-00042``: one shared prefix, zero-padded counters."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return tuple(f"{prefix}-{number:0{width}d}" for number in range(start, start + size))


def sequential_ids(start: int, n_rows: int) -> list[int]:
    """Unique integer ids ``start .. start + n_rows - 1``."""
    return list(range(start, start + n_rows))


def random_dates(
    rng: np.random.Generator,
    n_rows: int,
    *,
    start: str = "2015-01-01",
    end: str = "2023-12-31",
) -> list[str]:
    """ISO dates drawn uniformly from [start, end]."""
    start_date = date.fromisoformat(start)
    end_date = date.fromisoformat(end)
    span = (end_date - start_date).days
    if span < 0:
        raise ValueError(f"start {start} is after end {end}")
    offsets = rng.integers(0, span + 1, size=n_rows)
    return [(start_date + timedelta(days=int(offset))).isoformat() for offset in offsets]


def lognormal_amounts(
    rng: np.random.Generator,
    n_rows: int,
    *,
    mean: float = 4.0,
    sigma: float = 1.0,
    decimals: int = 2,
) -> list[float]:
    """Positive skewed amounts (prices, revenues)."""
    return [round(float(x), decimals) for x in rng.lognormal(mean, sigma, size=n_rows)]


def uniform_ints(
    rng: np.random.Generator, n_rows: int, low: int, high: int
) -> list[int]:
    """Uniform integers in [low, high]."""
    return [int(x) for x in rng.integers(low, high + 1, size=n_rows)]


def uniform_floats(
    rng: np.random.Generator,
    n_rows: int,
    low: float,
    high: float,
    *,
    decimals: int = 4,
) -> list[float]:
    """Uniform floats in [low, high]."""
    return [round(float(x), decimals) for x in rng.uniform(low, high, size=n_rows)]
