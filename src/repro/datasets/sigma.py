"""Sigma Sample Database: the paper's qualitative, cross-database corpus.

The real corpus is a Snowflake database available to Sigma accounts, mixing
retail, financial, demographic, and usage data; the paper reports 98 tables
and 1,343 columns with no ground truth (§4.3.3 evaluates it with an ad-hoc
user study).  We rebuild its published structure:

* a **SALESFORCE** database whose ``ACCOUNT.Name`` column is the running
  example's query;
* a **STOCKS** database whose ``INDUSTRIES`` table carries
  ``Company Name`` / ``Industry Group`` / ``Ticker`` — the discovery chain
  Joey walks in the paper (Name → Company Name → Ticker → PRICES);
* retail, census, restaurant, bike-share, usage, and finance databases;
* snapshot/copy tables (``ACCOUNT_2021`` and friends) padding the corpus to
  the published ~98-table scale — faithfully to life, since enterprise
  warehouses are full of such copies.

Company subsets are arranged so the Joey scenario reproduces: LEAD.Company
overlaps ACCOUNT.Name heavily (same database, same rendering), while
INDUSTRIES."Company Name" covers nearly the whole company universe but
renders UPPERCASE — joinable only semantically.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.datasets import domains as dom
from repro.datasets.base import TableCorpus
from repro.datasets.vocabularies import TICKER_OF_COMPANY
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.warehouse.catalog import Warehouse

__all__ = ["generate_sigma_sample_database", "JOEY_QUERY"]

# The running example's query column, importable by examples and benches.
JOEY_QUERY = ("SALESFORCE", "ACCOUNT", "Name")


def _entity(
    name: str,
    domain_name: str,
    subset: tuple,
    n_rows: int,
    rng: np.random.Generator,
    *,
    style: str | None = None,
    null_fraction: float = 0.0,
) -> Column:
    values = dom.materialize_values(
        subset,
        n_rows,
        rng,
        domain_name=domain_name,
        style=style or dom.domain(domain_name).styles[0],
        null_fraction=null_fraction,
    )
    return Column(name, values, DataType.STRING)


def _dates(name: str, n_rows: int, rng: np.random.Generator) -> Column:
    return Column(name, dom.random_dates(rng, n_rows), DataType.DATE, coerce=True)


def _amounts(name: str, n_rows: int, rng: np.random.Generator, **kwargs) -> Column:
    return Column(name, dom.lognormal_amounts(rng, n_rows, **kwargs), DataType.FLOAT)


def _ints(name: str, n_rows: int, rng, low: int, high: int) -> Column:
    return Column(name, dom.uniform_ints(rng, n_rows, low, high), DataType.INTEGER)


def _floats(name: str, n_rows: int, rng, low: float, high: float) -> Column:
    return Column(name, dom.uniform_floats(rng, n_rows, low, high), DataType.FLOAT)


def _snapshot(table: Table, suffix: str, rng: np.random.Generator) -> Table:
    """A snapshot copy: subset of rows under a year-stamped name."""
    keep = max(10, int(table.row_count * float(rng.uniform(0.4, 0.9))))
    indices = np.sort(rng.choice(table.row_count, size=keep, replace=False))
    return table.take([int(i) for i in indices]).rename(f"{table.name}_{suffix}")


def generate_sigma_sample_database(
    *,
    seed: int = 17,
    rows_scale: float = 1.0,
    with_snapshots: bool = True,
) -> TableCorpus:
    """Generate the Sigma Sample Database corpus (no ground truth)."""
    if rows_scale <= 0:
        raise ValueError(f"rows_scale must be positive, got {rows_scale}")
    rng = rng_for("sigma", seed)
    rows = lambda base: max(12, int(base * rows_scale))  # noqa: E731

    warehouse = Warehouse("sigma_sample_database")
    company_pool = dom.domain("company").pool

    # Company universes: INDUSTRIES covers a wide slice of the public-company
    # world; ACCOUNT holds the slice of companies that are customers; LEAD
    # overlaps ACCOUNT heavily plus prospects ACCOUNT lacks.
    industries_universe = company_pool[:1200]
    account_universe = company_pool[100:500]
    lead_universe = company_pool[250:700]

    # -- SALESFORCE ------------------------------------------------------------
    n_accounts = rows(2_000)
    account = Table(
        "ACCOUNT",
        [
            Column(
                "Account_Id",
                list(dom.code_pool("acct", n_accounts)),
                DataType.STRING,
            ),
            _entity("Name", "company", account_universe, n_accounts, rng),
            _entity("Billing_City", "city", dom.domain("city").pool[:80], n_accounts, rng),
            _entity("Billing_State", "state", dom.domain("state").pool, n_accounts, rng),
            _amounts("Annual_Revenue", n_accounts, rng, mean=13.0, sigma=1.2),
            _ints("Employee_Count", n_accounts, rng, 10, 250_000),
            _dates("Created_Date", n_accounts, rng),
        ],
        primary_key="Account_Id",
    )
    n_leads = rows(3_000)
    lead = Table(
        "LEAD",
        [
            Column("Lead_Id", list(dom.code_pool("lead", n_leads)), DataType.STRING),
            _entity("Company", "company", lead_universe, n_leads, rng),
            _entity("Contact_Name", "person", dom.PERSON_NAMES[:900], n_leads, rng),
            _entity("Title", "job_title", dom.domain("job_title").pool, n_leads, rng),
            _entity("Email", "email", dom.domain("email").pool[:900], n_leads, rng),
            _entity("City", "city", dom.domain("city").pool[:80], n_leads, rng),
            _dates("Created_Date", n_leads, rng),
        ],
        primary_key="Lead_Id",
    )
    n_contacts = rows(2_500)
    contact = Table(
        "CONTACT",
        [
            Column("Contact_Id", list(dom.code_pool("cont", n_contacts)), DataType.STRING),
            _entity("Name", "person", dom.PERSON_NAMES[:1200], n_contacts, rng),
            _entity("Account_Name", "company", account_universe, n_contacts, rng),
            _entity("Email", "email", dom.domain("email").pool[:1200], n_contacts, rng),
            _entity("Mailing_City", "city", dom.domain("city").pool[:80], n_contacts, rng),
            _dates("Last_Activity", n_contacts, rng),
        ],
        primary_key="Contact_Id",
    )
    n_opps = rows(1_500)
    opportunity = Table(
        "OPPORTUNITY",
        [
            Column("Opportunity_Id", list(dom.code_pool("opp", n_opps)), DataType.STRING),
            Column(
                "Account_Id",
                [
                    f"acct-{int(i):05d}"
                    for i in rng.integers(1, max(2, int(n_accounts * 0.8)), size=n_opps)
                ],
                DataType.STRING,
            ),
            _amounts("Amount", n_opps, rng, mean=10.0, sigma=1.0),
            _entity(
                "Stage",
                "category",
                ("prospecting", "qualification", "proposal", "negotiation", "closed won", "closed lost"),
                n_opps,
                rng,
                style="title",
            ),
            _dates("Close_Date", n_opps, rng),
        ],
        primary_key="Opportunity_Id",
    )
    for table in (account, lead, contact, opportunity):
        warehouse.add_table("SALESFORCE", table)

    # -- STOCKS -----------------------------------------------------------------
    n_industries = len(industries_universe)
    industry_rng = rng_for("sigma-industries", seed)
    tickers = tuple(TICKER_OF_COMPANY[company] for company in industries_universe)
    industries = Table(
        "INDUSTRIES",
        [
            Column(
                "Company_Name",
                [value.upper() for value in industries_universe],
                DataType.STRING,
            ),
            Column("Ticker", list(tickers), DataType.STRING),
            _entity(
                "Industry_Group",
                "industry_group",
                dom.domain("industry_group").pool,
                n_industries,
                industry_rng,
            ),
            _entity("Sector", "sector", dom.domain("sector").pool, n_industries, industry_rng),
        ],
        primary_key="Ticker",
    )
    n_prices = rows(5_000)
    price_tickers = [tickers[int(i)] for i in rng.integers(0, len(tickers), size=n_prices)]
    prices = Table(
        "PRICES",
        [
            Column("Ticker", price_tickers, DataType.STRING),
            _dates("Trade_Date", n_prices, rng),
            _floats("Open", n_prices, rng, 5, 900),
            _floats("Close", n_prices, rng, 5, 900),
            _ints("Volume", n_prices, rng, 1_000, 40_000_000),
        ],
    )
    n_securities = rows(1_000)
    securities = Table(
        "SECURITIES",
        [
            Column(
                "Ticker",
                [tickers[int(i)] for i in rng.integers(0, len(tickers), size=n_securities)],
                DataType.STRING,
            ),
            _entity(
                "Exchange",
                "category",
                ("nyse", "nasdaq", "amex", "lse", "tse"),
                n_securities,
                rng,
                style="title",
            ),
            _entity("Currency", "currency", dom.domain("currency").pool, n_securities, rng),
            _floats("Beta", n_securities, rng, 0.2, 3.0),
        ],
    )
    for table in (industries, prices, securities):
        warehouse.add_table("STOCKS", table)

    # -- RETAIL -----------------------------------------------------------------
    n_products = rows(1_200)
    sku_pool = dom.code_pool("sku", n_products)
    products = Table(
        "PRODUCTS",
        [
            Column("Sku", list(sku_pool), DataType.STRING),
            _entity("Product_Name", "product", dom.domain("product").pool[:700], n_products, rng),
            _entity("Category", "category", dom.domain("category").pool, n_products, rng),
            _entity(
                "Brand",
                "company",
                company_pool[400:900],
                n_products,
                rng,
                style="no_suffix",
            ),
            _amounts("Price", n_products, rng, mean=3.2, sigma=0.9),
        ],
        primary_key="Sku",
    )
    n_stores = rows(150)
    stores = Table(
        "STORES",
        [
            Column("Store_Id", list(dom.code_pool("st", n_stores, width=4)), DataType.STRING),
            _entity("City", "city", dom.domain("city").pool[:100], n_stores, rng),
            _entity("State", "state", dom.domain("state").pool, n_stores, rng),
            _ints("Square_Feet", n_stores, rng, 2_000, 120_000),
        ],
        primary_key="Store_Id",
    )
    n_transactions = rows(8_000)
    transactions = Table(
        "TRANSACTIONS",
        [
            Column(
                "Transaction_Id",
                dom.sequential_ids(1, n_transactions),
                DataType.INTEGER,
            ),
            Column(
                "Sku",
                [sku_pool[int(i)] for i in rng.integers(0, int(len(sku_pool) * 0.85), size=n_transactions)],
                DataType.STRING,
            ),
            Column(
                "Store_Id",
                [
                    f"st-{int(i):04d}"
                    for i in rng.integers(1, max(2, int(n_stores * 0.9)), size=n_transactions)
                ],
                DataType.STRING,
            ),
            _ints("Quantity", n_transactions, rng, 1, 12),
            _amounts("Amount", n_transactions, rng, mean=3.5, sigma=1.0),
            _dates("Sold_At", n_transactions, rng),
        ],
    )
    n_customers = rows(2_000)
    customers = Table(
        "CUSTOMERS",
        [
            Column("Loyalty_Id", list(dom.code_pool("loy", n_customers)), DataType.STRING),
            _entity("Customer_Name", "person", dom.PERSON_NAMES[:1500], n_customers, rng),
            _entity("Email", "email", dom.domain("email").pool[:1500], n_customers, rng),
            _entity("City", "city", dom.domain("city").pool[:100], n_customers, rng),
        ],
        primary_key="Loyalty_Id",
    )
    for table in (products, stores, transactions, customers):
        warehouse.add_table("RETAIL", table)

    # -- CENSUS -------------------------------------------------------------------
    n_cities = min(len(dom.domain("city").pool), rows(120))
    census_rng = rng_for("sigma-census", seed)
    demographics = Table(
        "DEMOGRAPHICS",
        [
            _entity("City", "city", dom.domain("city").pool[:n_cities], n_cities, census_rng),
            _entity("State", "state", dom.domain("state").pool, n_cities, census_rng),
            _ints("Population", n_cities, census_rng, 5_000, 9_000_000),
            _ints("Median_Income", n_cities, census_rng, 28_000, 160_000),
            _floats("Median_Age", n_cities, census_rng, 22, 55),
        ],
    )
    housing = Table(
        "HOUSING",
        [
            _entity("City", "city", dom.domain("city").pool[:n_cities], n_cities, census_rng),
            _ints("Median_Home_Price", n_cities, census_rng, 90_000, 2_500_000),
            _ints("Housing_Units", n_cities, census_rng, 2_000, 3_500_000),
        ],
    )
    for table in (demographics, housing):
        warehouse.add_table("CENSUS", table)

    # -- RESTAURANTS ---------------------------------------------------------------
    n_venues = rows(600)
    venues = Table(
        "VENUES",
        [
            Column("Venue_Id", list(dom.code_pool("ven", n_venues)), DataType.STRING),
            _entity("Owner", "person", dom.PERSON_NAMES[:400], n_venues, rng),
            _entity("Cuisine", "cuisine", dom.domain("cuisine").pool, n_venues, rng),
            _entity("City", "city", dom.domain("city").pool[:100], n_venues, rng),
            _floats("Rating", n_venues, rng, 1.0, 5.0),
        ],
        primary_key="Venue_Id",
    )
    n_inspections = rows(1_800)
    inspections = Table(
        "INSPECTIONS",
        [
            Column(
                "Venue_Id",
                [
                    f"ven-{int(i):05d}"
                    for i in rng.integers(1, max(2, int(n_venues * 0.8)), size=n_inspections)
                ],
                DataType.STRING,
            ),
            _dates("Inspected_On", n_inspections, rng),
            _ints("Score", n_inspections, rng, 55, 100),
        ],
    )
    for table in (venues, inspections):
        warehouse.add_table("RESTAURANTS", table)

    # -- BIKES ------------------------------------------------------------------------
    n_stations = rows(200)
    bikes_rng = rng_for("sigma-bikes", seed)
    stations = Table(
        "STATIONS",
        [
            Column("Station_Id", dom.sequential_ids(1, n_stations), DataType.INTEGER),
            _entity("City", "city", dom.domain("city").pool[:40], n_stations, bikes_rng),
            _ints("Docks", n_stations, bikes_rng, 8, 60),
            _floats("Lat", n_stations, bikes_rng, 25.0, 48.0),
            _floats("Lon", n_stations, bikes_rng, -123.0, -71.0),
        ],
        primary_key="Station_Id",
    )
    n_trips = rows(6_000)
    trips = Table(
        "TRIPS",
        [
            Column("Trip_Id", dom.sequential_ids(1, n_trips), DataType.INTEGER),
            _ints("Start_Station", n_trips, bikes_rng, 1, n_stations),
            _ints("End_Station", n_trips, bikes_rng, 1, n_stations),
            _ints("Duration_Sec", n_trips, bikes_rng, 60, 7_200),
            _dates("Started_At", n_trips, bikes_rng),
        ],
    )
    for table in (stations, trips):
        warehouse.add_table("BIKES", table)

    # -- USAGE -------------------------------------------------------------------------
    usage_rng = rng_for("sigma-usage", seed)
    n_logs = rows(9_000)
    server_logs = Table(
        "SERVER_LOGS",
        [
            _dates("Logged_At", n_logs, usage_rng),
            _entity("Endpoint", "endpoint", dom.domain("endpoint").pool, n_logs, usage_rng),
            _ints("Status", n_logs, usage_rng, 200, 599),
            _ints("Latency_Ms", n_logs, usage_rng, 1, 4_000),
        ],
    )
    n_app = rows(2_500)
    app_usage = Table(
        "APP_USAGE",
        [
            _entity("User_Email", "email", dom.domain("email").pool[:1000], n_app, usage_rng),
            _entity(
                "Feature",
                "category",
                ("workbooks", "lookup", "dashboards", "alerts", "exports", "api"),
                n_app,
                usage_rng,
                style="title",
            ),
            _ints("Sessions", n_app, usage_rng, 1, 120),
            _dates("Used_On", n_app, usage_rng),
        ],
    )
    n_meter = rows(1_200)
    metering = Table(
        "METERING",
        [
            Column(
                "Account_Id",
                [
                    f"acct-{int(i):05d}"
                    for i in usage_rng.integers(1, max(2, n_accounts), size=n_meter)
                ],
                DataType.STRING,
            ),
            _ints("Bytes_Scanned", n_meter, usage_rng, 10_000, 2_000_000_000),
            _ints("Query_Count", n_meter, usage_rng, 1, 50_000),
            _dates("Metered_On", n_meter, usage_rng),
        ],
    )
    for table in (server_logs, app_usage, metering):
        warehouse.add_table("USAGE", table)

    # -- FINANCE -----------------------------------------------------------------------
    finance_rng = rng_for("sigma-finance", seed)
    n_daily = rows(4_000)
    daily = Table(
        "DAILY_ATTRIBUTES",
        [
            Column(
                "Ticker",
                [tickers[int(i)] for i in finance_rng.integers(0, len(tickers), size=n_daily)],
                DataType.STRING,
            ),
            _dates("As_Of", n_daily, finance_rng),
            _floats("Pe_Ratio", n_daily, finance_rng, 3.0, 80.0),
            _floats("Dividend_Yield", n_daily, finance_rng, 0.0, 8.0),
            _floats("Beta", n_daily, finance_rng, 0.2, 3.0),
        ],
    )
    n_portfolio = rows(800)
    portfolios = Table(
        "PORTFOLIOS",
        [
            Column("Portfolio_Id", list(dom.code_pool("pf", n_portfolio, width=4)), DataType.STRING),
            Column(
                "Ticker",
                [tickers[int(i)] for i in finance_rng.integers(0, len(tickers), size=n_portfolio)],
                DataType.STRING,
            ),
            _floats("Weight", n_portfolio, finance_rng, 0.001, 0.2),
        ],
    )
    for table in (daily, portfolios):
        warehouse.add_table("FINANCE", table)

    # -- snapshot copies pad the corpus to the published ~98-table scale --------
    if with_snapshots:
        snapshot_rng = rng_for("sigma-snapshots", seed)
        originals = list(warehouse.table_refs())
        years = ("2019", "2020", "2021", "2022")
        for database_name, table in originals:
            n_copies = int(snapshot_rng.integers(2, 5))
            for copy_index in range(n_copies):
                snapshot = _snapshot(table, years[copy_index % len(years)], snapshot_rng)
                warehouse.add_table(database_name, snapshot)

    return TableCorpus("sigma", warehouse)
