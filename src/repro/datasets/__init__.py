"""Dataset substrate: deterministic synthetic corpora mirroring the paper.

The paper evaluates on three repositories (Table 1): the NextiaJD testbeds
(XS/S/M/L), Spider, and the Sigma Sample Database, plus it assumes a large
web-table corpus behind its pretrained embeddings.  None are redistributable
here, so each is regenerated synthetically with the same *shape*: table /
column / row-count profiles, join-quality ground-truth labelling rule
(NextiaJD), PK/FK join paths (Spider), and the cross-database Joey scenario
(Sigma).  All generation is seeded and deterministic.
"""

from repro.datasets.base import GroundTruth, JoinQuery, TableCorpus
from repro.datasets.nextiajd import TESTBED_PROFILES, generate_testbed
from repro.datasets.quality import JoinQuality, label_quality
from repro.datasets.sigma import generate_sigma_sample_database
from repro.datasets.spider import generate_spider_corpus
from repro.datasets.webcorpus import WebTableCorpus, default_training_corpus

__all__ = [
    "GroundTruth",
    "JoinQuality",
    "JoinQuery",
    "TableCorpus",
    "TESTBED_PROFILES",
    "WebTableCorpus",
    "default_training_corpus",
    "generate_sigma_sample_database",
    "generate_spider_corpus",
    "generate_testbed",
    "label_quality",
]
