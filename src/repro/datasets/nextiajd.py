"""NextiaJD testbed generators (testbedXS / S / M / L).

Flores et al. compose four testbeds of open CSV datasets binned by file
size; the paper evaluates on them with ground truth = attribute pairs whose
NextiaJD join quality is Good or High.  We regenerate testbeds with the same
*structure*:

* the published table/column counts per testbed, with row counts scaled
  down by default so experiments run on one machine (the paper's M testbed
  averages 3.2M rows; scale factors are recorded in the profile and
  reported by the Table 1 benchmark);
* planted **join groups**: columns across tables drawing nested subsets of
  one value domain.  Nesting produces the full spectrum of containment /
  cardinality-proportion combinations — including the high-containment /
  low-Jaccard pairs on which embedding search beats thresholded MinHash;
* **hard negatives**: same-domain columns with disjoint value subsets
  (semantically similar, not joinable) and cross-style variants (joinable
  only after transformation, hence *not* labelled by the syntactic rule);
* numeric / date / id noise columns filling each table to its column quota.

Ground truth is then computed *post hoc* from the generated data with the
NextiaJD quality rule (:mod:`repro.datasets.quality`), so labels reflect
actual value overlap, never generator intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro._util import rng_for
from repro.datasets import domains as dom
from repro.datasets.base import TableCorpus
from repro.datasets.quality import compute_ground_truth
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.warehouse.catalog import Warehouse

__all__ = ["TestbedProfile", "TESTBED_PROFILES", "generate_testbed"]


@dataclass(frozen=True)
class TestbedProfile:
    """Shape of one testbed, with the paper's published statistics attached."""

    key: str
    n_tables: int
    columns_per_table: int
    rows_low: int
    rows_high: int
    n_groups: int
    paper_tables: int
    paper_columns: int
    paper_avg_rows: int
    paper_queries: int
    paper_avg_answers: float

    @property
    def name(self) -> str:
        """Corpus name, e.g. ``testbedS``."""
        return f"testbed{self.key}"

    @property
    def row_scale_note(self) -> float:
        """Default-rows / paper-rows ratio (documentation aid)."""
        default_avg = (self.rows_low + self.rows_high) / 2
        return default_avg / self.paper_avg_rows


TESTBED_PROFILES: dict[str, TestbedProfile] = {
    profile.key: profile
    for profile in (
        TestbedProfile(
            key="XS",
            n_tables=28,
            columns_per_table=9,
            rows_low=600,
            rows_high=3400,
            n_groups=9,
            paper_tables=28,
            paper_columns=257,
            paper_avg_rows=1_938,
            paper_queries=35,
            paper_avg_answers=2.8,
        ),
        TestbedProfile(
            key="S",
            n_tables=46,
            columns_per_table=18,
            rows_low=300,
            rows_high=1_200,
            n_groups=42,
            paper_tables=46,
            paper_columns=2_553,
            paper_avg_rows=209_646,
            paper_queries=177,
            paper_avg_answers=3.6,
        ),
        TestbedProfile(
            key="M",
            n_tables=46,
            columns_per_table=23,
            rows_low=1_200,
            rows_high=4_800,
            n_groups=46,
            paper_tables=46,
            paper_columns=1_067,
            paper_avg_rows=3_175_904,
            paper_queries=188,
            paper_avg_answers=4.4,
        ),
        TestbedProfile(
            key="L",
            n_tables=19,
            columns_per_table=28,
            rows_low=2_500,
            rows_high=9_500,
            n_groups=22,
            paper_tables=19,
            paper_columns=541,
            paper_avg_rows=12_288_165,
            paper_queries=92,
            paper_avg_answers=3.6,
        ),
    )
}

# Entity domains used for join groups, with column-name synonyms.  The
# rotation order interleaves big and small pools.
_GROUP_CONCEPTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("company", ("company", "company_name", "vendor", "organization", "supplier")),
    ("person", ("name", "full_name", "contact_name", "customer_name", "employee")),
    ("city", ("city", "town", "location_city", "municipality")),
    ("product", ("product", "product_name", "item", "item_name")),
    ("country", ("country", "nation", "country_name")),
    ("email", ("email", "email_address", "contact_email")),
    ("category", ("category", "product_category", "dept")),
    ("state", ("state", "province", "region")),
    ("street", ("address", "street_address", "billing_address")),
    ("job_title", ("title", "job_title", "position", "role")),
    ("ticker", ("ticker", "symbol", "stock_symbol")),
)

# Code-style key groups: (prefix, name synonyms).
_CODE_CONCEPTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("cust", ("customer_id", "cust_id", "client_id")),
    ("ord", ("order_id", "order_no", "order_ref")),
    ("sku", ("sku", "product_code", "item_code")),
    ("emp", ("employee_id", "emp_id", "staff_id")),
    ("inv", ("invoice_id", "invoice_no", "bill_id")),
)

# Unhelpful names given to dirty (contaminated) member columns.
_GENERIC_NAMES: tuple[str, ...] = (
    "data", "value", "field", "entry", "label", "text", "info", "misc",
)

_NOISE_SHAPES: tuple[tuple[str, str], ...] = (
    ("amount", "amount"),
    ("quantity", "int:1:500"),
    ("rating", "float:1:5"),
    ("created_at", "date"),
    ("price", "amount"),
    ("year", "int:1990:2023"),
    ("score", "float:0:100"),
    ("updated_at", "date"),
    ("discount_pct", "float:0:60"),
    ("total", "amount"),
    ("stock_level", "int:0:10000"),
    ("weight_kg", "float:0:80"),
)


@dataclass
class _MemberPlan:
    """One planted column: which table slot, values, name, style.

    ``contamination`` optionally mixes in values from a *different* domain:
    the column stays labelled joinable (its base subset keeps containment
    high) but its embedding drifts away from the group centroid — the
    realistic dirty-data case that caps every system's recall in Figure 4.
    """

    group_id: int
    column_name: str
    values_kind: str  # "entity" | "code" | "int"
    domain_name: str | None
    subset: tuple
    style: str
    contamination_domain: str | None = None
    contamination: tuple = ()


def _nested_subset_sizes(
    base_size: int, n_members: int, rng: np.random.Generator
) -> list[int]:
    """Sizes for nested member subsets: the hub plus shrinking fractions.

    Fractions span [0.12, 1.0], deliberately crossing the NextiaJD GOOD
    containment boundary (0.5) in both directions so the label structure is
    rich: small/large ratio < 0.5 labels only the small→large direction.
    """
    sizes = [base_size]
    for _ in range(n_members - 1):
        # Log-spread fractions: half the member pairs end up with a size
        # ratio (= Jaccard of nested sets) below 0.35 even though the
        # small→large containment is total — the regime where thresholded
        # MinHash misses joins that embeddings keep.
        fraction = float(10.0 ** rng.uniform(-0.95, 0.0))
        sizes.append(max(3, int(round(fraction * base_size))))
    return sizes


def _plan_groups(
    profile: TestbedProfile, rng: np.random.Generator
) -> list[list[_MemberPlan]]:
    """Plan every join group and its hard negatives.

    Returns a list of member lists; hard negatives are appended as
    singleton groups (group_id -1) so assembly treats them uniformly.
    """
    groups: list[list[_MemberPlan]] = []
    negatives: list[list[_MemberPlan]] = []
    max_base = max(12, int(profile.rows_low * 0.8))
    n_entity = len(_GROUP_CONCEPTS)
    for group_id in range(profile.n_groups):
        kind_draw = rng.random()
        members: list[_MemberPlan] = []
        n_members = int(rng.integers(2, 5))
        base_size = int(rng.integers(12, max_base + 1))
        sizes = _nested_subset_sizes(base_size, n_members, rng)
        if kind_draw < 0.62:
            # Entity-domain group.
            domain_name, synonyms = _GROUP_CONCEPTS[group_id % n_entity]
            pool_size = len(dom.domain(domain_name).pool)
            base_size = min(base_size, pool_size)
            sizes = [min(size, base_size) for size in sizes]
            anchor = (group_id * 311) % pool_size
            base = dom.draw_subset(domain_name, rng, base_size, anchor=anchor)
            default_style = dom.domain(domain_name).styles[0]
            for member_index, size in enumerate(sizes):
                style = default_style
                # ~15% of non-hub members render in an alternate style:
                # semantically joinable, not syntactically labelled.
                alt_styles = [
                    s for s in dom.domain(domain_name).styles if s != default_style
                ]
                if member_index > 0 and alt_styles and rng.random() < 0.15:
                    style = alt_styles[int(rng.integers(0, len(alt_styles)))]
                contamination_domain = None
                contamination: tuple = ()
                column_name = synonyms[member_index % len(synonyms)]
                if member_index > 0 and rng.random() < 0.3:
                    # Dirty member: mix in a disjoint slice of another
                    # domain.  Dirty columns also tend to carry unhelpful
                    # names, so no evidence type gets them for free.
                    other_name, _ = _GROUP_CONCEPTS[
                        (group_id + member_index + 1) % n_entity
                    ]
                    if other_name != domain_name:
                        contamination_domain = other_name
                        other_pool = len(dom.domain(other_name).pool)
                        contamination = dom.draw_subset(
                            other_name,
                            rng,
                            min(other_pool, max(3, int(size * rng.uniform(0.4, 0.9)))),
                            anchor=(group_id * 197) % other_pool,
                        )
                        column_name = _GENERIC_NAMES[
                            int(rng.integers(0, len(_GENERIC_NAMES)))
                        ]
                members.append(
                    _MemberPlan(
                        group_id=group_id,
                        column_name=column_name,
                        values_kind="entity",
                        domain_name=domain_name,
                        subset=base[:size],
                        style=style,
                        contamination_domain=contamination_domain,
                        contamination=contamination,
                    )
                )
            # Hard negatives: same domain, disjoint pool slices.  They share
            # the group's semantics (and often its column names) without
            # sharing values, so they crowd the top-k of every system —
            # the main reason the paper's precision tops out near 0.5.
            if rng.random() < 0.85 and pool_size > 2 * base_size:
                n_negatives = int(rng.integers(1, 4))
                for negative_index in range(n_negatives):
                    negative_anchor = (
                        anchor
                        + (negative_index + 1) * pool_size // (n_negatives + 1)
                    ) % pool_size
                    negative = dom.draw_subset(
                        domain_name, rng, base_size, anchor=negative_anchor
                    )
                    style = default_style
                    alt_styles = [
                        s for s in dom.domain(domain_name).styles if s != default_style
                    ]
                    if alt_styles and rng.random() < 0.25:
                        style = alt_styles[int(rng.integers(0, len(alt_styles)))]
                    negatives.append(
                        [
                            _MemberPlan(
                                group_id=-1,
                                column_name=synonyms[int(rng.integers(0, len(synonyms)))],
                                values_kind="entity",
                                domain_name=domain_name,
                                subset=negative,
                                style=style,
                            )
                        ]
                    )
        elif kind_draw < 0.85:
            # Code-key group: shared prefix, nested ranges.
            prefix, synonyms = _CODE_CONCEPTS[group_id % len(_CODE_CONCEPTS)]
            start = 1 + group_id * 20_000
            base = dom.code_pool(prefix, base_size, start=start)
            for member_index, size in enumerate(sizes):
                members.append(
                    _MemberPlan(
                        group_id=group_id,
                        column_name=synonyms[member_index % len(synonyms)],
                        values_kind="code",
                        domain_name=None,
                        subset=base[:size],
                        style="",
                    )
                )
            # Hard negatives: same prefix and format, distant ranges.
            if rng.random() < 0.8:
                for negative_index in range(int(rng.integers(1, 3))):
                    negative = dom.code_pool(
                        prefix, base_size, start=start + 10_000 * (negative_index + 1)
                    )
                    negatives.append(
                        [
                            _MemberPlan(
                                group_id=-1,
                                column_name=synonyms[int(rng.integers(0, len(synonyms)))],
                                values_kind="code",
                                domain_name=None,
                                subset=negative,
                                style="",
                            )
                        ]
                    )
        else:
            # Integer-key group: nested integer ranges with a shared offset.
            start = 1 + group_id * 50_000
            base = tuple(range(start, start + base_size))
            for member_index, size in enumerate(sizes):
                members.append(
                    _MemberPlan(
                        group_id=group_id,
                        column_name=("ref_id", "fk_id", "link_id", "key_id")[
                            member_index % 4
                        ],
                        values_kind="int",
                        domain_name=None,
                        subset=base[:size],
                        style="",
                    )
                )
        groups.append(members)
    groups.extend(negatives)
    return groups


def _expand_plain(
    subset: tuple, n_rows: int, rng: np.random.Generator
) -> list:
    """Expand a code/int subset into ``n_rows`` values with Zipf-ish skew.

    Mirrors :func:`repro.datasets.domains.materialize_values` minus style
    rendering: full coverage when ``n_rows >= len(subset)``.
    """
    size = len(subset)
    if n_rows >= size:
        weights = 1.0 / np.arange(1, size + 1, dtype=np.float64) ** 1.2
        weights /= weights.sum()
        extra = rng.choice(size, size=n_rows - size, p=weights)
        indices = np.concatenate([np.arange(size), extra])
    else:
        indices = rng.choice(size, size=n_rows, replace=False)
    rng.shuffle(indices)
    return [subset[int(index)] for index in indices]


def _noise_column(
    name: str, shape: str, n_rows: int, rng: np.random.Generator
) -> Column:
    """Build one numeric / date noise column from a shape spec."""
    if shape == "amount":
        return Column(name, dom.lognormal_amounts(rng, n_rows), DataType.FLOAT)
    if shape == "date":
        return Column(name, dom.random_dates(rng, n_rows), DataType.DATE, coerce=True)
    kind, low, high = shape.split(":")
    if kind == "int":
        return Column(name, dom.uniform_ints(rng, n_rows, int(low), int(high)), DataType.INTEGER)
    return Column(
        name, dom.uniform_floats(rng, n_rows, float(low), float(high)), DataType.FLOAT
    )


def _member_column(plan: _MemberPlan, name: str, n_rows: int, rng: np.random.Generator) -> Column:
    """Materialize one planted member column."""
    if plan.values_kind == "entity":
        assert plan.domain_name is not None
        null_fraction = float(rng.uniform(0.0, 0.04))
        main_rows = n_rows
        contaminated: list[str | None] = []
        if plan.contamination:
            # Split rows proportionally to the two subsets' sizes so both
            # keep full distinct coverage where row counts allow.
            share = len(plan.subset) / (len(plan.subset) + len(plan.contamination))
            main_rows = max(len(plan.subset), int(n_rows * share))
            main_rows = min(main_rows, n_rows - 1)
            assert plan.contamination_domain is not None
            contaminated = dom.materialize_values(
                plan.contamination,
                n_rows - main_rows,
                rng,
                domain_name=plan.contamination_domain,
                style=dom.domain(plan.contamination_domain).styles[0],
            )
        values = dom.materialize_values(
            plan.subset,
            main_rows,
            rng,
            domain_name=plan.domain_name,
            style=plan.style,
            null_fraction=null_fraction,
        )
        values = values + contaminated
        indices = rng.permutation(len(values))
        values = [values[int(index)] for index in indices]
        return Column(name, values, DataType.STRING)
    values = _expand_plain(plan.subset, n_rows, rng)
    dtype = DataType.INTEGER if plan.values_kind == "int" else DataType.STRING
    return Column(name, values, dtype)


def generate_testbed(
    key: str,
    *,
    seed: int = 11,
    rows_scale: float = 1.0,
    max_queries: int | None = None,
) -> TableCorpus:
    """Generate one NextiaJD-style testbed corpus.

    ``rows_scale`` multiplies the profile's row range (1.0 = repository
    default, already scaled down from paper sizes); ``max_queries``
    optionally truncates the benchmark query set deterministically.
    """
    try:
        profile = TESTBED_PROFILES[key.upper()]
    except KeyError:
        raise KeyError(
            f"unknown testbed {key!r}; available: {', '.join(TESTBED_PROFILES)}"
        ) from None
    if rows_scale <= 0:
        raise ValueError(f"rows_scale must be positive, got {rows_scale}")

    rng = rng_for("nextiajd", profile.key, seed)
    groups = _plan_groups(profile, rng)

    # Decide table sizes up front.
    rows_low = max(10, int(profile.rows_low * rows_scale))
    rows_high = max(rows_low + 1, int(profile.rows_high * rows_scale))
    table_rows = [int(rng.integers(rows_low, rows_high)) for _ in range(profile.n_tables)]
    table_columns: list[list[Column]] = [[] for _ in range(profile.n_tables)]
    used_names: list[set[str]] = [set() for _ in range(profile.n_tables)]

    def _place(plan: _MemberPlan, table_index: int) -> None:
        base_name = plan.column_name
        name = base_name
        suffix = 2
        while name in used_names[table_index]:
            name = f"{base_name}_{suffix}"
            suffix += 1
        used_names[table_index].add(name)
        column_rng = rng_for(
            "nextiajd-member", profile.key, seed, table_index, name
        )
        table_columns[table_index].append(
            _member_column(plan, name, table_rows[table_index], column_rng)
        )

    # Spread each group's members over distinct tables.
    table_cursor = 0
    for members in groups:
        chosen = rng.permutation(profile.n_tables)[: len(members)]
        if len(chosen) < len(members):  # more members than tables (tiny profiles)
            chosen = np.arange(len(members)) % profile.n_tables
        for plan, table_index in zip(members, chosen):
            _place(plan, int(table_index))
        table_cursor += 1

    # Fill every table up to its column quota with noise.
    for table_index in range(profile.n_tables):
        noise_rng = rng_for("nextiajd-noise", profile.key, seed, table_index)
        shape_offset = int(noise_rng.integers(0, len(_NOISE_SHAPES)))
        # Leading sequential id with a per-table offset: realistic, and the
        # offsets keep unrelated id columns from colliding.
        id_column = Column(
            "id",
            dom.sequential_ids(1 + table_index * 1_000_000, table_rows[table_index]),
            DataType.INTEGER,
        )
        if "id" not in used_names[table_index]:
            table_columns[table_index].insert(0, id_column)
            used_names[table_index].add("id")
        position = 0
        while len(table_columns[table_index]) < profile.columns_per_table:
            shape_name, shape = _NOISE_SHAPES[
                (shape_offset + position) % len(_NOISE_SHAPES)
            ]
            position += 1
            name = shape_name
            suffix = 2
            while name in used_names[table_index]:
                name = f"{shape_name}_{suffix}"
                suffix += 1
            used_names[table_index].add(name)
            table_columns[table_index].append(
                _noise_column(name, shape, table_rows[table_index], noise_rng)
            )

    warehouse = Warehouse(profile.name)
    database_name = profile.name.lower()
    for table_index in range(profile.n_tables):
        table = Table(f"dataset_{table_index:03d}", table_columns[table_index])
        warehouse.add_table(database_name, table)

    corpus = TableCorpus(profile.name, warehouse)
    truth, queries = compute_ground_truth(corpus.to_store())
    if max_queries is not None and len(queries) > max_queries:
        picker = rng_for("nextiajd-queries", profile.key, seed)
        chosen_indices = picker.choice(len(queries), size=max_queries, replace=False)
        queries = [queries[int(i)] for i in sorted(chosen_indices)]
    corpus.ground_truth = truth
    corpus.queries = queries
    return corpus


def paper_summary_rows() -> Iterable[dict[str, object]]:
    """The published Table 1 rows for the four testbeds."""
    for profile in TESTBED_PROFILES.values():
        yield {
            "corpus": profile.name,
            "tables": profile.paper_tables,
            "columns": profile.paper_columns,
            "avg_rows": profile.paper_avg_rows,
            "queries": profile.paper_queries,
            "avg_answers": profile.paper_avg_answers,
        }
