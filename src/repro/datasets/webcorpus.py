"""Synthetic web-table corpus: training data for the embedding model.

Stands in for the Common Crawl web-table corpora (WDC, Dresden) behind the
paper's pretrained Web Table Embeddings.  Tables are generated per *topic*
(companies, people, stocks, geography, retail, restaurants, web logs) with
columns drawn from the shared value domains, then serialized two ways:

* **column sequences** — header tokens followed by cell tokens of one
  column: the strong signal that values of one semantic domain co-occur;
* **row sequences** — tokens across one row: the weak cross-attribute
  signal (a company co-occurs with its sector and ticker).

The same domain pools feed the evaluation corpora, which is the whole
point: pretrained embeddings transfer because web entities and warehouse
entities overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro._util import rng_for
from repro.datasets import domains as dom
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.text.tokenize import split_identifier, tokenize_value

__all__ = ["WebTableCorpus", "generate_web_tables", "default_training_corpus"]


@dataclass
class WebTableCorpus:
    """Generated web tables plus their serialized training sequences."""

    tables: list[Table] = field(default_factory=list)
    column_sequences: list[list[str]] = field(default_factory=list)
    row_sequences: list[list[str]] = field(default_factory=list)

    @property
    def table_count(self) -> int:
        """Number of web tables."""
        return len(self.tables)

    @property
    def token_count(self) -> int:
        """Total tokens across column sequences."""
        return sum(len(sequence) for sequence in self.column_sequences)


# Topic blueprints: (topic weight, [(header, domain or shape, style), ...]).
# Shapes starting with "#" are numeric/date columns (excluded from column
# serialization but present in the tables for realism).
_TOPICS: tuple[tuple[str, float, tuple[tuple[str, str, str], ...]], ...] = (
    (
        "companies",
        1.6,
        (
            ("company_name", "company", "title"),
            ("sector", "sector", "title"),
            ("headquarters_city", "city", "title"),
            ("country", "country", "title"),
            ("employees", "#int:50:200000", ""),
            ("founded", "#int:1900:2022", ""),
        ),
    ),
    (
        "people",
        1.2,
        (
            ("full_name", "person", "title"),
            ("job_title", "job_title", "title"),
            ("city", "city", "title"),
            ("email", "email", "lower"),
            ("employer", "company", "title"),
        ),
    ),
    (
        "stocks",
        1.4,
        (
            ("company", "company", "upper"),
            ("ticker", "ticker", "upper"),
            ("sector", "sector", "title"),
            ("industry_group", "industry_group", "title"),
            ("close_price", "#amount", ""),
        ),
    ),
    (
        "geography",
        0.8,
        (
            ("city", "city", "title"),
            ("state", "state", "title"),
            ("country", "country", "title"),
            ("population", "#int:5000:9000000", ""),
        ),
    ),
    (
        "retail",
        1.2,
        (
            ("product_name", "product", "title"),
            ("category", "category", "title"),
            ("color", "color", "title"),
            ("brand", "company", "no_suffix"),
            ("price", "#amount", ""),
        ),
    ),
    (
        "restaurants",
        0.6,
        (
            ("owner", "person", "title"),
            ("cuisine", "cuisine", "title"),
            ("city", "city", "title"),
            ("street_address", "street", "title"),
            ("rating", "#float:1:5", ""),
        ),
    ),
    (
        "web_logs",
        0.6,
        (
            ("endpoint", "endpoint", "lower"),
            ("currency", "currency", "upper"),
            ("status", "#int:200:599", ""),
            ("latency_ms", "#int:1:2000", ""),
        ),
    ),
)


def _numeric_column(name: str, shape: str, n_rows: int, rng: np.random.Generator) -> Column:
    """Build a numeric column from a ``#kind:...`` shape spec."""
    if shape == "#amount":
        return Column(name, dom.lognormal_amounts(rng, n_rows), DataType.FLOAT)
    kind, *bounds = shape.lstrip("#").split(":")
    low, high = int(bounds[0]), int(bounds[1])
    if kind == "int":
        return Column(name, dom.uniform_ints(rng, n_rows, low, high), DataType.INTEGER)
    if kind == "float":
        return Column(
            name, dom.uniform_floats(rng, n_rows, float(low), float(high)), DataType.FLOAT
        )
    raise ValueError(f"unknown numeric shape {shape!r}")


def _entity_column(
    name: str,
    domain_name: str,
    style: str,
    n_rows: int,
    table_index: int,
    rng: np.random.Generator,
) -> Column:
    """Build an entity column whose subset strides the pool for coverage.

    Anchored slices rotate through the pool across tables, so every pool
    value appears in the corpus with near-uniform frequency — which keeps
    vocabulary coverage high at a small corpus size.
    """
    pool_size = len(dom.domain(domain_name).pool)
    subset_size = min(max(n_rows // 2, 8), pool_size)
    anchor = (table_index * 61) % pool_size
    subset = dom.draw_subset(domain_name, rng, subset_size, anchor=anchor)
    values = dom.materialize_values(
        subset, n_rows, rng, domain_name=domain_name, style=style, skew=0.6
    )
    return Column(name, values, DataType.STRING)


def generate_web_tables(
    n_tables: int = 320,
    *,
    rows_low: int = 40,
    rows_high: int = 90,
    seed: int = 7,
) -> WebTableCorpus:
    """Generate the web-table training corpus (deterministic in ``seed``)."""
    if n_tables <= 0:
        raise ValueError(f"n_tables must be positive, got {n_tables}")
    corpus = WebTableCorpus()
    weights = np.array([weight for _name, weight, _cols in _TOPICS])
    weights = weights / weights.sum()
    topic_rng = rng_for("webcorpus-topics", seed)
    topic_choices = topic_rng.choice(len(_TOPICS), size=n_tables, p=weights)
    for table_index in range(n_tables):
        topic_name, _weight, column_specs = _TOPICS[int(topic_choices[table_index])]
        rng = rng_for("webcorpus-table", seed, table_index)
        n_rows = int(rng.integers(rows_low, rows_high + 1))
        columns: list[Column] = []
        for header, shape, style in column_specs:
            if shape.startswith("#"):
                columns.append(_numeric_column(header, shape, n_rows, rng))
            else:
                columns.append(
                    _entity_column(header, shape, style, n_rows, table_index, rng)
                )
        table = Table(f"web_{topic_name}_{table_index:04d}", columns)
        corpus.tables.append(table)
        _serialize_table(table, corpus)
    return corpus


def _serialize_table(table: Table, corpus: WebTableCorpus) -> None:
    """Append the table's column and row sequences to the corpus."""
    string_columns = [
        column for column in table.columns if column.dtype is DataType.STRING
    ]
    for column in string_columns:
        sequence = list(split_identifier(column.name))
        for value in column.non_null_values():
            sequence.extend(tokenize_value(value))
        if len(sequence) > 1:
            corpus.column_sequences.append(sequence)
    for row_index in range(table.row_count):
        row_tokens: list[str] = []
        for column in string_columns:
            value = column[row_index]
            if value is not None:
                row_tokens.extend(tokenize_value(value))
        if len(row_tokens) > 1:
            corpus.row_sequences.append(row_tokens)


@lru_cache(maxsize=1)
def default_training_corpus() -> WebTableCorpus:
    """The canonical pretraining corpus (cached per process)."""
    return generate_web_tables()
