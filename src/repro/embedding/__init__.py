"""Embedding substrate: token vectors, column encoders, model registry.

The paper uses Web Table Embeddings (Günther et al., 2021) pre-trained on
Common Crawl web tables.  Offline, we train the equivalent in-repo:
:class:`WebTableEmbeddingModel` learns word vectors with PPMI co-occurrence
factorization over a synthetic web-table corpus, and falls back to
deterministic character-n-gram hashing vectors for out-of-vocabulary tokens.
:class:`BertLikeEmbeddingModel` reproduces the §4.4 comparison arm: a deeper
contextual encoder that is deliberately ~10x more expensive per token while
no more effective for join discovery.

:class:`ColumnEncoder` turns a (possibly sampled) column into one unit
vector: serialize → tokenize → embed tokens → aggregate → L2-normalize.
"""

from repro.embedding.base import LRUCache, TokenEmbeddingModel
from repro.embedding.bertlike import BertLikeEmbeddingModel
from repro.embedding.contextual import ContextualColumnEncoder
from repro.embedding.encoder import ColumnEncoder, EncodeStats
from repro.embedding.finetune import (
    ContrastiveFineTuner,
    FineTunedEncoder,
    FineTuneReport,
)
from repro.embedding.hashing import (
    HashingEmbeddingModel,
    hashed_token_matrix,
    hashed_token_vector,
)
from repro.embedding.numeric import numeric_profile_vector
from repro.embedding.registry import available_models, get_model
from repro.embedding.vocab import Vocabulary
from repro.embedding.webtable import WebTableEmbeddingModel

__all__ = [
    "BertLikeEmbeddingModel",
    "ColumnEncoder",
    "ContextualColumnEncoder",
    "ContrastiveFineTuner",
    "EncodeStats",
    "FineTunedEncoder",
    "FineTuneReport",
    "HashingEmbeddingModel",
    "LRUCache",
    "TokenEmbeddingModel",
    "Vocabulary",
    "WebTableEmbeddingModel",
    "available_models",
    "get_model",
    "hashed_token_matrix",
    "hashed_token_vector",
    "numeric_profile_vector",
]
