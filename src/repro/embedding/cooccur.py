"""Co-occurrence accumulation and PPMI weighting.

The Web-table embedding model counts token co-occurrences within a sliding
window over serialized table sequences, re-weights the counts with positive
pointwise mutual information (PPMI), and factorizes the result with a
truncated SVD.  PPMI+SVD is the classic count-based route to word vectors
(Levy & Goldberg, 2014) and is fully deterministic — the right property for
a reproduction that must behave identically on every run.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.embedding.vocab import Vocabulary

__all__ = ["CooccurrenceBuilder", "ppmi_matrix"]


class CooccurrenceBuilder:
    """Accumulates symmetric windowed co-occurrence counts over sequences."""

    def __init__(self, vocabulary: Vocabulary, window: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not vocabulary.is_frozen:
            raise RuntimeError("vocabulary must be frozen before counting")
        self.vocabulary = vocabulary
        self.window = window
        self._counts: Counter[tuple[int, int]] = Counter()

    def add_sequence(self, tokens: Sequence[str], *, weight: float = 1.0) -> None:
        """Count co-occurrences within ``window`` positions in one sequence.

        Pairs are stored with the smaller id first; the matrix is
        symmetrized at build time.  ``weight`` scales the contribution —
        row-serialized sequences use a smaller weight than column-serialized
        ones because cross-attribute affinity is a weaker signal.
        """
        ids = [self.vocabulary.token_id(token) for token in tokens]
        known = [(pos, tid) for pos, tid in enumerate(ids) if tid is not None]
        for left_index, (left_pos, left_id) in enumerate(known):
            for right_index in range(left_index + 1, len(known)):
                right_pos, right_id = known[right_index]
                if right_pos - left_pos > self.window:
                    break
                if left_id == right_id:
                    continue
                key = (left_id, right_id) if left_id < right_id else (right_id, left_id)
                self._counts[key] += weight

    def add_sequences(
        self, sequences: Iterable[Sequence[str]], *, weight: float = 1.0
    ) -> None:
        """Count many sequences."""
        for tokens in sequences:
            self.add_sequence(tokens, weight=weight)

    def build_matrix(self) -> sparse.csr_matrix:
        """Symmetric co-occurrence matrix of shape (V, V)."""
        size = len(self.vocabulary)
        if not self._counts:
            return sparse.csr_matrix((size, size))
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for (left, right), count in self._counts.items():
            rows.extend((left, right))
            cols.extend((right, left))
            data.extend((count, count))
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(size, size), dtype=np.float64
        )

    @property
    def pair_count(self) -> int:
        """Number of distinct co-occurring pairs recorded."""
        return len(self._counts)


def ppmi_matrix(counts: sparse.csr_matrix, *, shift: float = 0.0) -> sparse.csr_matrix:
    """Positive PMI re-weighting of a co-occurrence count matrix.

    ``PMI(i, j) = log(p(i, j) / (p(i) p(j)))`` computed over nonzero cells
    only; negative values (and values below ``shift``) are clipped to zero,
    preserving sparsity.
    """
    total = counts.sum()
    if total == 0:
        return counts.copy()
    coo = counts.tocoo()
    row_sums = np.asarray(counts.sum(axis=1)).ravel()
    col_sums = np.asarray(counts.sum(axis=0)).ravel()
    # p(i,j) / (p(i) p(j)) = count * total / (row_sum * col_sum)
    denominator = row_sums[coo.row] * col_sums[coo.col]
    with np.errstate(divide="ignore"):
        pmi = np.log((coo.data * total) / denominator)
    pmi -= shift
    keep = pmi > 0
    return sparse.csr_matrix(
        (pmi[keep], (coo.row[keep], coo.col[keep])),
        shape=counts.shape,
        dtype=np.float64,
    )
