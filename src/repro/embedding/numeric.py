"""Numeric column featurization.

Embedding tokens of stringified numbers captures value overlap but not
distribution shape.  This module computes a compact, scale-robust profile
vector of a numeric column (log-magnitudes, spread, integrality, quantile
shape) that the column encoder can blend into the embedding and that D3L's
distribution evidence compares directly.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.storage.column import Column

__all__ = [
    "numeric_profile_vector",
    "project_profile",
    "project_profiles",
    "NUMERIC_PROFILE_DIM",
]

NUMERIC_PROFILE_DIM = 16

_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def _signed_log(values: np.ndarray) -> np.ndarray:
    """log1p that preserves sign, mapping any magnitude to a small range."""
    return np.sign(values) * np.log1p(np.abs(values))


def numeric_profile_vector(column: Column) -> np.ndarray:
    """Fixed-length (``NUMERIC_PROFILE_DIM``) profile of a numeric column.

    All features are bounded or log-compressed so columns with wildly
    different scales remain comparable; the vector is L2-normalized.
    Returns the zero vector for non-numeric or empty columns.
    """
    if not column.dtype.is_numeric:
        return np.zeros(NUMERIC_PROFILE_DIM)
    values = column.numeric_array()
    if values.size == 0:
        return np.zeros(NUMERIC_PROFILE_DIM)
    stats = column.stats
    quantiles = np.quantile(values, _QUANTILES)
    spread = float(quantiles[-1] - quantiles[0])
    integral_fraction = float(np.mean(values == np.round(values)))
    negative_fraction = float(np.mean(values < 0))
    zero_fraction = float(np.mean(values == 0))
    features = np.array(
        [
            float(_signed_log(np.array([values.mean()]))[0]),
            float(np.log1p(values.std())),
            float(_signed_log(np.array([quantiles[2]]))[0]),  # median
            float(np.log1p(spread)),
            integral_fraction,
            negative_fraction,
            zero_fraction,
            float(stats.uniqueness),
            float(np.log1p(stats.distinct_count)),
            float(_signed_log(np.array([values.min()]))[0]),
            float(_signed_log(np.array([values.max()]))[0]),
            # quantile shape: log-gaps between consecutive quantiles
            float(np.log1p(max(quantiles[1] - quantiles[0], 0.0))),
            float(np.log1p(max(quantiles[2] - quantiles[1], 0.0))),
            float(np.log1p(max(quantiles[3] - quantiles[2], 0.0))),
            float(np.log1p(max(quantiles[4] - quantiles[3], 0.0))),
            1.0,  # bias feature keeps all-zero columns from vanishing
        ]
    )
    norm = np.linalg.norm(features)
    return features / norm if norm > 0 else features


_PROJECTION_CACHE: dict[int, np.ndarray] = {}


def _projection_matrix(dim: int) -> np.ndarray:
    if dim not in _PROJECTION_CACHE:
        rng = rng_for("numeric-profile-projection", dim)
        matrix = rng.standard_normal((NUMERIC_PROFILE_DIM, dim))
        matrix /= np.sqrt(NUMERIC_PROFILE_DIM)
        _PROJECTION_CACHE[dim] = matrix
    return _PROJECTION_CACHE[dim]


def project_profile(profile: np.ndarray, dim: int) -> np.ndarray:
    """Project a profile vector into the embedding space (deterministic).

    Uses a fixed random Gaussian projection per target ``dim`` so profile
    geometry (cosine structure) is approximately preserved.
    """
    projected = profile @ _projection_matrix(dim)
    norm = np.linalg.norm(projected)
    return projected / norm if norm > 0 else projected


def project_profiles(profiles: np.ndarray, dim: int) -> np.ndarray:
    """Batched :func:`project_profile`: one matmul for a profile block.

    ``profiles`` has shape (n, ``NUMERIC_PROFILE_DIM``); rows project and
    L2-normalize independently (zero rows stay zero), element-wise
    equivalent to the single-profile path.
    """
    projected = np.asarray(profiles) @ _projection_matrix(dim)
    norms = np.linalg.norm(projected, axis=1, keepdims=True)
    np.divide(projected, norms, out=projected, where=norms > 0)
    return projected
