"""Vocabulary: token ids, frequencies, and document frequencies.

Document frequency here counts *columns* containing a token, which is the
natural notion of "document" for tabular corpora; the tf-idf aggregation in
the column encoder uses it to damp boilerplate tokens ("inc", "llc", "the").
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

__all__ = ["Vocabulary"]


class Vocabulary:
    """Frequency-filtered token vocabulary built from token sequences."""

    def __init__(self, min_count: int = 1) -> None:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.min_count = min_count
        self._token_to_id: dict[str, int] = {}
        self._tokens: list[str] = []
        self._counts: Counter[str] = Counter()
        self._doc_freq: Counter[str] = Counter()
        self._n_documents = 0
        self._frozen = False

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __repr__(self) -> str:
        return f"Vocabulary({len(self)} tokens, {self._n_documents} documents)"

    def add_document(self, tokens: Sequence[str]) -> None:
        """Count one document (= one serialized column) of tokens."""
        if self._frozen:
            raise RuntimeError("vocabulary is frozen; cannot add documents")
        self._n_documents += 1
        self._counts.update(tokens)
        self._doc_freq.update(set(tokens))

    def build(self, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Count many documents, then freeze; returns self for chaining."""
        for tokens in documents:
            self.add_document(tokens)
        self.freeze()
        return self

    def freeze(self) -> None:
        """Assign stable ids to all tokens meeting ``min_count``.

        Ids are assigned in (count desc, token asc) order, so the layout is
        deterministic regardless of insertion order.
        """
        if self._frozen:
            return
        kept = [
            token
            for token, count in self._counts.items()
            if count >= self.min_count
        ]
        kept.sort(key=lambda token: (-self._counts[token], token))
        self._tokens = kept
        self._token_to_id = {token: index for index, token in enumerate(kept)}
        self._frozen = True

    @property
    def is_frozen(self) -> bool:
        """True after :meth:`freeze` has run."""
        return self._frozen

    @property
    def tokens(self) -> Sequence[str]:
        """Tokens in id order (frozen vocabularies only)."""
        self._require_frozen()
        return tuple(self._tokens)

    @property
    def n_documents(self) -> int:
        """Number of documents counted."""
        return self._n_documents

    def token_id(self, token: str) -> int | None:
        """Id of ``token`` or None when out of vocabulary."""
        self._require_frozen()
        return self._token_to_id.get(token)

    def token_of(self, token_id: int) -> str:
        """Inverse of :meth:`token_id`."""
        self._require_frozen()
        return self._tokens[token_id]

    def count(self, token: str) -> int:
        """Corpus frequency of ``token`` (0 when unseen)."""
        return self._counts.get(token, 0)

    def document_frequency(self, token: str) -> int:
        """Number of documents containing ``token``."""
        return self._doc_freq.get(token, 0)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency.

        Uses ``log((1 + N) / (1 + df)) + 1`` so unseen tokens get the
        maximum weight rather than a division by zero.
        """
        df = self._doc_freq.get(token, 0)
        return math.log((1 + self._n_documents) / (1 + df)) + 1.0

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("vocabulary must be frozen first; call freeze()")
