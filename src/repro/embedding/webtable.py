"""Web Table Embedding model: PPMI + truncated SVD over a web-table corpus.

Stands in for the pretrained Web Table Embeddings of Günther et al. (2021)
that the paper selects (§4.3).  Training input is a stream of serialized
table sequences (column-major, optionally row-major); the model learns one
vector per vocabulary token.  OOV tokens fall back to hashing-trick vectors
scaled by ``oov_scale`` so learned semantics dominate when available.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
from scipy.sparse.linalg import svds

from repro.embedding.base import LRUCache, TokenEmbeddingModel
from repro.embedding.cooccur import CooccurrenceBuilder, ppmi_matrix
from repro.embedding.hashing import hashed_token_matrix, hashed_token_vector
from repro.embedding.vocab import Vocabulary
from repro.errors import ModelNotTrainedError

__all__ = ["WebTableEmbeddingModel"]


class WebTableEmbeddingModel(TokenEmbeddingModel):
    """Count-based distributional word vectors for tabular tokens.

    Parameters
    ----------
    dim:
        Embedding dimensionality (also the SVD rank).
    window:
        Co-occurrence window within a serialized sequence.
    min_count:
        Vocabulary frequency floor; rarer tokens are handled by the OOV
        fallback.
    oov_scale:
        Norm given to hashing-fallback vectors relative to trained vectors
        (trained vectors are unit length).  Values ``< 1`` keep unseen
        tokens from dominating a column's aggregate.
    cache_size:
        Capacity of the shared LRU token-vector cache behind the batch
        embedding contract (in-vocabulary and OOV rows alike).
    """

    name = "webtable"

    def __init__(
        self,
        dim: int = 64,
        *,
        window: int = 8,
        min_count: int = 2,
        oov_scale: float = 0.4,
        cache_size: int = 65_536,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 0.0 <= oov_scale <= 1.0:
            raise ValueError(f"oov_scale must be in [0, 1], got {oov_scale}")
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.oov_scale = oov_scale
        self.token_cache = LRUCache(cache_size)
        self._vocabulary: Vocabulary | None = None
        self._vectors: np.ndarray | None = None

    def __repr__(self) -> str:
        state = f"{len(self._vocabulary)} tokens" if self.is_trained else "untrained"
        return f"WebTableEmbeddingModel(dim={self.dim}, {state})"

    # -- training --------------------------------------------------------------

    def fit(
        self,
        column_sequences: Iterable[Sequence[str]],
        row_sequences: Iterable[Sequence[str]] = (),
        *,
        row_weight: float = 0.25,
    ) -> "WebTableEmbeddingModel":
        """Train token vectors from serialized table sequences.

        ``column_sequences`` carry the strong signal (values of one column
        share a domain); ``row_sequences`` add weak cross-attribute affinity
        at ``row_weight`` strength.
        """
        column_sequences = [list(seq) for seq in column_sequences]
        row_sequences = [list(seq) for seq in row_sequences]
        if not column_sequences:
            raise ValueError("cannot fit on an empty corpus")
        vocabulary = Vocabulary(min_count=self.min_count)
        vocabulary.build(column_sequences)
        if len(vocabulary) == 0:
            raise ValueError(
                f"no token met min_count={self.min_count}; corpus too small"
            )
        builder = CooccurrenceBuilder(vocabulary, window=self.window)
        builder.add_sequences(column_sequences, weight=1.0)
        if row_sequences:
            builder.add_sequences(row_sequences, weight=row_weight)
        matrix = ppmi_matrix(builder.build_matrix())
        self._vectors = self._factorize(matrix, len(vocabulary))
        self._vocabulary = vocabulary
        return self

    def _factorize(self, matrix, vocab_size: int) -> np.ndarray:
        """Rank-``dim`` factorization; rows L2-normalized."""
        rank = min(self.dim, vocab_size - 1)
        if rank < 1 or matrix.nnz == 0:
            # Degenerate corpus: fall back to hashing vectors for all tokens.
            return np.zeros((vocab_size, self.dim))
        # svds needs a deterministic starting vector for reproducibility.
        v0 = np.linspace(1.0, 2.0, matrix.shape[0])
        u, s, _vt = svds(matrix.astype(np.float64), k=rank, v0=v0)
        order = np.argsort(-s)
        u, s = u[:, order], s[order]
        vectors = u * np.sqrt(s)
        if rank < self.dim:
            vectors = np.pad(vectors, ((0, 0), (0, self.dim - rank)))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        np.divide(vectors, norms, out=vectors, where=norms > 0)
        # Sign convention: make each vector's largest-magnitude coordinate
        # positive so retraining yields bit-identical embeddings.
        flip = np.sign(vectors[np.arange(len(vectors)), np.argmax(np.abs(vectors), axis=1)])
        flip[flip == 0] = 1.0
        return vectors * flip[:, None]

    # -- inference ---------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._vectors is not None

    @property
    def vocabulary(self) -> Vocabulary:
        """The trained vocabulary."""
        self._require_trained()
        assert self._vocabulary is not None
        return self._vocabulary

    def embed_token(self, token: str) -> np.ndarray:
        """Vector for one token: trained if in vocabulary, hashed otherwise."""
        self._require_trained()
        assert self._vocabulary is not None and self._vectors is not None
        token_id = self._vocabulary.token_id(token)
        if token_id is not None:
            return self._vectors[token_id]
        return hashed_token_vector(token, self.dim) * self.oov_scale

    def embed_tokens(self, tokens: list[str]) -> np.ndarray:
        """Matrix of shape (len(tokens), dim)."""
        self._require_trained()
        if not tokens:
            return np.zeros((0, self.dim))
        return np.stack([self.embed_token(token) for token in tokens])

    def _embed_distinct_uncached(self, tokens: Sequence[str]) -> np.ndarray:
        """Vectorized distinct-token embedding behind the batch contract.

        In-vocabulary rows are one fancy-index gather out of the trained
        matrix; OOV rows run through the vectorized n-gram hashing kernel
        scaled by ``oov_scale`` — element-wise identical to
        :meth:`embed_token`.
        """
        self._require_trained()
        assert self._vocabulary is not None and self._vectors is not None
        rows = np.empty((len(tokens), self.dim))
        oov_tokens: list[str] = []
        oov_positions: list[int] = []
        vocab_positions: list[int] = []
        vocab_ids: list[int] = []
        for position, token in enumerate(tokens):
            token_id = self._vocabulary.token_id(token)
            if token_id is None:
                oov_tokens.append(token)
                oov_positions.append(position)
            else:
                vocab_positions.append(position)
                vocab_ids.append(token_id)
        if vocab_ids:
            rows[np.asarray(vocab_positions, dtype=np.intp)] = self._vectors[
                np.asarray(vocab_ids, dtype=np.intp)
            ]
        if oov_tokens:
            rows[np.asarray(oov_positions, dtype=np.intp)] = (
                hashed_token_matrix(oov_tokens, self.dim) * self.oov_scale
            )
        return rows

    def idf(self, token: str) -> float:
        """Inverse document frequency from the training vocabulary."""
        self._require_trained()
        assert self._vocabulary is not None
        return self._vocabulary.idf(token)

    def in_vocabulary(self, token: str) -> bool:
        """True when ``token`` has a trained vector."""
        self._require_trained()
        assert self._vocabulary is not None
        return token in self._vocabulary

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two token vectors."""
        a = self.embed_token(left)
        b = self.embed_token(right)
        denominator = np.linalg.norm(a) * np.linalg.norm(b)
        if denominator == 0:
            return 0.0
        return float(a @ b / denominator)

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise ModelNotTrainedError(
                "WebTableEmbeddingModel used before fit(); train it or use "
                "repro.embedding.get_model('webtable') for the pretrained one"
            )
