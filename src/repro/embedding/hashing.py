"""Deterministic hashing-trick token vectors (fastText-style).

Out-of-vocabulary tokens — numeric ids, codes, rare entities — still need
embeddings.  We derive a vector for any token as the normalized sum of
vectors of its character n-grams, where each n-gram's vector is drawn from a
Gaussian seeded by a stable hash of the n-gram.  Properties:

* fully deterministic across processes (no salted ``hash``);
* identical tokens ⇒ identical vectors, so columns sharing values embed
  similarly even with zero vocabulary coverage (syntactic-overlap signal);
* tokens sharing morphology ("cust_001", "cust_002") share most n-grams and
  land near each other, which is what lets id-code columns of the same
  family cluster.

The batch path (:func:`hashed_token_matrix`,
:meth:`HashingEmbeddingModel.embed_tokens_batch`) vectorizes this: distinct
n-grams across a whole token block are resolved once each, the per-token
sums run as one ``np.add.at`` scatter over the n-gram matrix, and a bounded
LRU token-vector cache shared across columns makes repeated values cost one
embed per process.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from repro._util import stable_uint64
from repro.embedding.base import LRUCache, TokenEmbeddingModel

__all__ = ["hashed_token_vector", "hashed_token_matrix", "HashingEmbeddingModel"]

_BOUNDARY = "\x02"


@lru_cache(maxsize=200_000)
def _ngram_vector(ngram: str, dim: int, salt: str) -> np.ndarray:
    """Unit Gaussian vector deterministically derived from an n-gram."""
    seed = stable_uint64(ngram, salt=salt)
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(dim)
    norm = np.linalg.norm(vector)
    vector /= norm if norm > 0 else 1.0
    vector.setflags(write=False)
    return vector


def _char_ngrams(token: str, n_values: tuple[int, ...]) -> list[str]:
    """Boundary-padded character n-grams of ``token`` plus the whole token."""
    padded = _BOUNDARY + token + _BOUNDARY
    ngrams = [padded]  # whole-token gram dominates for short tokens
    for n in n_values:
        if len(padded) < n:
            continue
        ngrams.extend(padded[i : i + n] for i in range(len(padded) - n + 1))
    return ngrams


@lru_cache(maxsize=200_000)
def hashed_token_vector(
    token: str,
    dim: int = 64,
    *,
    n_values: tuple[int, ...] = (3, 4),
    salt: str = "hash-emb-v1",
) -> np.ndarray:
    """Deterministic unit vector for an arbitrary token.

    >>> left = hashed_token_vector("cust_001")
    >>> right = hashed_token_vector("cust_001")
    >>> bool(np.allclose(left, right))
    True
    """
    if not token:
        return np.zeros(dim)
    grams = _char_ngrams(token, n_values)
    total = np.zeros(dim)
    for gram in grams:
        total += _ngram_vector(gram, dim, salt)
    norm = np.linalg.norm(total)
    if norm > 0:
        total /= norm
    total.setflags(write=False)
    return total


def hashed_token_matrix(
    tokens: Sequence[str],
    dim: int = 64,
    *,
    n_values: tuple[int, ...] = (3, 4),
    salt: str = "hash-emb-v1",
) -> np.ndarray:
    """Vectorized :func:`hashed_token_vector` over a token block.

    Each *distinct* n-gram across the whole block is resolved exactly once;
    the per-token sums then run as a single ``np.add.at`` scatter, and rows
    are normalized in one pass.  Element-wise equivalent to stacking
    :func:`hashed_token_vector` per token (empty tokens yield zero rows).
    """
    if not tokens:
        return np.zeros((0, dim))
    gram_ids: dict[str, int] = {}
    token_positions: list[int] = []
    gram_positions: list[int] = []
    for position, token in enumerate(tokens):
        if not token:
            continue
        for gram in _char_ngrams(token, n_values):
            gram_id = gram_ids.get(gram)
            if gram_id is None:
                gram_id = len(gram_ids)
                gram_ids[gram] = gram_id
            token_positions.append(position)
            gram_positions.append(gram_id)
    rows = np.zeros((len(tokens), dim))
    if not gram_ids:
        return rows
    gram_matrix = np.stack(
        [_ngram_vector(gram, dim, salt) for gram in gram_ids]
    )
    np.add.at(
        rows,
        np.asarray(token_positions, dtype=np.intp),
        gram_matrix[np.asarray(gram_positions, dtype=np.intp)],
    )
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    np.divide(rows, norms, out=rows, where=norms > 0)
    return rows


class HashingEmbeddingModel(TokenEmbeddingModel):
    """Pure hashing-trick embedding model (no training, no vocabulary).

    This is the ablation arm isolating the *syntactic* contribution of the
    embedding pipeline: identical and morphologically similar values align,
    but there is no learned cross-token semantics.

    ``cache_size`` bounds the shared LRU token-vector cache consulted by the
    batch paths; repeated values across columns cost one embed each.
    """

    name = "hashing"

    def __init__(
        self,
        dim: int = 64,
        *,
        n_values: tuple[int, ...] = (3, 4),
        cache_size: int = 65_536,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.n_values = n_values
        self.token_cache = LRUCache(cache_size)

    def __repr__(self) -> str:
        return f"HashingEmbeddingModel(dim={self.dim})"

    @property
    def is_trained(self) -> bool:
        """Hashing models need no training."""
        return True

    def embed_token(self, token: str) -> np.ndarray:
        """Vector for one token."""
        return hashed_token_vector(token, self.dim, n_values=self.n_values)

    def embed_tokens(self, tokens: list[str]) -> np.ndarray:
        """Matrix of shape (len(tokens), dim); zero rows for empty tokens."""
        if not tokens:
            return np.zeros((0, self.dim))
        return np.stack([self.embed_token(token) for token in tokens])

    def _embed_distinct_uncached(self, tokens: Sequence[str]) -> np.ndarray:
        """The vectorized n-gram kernel behind the batch contract."""
        return hashed_token_matrix(tokens, self.dim, n_values=self.n_values)

    def idf(self, token: str) -> float:
        """Hashing models carry no corpus statistics; weight uniformly."""
        return 1.0
