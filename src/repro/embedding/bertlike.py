"""BERT-like contextual embedding model — the §4.4 comparison arm.

The paper swaps Web Table Embeddings for BERT and finds the heavier model
(i) no more effective for join discovery and (ii) ~10x slower at inference.
We reproduce both properties with a deterministic transformer-shaped
encoder:

* token vectors come from the same base model (so effectiveness stays on
  par — the information content is the same);
* each inference call then runs ``n_layers`` of softmax self-attention and a
  GELU feed-forward over the token sequence with fixed random weights,
  costing real FLOPs proportional to sequence length — the 10x slowdown is
  *earned*, not faked with sleeps;
* residual connections keep the contextual mixing from destroying the
  aggregate direction, which is why effectiveness survives.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.embedding.base import LRUCache, TokenEmbeddingModel
from repro.embedding.hashing import HashingEmbeddingModel

__all__ = ["BertLikeEmbeddingModel"]


def _gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def _softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class _EncoderLayer:
    """One attention + feed-forward block with fixed random weights."""

    def __init__(self, dim: int, hidden: int, layer_index: int, seed_key: str) -> None:
        rng = rng_for("bertlike-layer", seed_key, layer_index)
        scale = 1.0 / np.sqrt(dim)
        self.w_query = rng.standard_normal((dim, dim)) * scale
        self.w_key = rng.standard_normal((dim, dim)) * scale
        self.w_value = rng.standard_normal((dim, dim)) * scale
        self.w_up = rng.standard_normal((dim, hidden)) * scale
        self.w_down = rng.standard_normal((hidden, dim)) * (1.0 / np.sqrt(hidden))

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Apply self-attention then the MLP, both with residuals."""
        queries = states @ self.w_query
        keys = states @ self.w_key
        values = states @ self.w_value
        scores = queries @ keys.T / np.sqrt(states.shape[1])
        attended = _softmax(scores) @ values
        states = _layer_norm(states + attended)
        expanded = _gelu(states @ self.w_up) @ self.w_down
        return _layer_norm(states + expanded)


def _layer_norm(states: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Per-token layer normalization."""
    mean = states.mean(axis=1, keepdims=True)
    std = states.std(axis=1, keepdims=True)
    return (states - mean) / (std + eps)


class BertLikeEmbeddingModel(TokenEmbeddingModel):
    """Deep contextual encoder wrapping a base token-embedding model.

    Parameters
    ----------
    base_model:
        Supplies input token vectors (typically the trained
        :class:`~repro.embedding.webtable.WebTableEmbeddingModel`); defaults
        to a hashing model so the encoder works standalone.
    n_layers / hidden_multiplier:
        Depth and MLP width; defaults give roughly an order of magnitude
        more compute per token than the base model.
    max_seq_len:
        Sequences are processed in windows of this length (attention is
        quadratic in window size).
    residual_weight:
        Weight of the original token vector blended back into the output —
        keeps column aggregates comparable to the base model's.
    """

    name = "bertlike"
    # A token's output depends on its neighbours: batch calls must keep
    # per-sequence attention, never dedup tokens across the batch.
    context_free = False

    def __init__(
        self,
        base_model=None,
        *,
        n_layers: int = 4,
        hidden_multiplier: int = 4,
        max_seq_len: int = 64,
        residual_weight: float = 0.7,
        seed_key: str = "bertlike-v1",
    ) -> None:
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        if max_seq_len < 2:
            raise ValueError(f"max_seq_len must be >= 2, got {max_seq_len}")
        if not 0.0 <= residual_weight <= 1.0:
            raise ValueError(f"residual_weight must be in [0, 1], got {residual_weight}")
        self.base_model = base_model if base_model is not None else HashingEmbeddingModel()
        self.dim = self.base_model.dim
        self.n_layers = n_layers
        self.max_seq_len = max_seq_len
        self.residual_weight = residual_weight
        hidden = self.dim * hidden_multiplier
        self._layers = [
            _EncoderLayer(self.dim, hidden, index, seed_key)
            for index in range(n_layers)
        ]
        self._positional = self._build_positional(max_seq_len, self.dim, seed_key)

    @staticmethod
    def _build_positional(length: int, dim: int, seed_key: str) -> np.ndarray:
        """Sinusoidal positional encodings, scaled down to a gentle bias."""
        positions = np.arange(length)[:, None]
        dims = np.arange(dim)[None, :]
        angles = positions / np.power(10_000.0, (2 * (dims // 2)) / dim)
        encoding = np.where(dims % 2 == 0, np.sin(angles), np.cos(angles))
        return 0.05 * encoding

    def __repr__(self) -> str:
        return (
            f"BertLikeEmbeddingModel(dim={self.dim}, n_layers={self.n_layers}, "
            f"base={type(self.base_model).__name__})"
        )

    @property
    def is_trained(self) -> bool:
        """Delegates to the base model."""
        return self.base_model.is_trained

    def embed_token(self, token: str) -> np.ndarray:
        """Single-token path: context of one, still runs the full stack."""
        return self.embed_tokens([token])[0]

    @property
    def token_cache(self) -> LRUCache | None:
        """The wrapped base model's token-vector cache (input-side reuse)."""
        return getattr(self.base_model, "token_cache", None)

    def embed_tokens(self, tokens: list[str]) -> np.ndarray:
        """Contextually encode a token sequence; shape (len(tokens), dim)."""
        if not tokens:
            return np.zeros((0, self.dim))
        return self._contextualize(self.base_model.embed_tokens(tokens))

    def embed_tokens_batch(self, token_lists) -> list[np.ndarray]:
        """Batch contract: one base-model token fetch, per-sequence mixing.

        The input token vectors for the whole batch come from the base
        model's deduped, cached batch path; the attention stack then runs
        per sequence because a token's output depends on its neighbours.
        """
        bases = self.base_model.embed_tokens_batch(token_lists)
        return [
            self._contextualize(base) if base.shape[0] else np.zeros((0, self.dim))
            for base in bases
        ]

    def _contextualize(self, base: np.ndarray) -> np.ndarray:
        """Run the attention stack over one sequence of base token vectors."""
        outputs = np.empty_like(base)
        for start in range(0, base.shape[0], self.max_seq_len):
            window = base[start : start + self.max_seq_len]
            states = window + self._positional[: len(window)]
            for layer in self._layers:
                states = layer.forward(states)
            # Layer norm leaves rows at magnitude ~sqrt(dim); rescale to
            # unit so the blend weights mean what they say, then mix the
            # contextual states back with the raw token vectors — the
            # column-level aggregate stays aligned with the base geometry.
            norms = np.linalg.norm(states, axis=1, keepdims=True)
            np.divide(states, norms, out=states, where=norms > 0)
            mixed = self.residual_weight * window + (1.0 - self.residual_weight) * states
            outputs[start : start + len(window)] = mixed
        return outputs

    def idf(self, token: str) -> float:
        """Delegates to the base model's corpus statistics."""
        return self.base_model.idf(token)
