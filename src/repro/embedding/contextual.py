"""Contextual column embeddings (§5.2.1).

The paper's first optimization direction: *"context (e.g., other columns in
the same table, user activities, query logs) can potentially provide
auxiliary information that is critical to find semantically related
candidates. We plan to explore the option of incorporating context
information into the underlying embedding model."*

:class:`ContextualColumnEncoder` implements the "other columns in the same
table" variant: a column's embedding is blended with a *table-context
vector* built from the names (and optionally sampled values) of its sibling
columns.  Two columns whose own values are ambiguous — say, short code
columns — become distinguishable when one lives among ``order_date,
ship_city, carrier`` and the other among ``ticker, close_price, volume``.

The encoder is a drop-in replacement for
:class:`~repro.embedding.encoder.ColumnEncoder` with one extra requirement:
``encode_in_table(column, table)`` needs the owning table.  ``encode`` alone
falls back to the context-free embedding, so existing pipelines keep
working.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.encoder import ColumnEncoder
from repro.storage.column import Column
from repro.storage.table import Table
from repro.text.tokenize import split_identifier, tokenize_value

__all__ = ["ContextualColumnEncoder"]


class ContextualColumnEncoder:
    """Blends sibling-column context into column embeddings.

    Parameters
    ----------
    base:
        The context-free column encoder.
    context_weight:
        Blend weight of the table-context vector (0 reproduces ``base``).
    context_value_sample:
        How many values of each sibling column contribute tokens to the
        context vector (0 = names only).
    """

    def __init__(
        self,
        base: ColumnEncoder,
        *,
        context_weight: float = 0.2,
        context_value_sample: int = 5,
    ) -> None:
        if not 0.0 <= context_weight < 1.0:
            raise ValueError(
                f"context_weight must be in [0, 1), got {context_weight}"
            )
        if context_value_sample < 0:
            raise ValueError(
                f"context_value_sample must be >= 0, got {context_value_sample}"
            )
        self.base = base
        self.context_weight = context_weight
        self.context_value_sample = context_value_sample

    @property
    def dim(self) -> int:
        """Embedding dimensionality (delegates to the base encoder)."""
        return self.base.dim

    def encode(self, column: Column) -> np.ndarray:
        """Context-free fallback: identical to the base encoder."""
        return self.base.encode(column)

    def encode_batch(self, columns):
        """Batched context-free fallback (see :meth:`ColumnEncoder.encode_batch`)."""
        return self.base.encode_batch(columns)

    def encode_many(self, columns) -> np.ndarray:
        """Batched context-free fallback, matrix only."""
        return self.base.encode_many(columns)

    def context_vector(self, table: Table, *, exclude: str | None = None) -> np.ndarray:
        """Embed the table's context: sibling names plus a few values."""
        tokens: list[str] = []
        for sibling in table.columns:
            if exclude is not None and sibling.name == exclude:
                continue
            tokens.extend(split_identifier(sibling.name))
            if self.context_value_sample > 0:
                for value in sibling.head(self.context_value_sample):
                    if value is not None:
                        tokens.extend(tokenize_value(value))
        if not tokens:
            return np.zeros(self.dim)
        vectors = self.base.model.embed_tokens(tokens)
        aggregate = vectors.mean(axis=0)
        norm = np.linalg.norm(aggregate)
        return aggregate / norm if norm > 0 else aggregate

    def encode_in_table(self, column: Column, table: Table) -> np.ndarray:
        """Column embedding blended with its table's context vector."""
        own = self.base.encode(column)
        if not np.any(own):
            return own
        context = self.context_vector(table, exclude=column.name)
        blended = (1.0 - self.context_weight) * own + self.context_weight * context
        norm = np.linalg.norm(blended)
        return blended / norm if norm > 0 else blended

    def encode_many_in_table(self, table: Table) -> dict[str, np.ndarray]:
        """All columns of a table, each with the shared context blended in.

        The context vector is computed once per sibling-exclusion, so this
        is the efficient path for indexing whole tables.
        """
        return {
            column.name: self.encode_in_table(column, table)
            for column in table.columns
        }
