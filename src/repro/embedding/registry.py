"""Model registry: resolve model names to (possibly pretrained) instances.

``get_model("webtable")`` returns the process-wide "pretrained" Web Table
Embedding model: trained once per (dim, corpus-version) on the default
synthetic web-table corpus, then cached — mirroring how the paper downloads
one pretrained artifact and reuses it everywhere.

Registry arms:

``webtable``
    The paper's default — PPMI+SVD over column *and* row serializations.
``cooccur``
    Pure column-co-occurrence ablation: the same count-based model trained
    without the row-serialization signal, isolating what cross-attribute
    affinity contributes.
``hashing``
    Training-free character-n-gram vectors (syntactic-overlap ablation).
``bertlike``
    The §4.4 comparison arm: a deep contextual encoder over the webtable
    token vectors, ~10x more compute per token.
``contextual``
    A light contextual mixer (two attention layers) — the cheap point on
    the context-vs-cost curve between ``webtable`` and ``bertlike``.

Every arm implements the batched embedding contract
(:class:`~repro.embedding.base.TokenEmbeddingModel`), so the corpus build
pipeline can chunk-encode columns against any of them.
"""

from __future__ import annotations

from repro.embedding.bertlike import BertLikeEmbeddingModel
from repro.embedding.hashing import HashingEmbeddingModel
from repro.embedding.webtable import WebTableEmbeddingModel
from repro.errors import UnknownModelError

__all__ = ["get_model", "available_models", "clear_model_cache"]

_MODEL_NAMES = ("webtable", "hashing", "bertlike", "cooccur", "contextual")

_PRETRAINED_CACHE: dict[tuple[str, int], object] = {}


def available_models() -> tuple[str, ...]:
    """Names accepted by :func:`get_model`."""
    return _MODEL_NAMES


def clear_model_cache() -> None:
    """Drop all cached pretrained models (mainly for tests)."""
    _PRETRAINED_CACHE.clear()


def _pretrained_webtable(dim: int, *, name: str = "webtable") -> WebTableEmbeddingModel:
    """Train (once) a Web Table Embedding model variant.

    ``webtable`` trains on column plus row serializations; ``cooccur``
    drops the row signal (pure column co-occurrence).
    """
    key = (name, dim)
    if key not in _PRETRAINED_CACHE:
        # Imported lazily: datasets generate the corpus, and importing them at
        # module load would create a package cycle.
        from repro.datasets.webcorpus import default_training_corpus

        corpus = default_training_corpus()
        model = WebTableEmbeddingModel(dim=dim)
        if name == "cooccur":
            model.fit(corpus.column_sequences)
            model.name = "cooccur"
        else:
            model.fit(corpus.column_sequences, corpus.row_sequences)
        _PRETRAINED_CACHE[key] = model
    return _PRETRAINED_CACHE[key]  # type: ignore[return-value]


def get_model(name: str, *, dim: int = 64):
    """Resolve a model name to a ready-to-use (trained) instance.

    ``webtable`` and ``bertlike`` share the same trained token vectors (the
    BERT-like encoder wraps them), so their effectiveness is comparable and
    only their inference costs differ — exactly the §4.4 setup.
    """
    if name == "webtable":
        return _pretrained_webtable(dim)
    if name == "cooccur":
        return _pretrained_webtable(dim, name="cooccur")
    if name == "hashing":
        return HashingEmbeddingModel(dim=dim)
    if name == "bertlike":
        return BertLikeEmbeddingModel(base_model=_pretrained_webtable(dim))
    if name == "contextual":
        model = BertLikeEmbeddingModel(
            base_model=_pretrained_webtable(dim),
            n_layers=2,
            residual_weight=0.6,
            seed_key="contextual-v1",
        )
        model.name = "contextual"
        return model
    raise UnknownModelError(name, _MODEL_NAMES)
