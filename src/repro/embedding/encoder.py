"""Column encoder: column → one unit vector.

Implements the embedding step shared by the indexing and search pipelines
(Figure 2): serialize the (sampled) column's values to tokens, embed every
token with the underlying model, aggregate, and L2-normalize.  Aggregation
is either an unweighted mean or an idf-weighted mean (ablation §5 of
DESIGN.md); numeric columns optionally blend in a distribution profile.

Two code paths produce identical embeddings:

* :meth:`ColumnEncoder.encode` — the per-column reference implementation
  (one Python loop per token), kept simple on purpose so the batched path
  has an independent oracle to be tested against;
* :meth:`ColumnEncoder.encode_batch` — the production path for corpus
  builds.  Cell values repeat massively across warehouse columns, so the
  batch path caches at two granularities: a value → tokens LRU (each
  distinct value tokenizes once) and a token-tuple → (vector sum, weight
  sum) LRU (each distinct value *embeds* once — its tokens' weighted
  vector sum is replayed wherever the value reappears).  A column's
  aggregate then reduces to a tiny weighted gather over cached value rows;
  chunk misses resolve through the model's deduped, token-cached batch
  contract (:mod:`repro.embedding.base`), and idf weighting,
  frequency-folded weights, and numeric-profile blending all run as array
  operations over the chunk's token-count structure.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.embedding.base import LRUCache
from repro.embedding.numeric import numeric_profile_vector, project_profiles
from repro.storage.column import Column
from repro.text.tokenize import split_identifier, tokenize_value

__all__ = ["ColumnEncoder", "EncodeStats", "SerializedColumn"]

_AGGREGATIONS = ("mean", "tfidf")


@dataclass
class EncodeStats:
    """What one (or several merged) ``encode_batch`` call(s) cost.

    ``tokens`` counts serialized token slots after frequency folding;
    ``token_occurrences`` counts raw token occurrences before folding, so
    ``tokens / token_occurrences`` is the dedup win.  Cache counters sum
    the deltas of the embedding caches the call consulted (the encoder's
    value caches plus the model's token-vector cache) and the chunk-table
    reuse of values shared by columns of one chunk: a hit means a value or
    token was *not* re-embedded.
    """

    columns: int = 0
    tokens: int = 0
    token_occurrences: int = 0
    distinct_tokens: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits / lookups across the measured calls."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge(self, other: "EncodeStats") -> "EncodeStats":
        """Accumulate another chunk's stats into this one (returns self)."""
        self.columns += other.columns
        self.tokens += other.tokens
        self.token_occurrences += other.token_occurrences
        self.distinct_tokens += other.distinct_tokens
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        return self

    def to_dict(self) -> dict[str, object]:
        """Machine-readable snapshot (index reports, bench rows)."""
        return {
            "columns": self.columns,
            "tokens": self.tokens,
            "token_occurrences": self.token_occurrences,
            "distinct_tokens": self.distinct_tokens,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }


@dataclass
class SerializedColumn:
    """One column's serialization in frequency-folded form.

    ``groups`` lists (token tuple, fold weight) pairs: the column-name
    tokens (when enabled) as one weight-1.0 group, then each distinct
    value's tokens weighted by its occurrence count.  Aggregating the
    groups is weight-for-weight equivalent to aggregating the reference
    :meth:`ColumnEncoder.serialize` stream.  ``exact`` replaces ``groups``
    for columns whose token stream overflows ``max_tokens`` — those fall
    back to the reference truncation semantics verbatim.
    """

    occurrences: int
    groups: list[tuple[tuple[str, ...], float]] | None = None
    exact: tuple[list[str], list[float]] | None = None

    def flatten(self) -> tuple[list[str], list[float]]:
        """The (tokens, weights) stream this serialization aggregates as."""
        if self.exact is not None:
            return self.exact
        tokens: list[str] = []
        weights: list[float] = []
        assert self.groups is not None
        for group_tokens, weight in self.groups:
            tokens.extend(group_tokens)
            weights.extend([weight] * len(group_tokens))
        return tokens, weights


class ColumnEncoder:
    """Turns columns into embedding vectors using a token-embedding model.

    Parameters
    ----------
    model:
        Any object with ``dim``, ``embed_tokens(list[str]) -> ndarray`` and
        ``idf(str) -> float`` (see :mod:`repro.embedding`); models derived
        from :class:`~repro.embedding.base.TokenEmbeddingModel` additionally
        give :meth:`encode_batch` the deduped, cached batch path.
    aggregation:
        ``"mean"`` or ``"tfidf"`` (idf-weighted mean).
    max_tokens:
        Hard cap on tokens per column; protects against long-text columns.
    include_column_name:
        Whether the column's name tokens join the serialization.  Off by
        default: WarpGate embeds values, name evidence belongs to D3L.
    dedupe_values:
        Encode each distinct value once, weighted by its frequency.  An
        optimization ablation — identical output direction for mean
        aggregation, much cheaper on low-cardinality columns.
    numeric_profile_weight:
        Blend weight of the numeric distribution profile for numeric
        columns (0 disables).
    cache_size:
        Capacity of each shared LRU behind :meth:`encode_batch`: the
        value → tokens cache and the value-vector cache.
    """

    def __init__(
        self,
        model,
        *,
        aggregation: str = "mean",
        max_tokens: int = 10_000,
        include_column_name: bool = False,
        dedupe_values: bool = False,
        numeric_profile_weight: float = 0.3,
        cache_size: int = 65_536,
    ) -> None:
        if aggregation not in _AGGREGATIONS:
            raise ValueError(
                f"unknown aggregation {aggregation!r}; choose from {_AGGREGATIONS}"
            )
        if max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive, got {max_tokens}")
        if not 0.0 <= numeric_profile_weight <= 1.0:
            raise ValueError(
                f"numeric_profile_weight must be in [0, 1], got {numeric_profile_weight}"
            )
        self.model = model
        self.aggregation = aggregation
        self.max_tokens = max_tokens
        self.include_column_name = include_column_name
        self.dedupe_values = dedupe_values
        self.numeric_profile_weight = numeric_profile_weight
        #: value → tuple-of-tokens (serialization work saved on repeats)
        self._value_tokens = LRUCache(cache_size)
        #: token tuple → (idf-weighted vector sum, weight sum) — the
        #: "repeated values cost one embed" cache
        self._value_vectors = LRUCache(cache_size)

    @property
    def dim(self) -> int:
        """Embedding dimensionality (delegates to the model)."""
        return self.model.dim

    def __repr__(self) -> str:
        return (
            f"ColumnEncoder(model={type(self.model).__name__}, "
            f"aggregation={self.aggregation!r})"
        )

    # -- serialization ---------------------------------------------------------

    def serialize(self, column: Column) -> tuple[list[str], list[float]]:
        """Tokenize a column into (tokens, weights).

        Weights are all 1.0 unless ``dedupe_values`` folds duplicate values
        into a single weighted occurrence.
        """
        tokens: list[str] = []
        weights: list[float] = []
        if self.include_column_name:
            for token in split_identifier(column.name):
                tokens.append(token)
                weights.append(1.0)
        if self.dedupe_values:
            # Values fold per (type, value): 7, 7.0, and True are equal and
            # hash alike but tokenize differently, so they must not merge.
            counts: dict[object, list] = {}
            for value in column.non_null_values():
                key = (value.__class__, value)
                entry = counts.get(key)
                if entry is None:
                    counts[key] = entry = [value, 0]
                entry[1] += 1
            for value, count in counts.values():
                for token in tokenize_value(value):
                    tokens.append(token)
                    weights.append(float(count))
                if len(tokens) >= self.max_tokens:
                    break
        else:
            for value in column.non_null_values():
                for token in tokenize_value(value):
                    tokens.append(token)
                    weights.append(1.0)
                if len(tokens) >= self.max_tokens:
                    break
        return tokens[: self.max_tokens], weights[: self.max_tokens]

    def _tokens_of_value(self, value: object) -> tuple[str, ...]:
        """Tokenize one cell value through the shared value cache.

        Cached per (type, value): equal-hashing values of different types
        (7 vs 7.0 vs True) tokenize differently and must not share entries.
        """
        key = (value.__class__, value)
        cached = self._value_tokens.get(key)
        if cached is None:
            cached = tuple(tokenize_value(value))
            self._value_tokens.put(key, cached)
        return cached  # type: ignore[return-value]

    def serialize_batch(self, columns: Sequence[Column]) -> list[SerializedColumn]:
        """Tokenize many columns into frequency-folded form.

        The serialization *contract* of the batched pipeline: every
        distinct cell value tokenizes once (per LRU capacity)
        process-wide, and duplicate values fold into frequency weights.
        Columns that would overflow ``max_tokens`` fall back to
        :meth:`serialize`'s exact truncation semantics (see
        :class:`SerializedColumn`).  ``encode_batch`` runs a fused
        equivalent of this folding inline (it never materializes the
        per-column streams); the property tests pin both this method and
        the fused path to the :meth:`serialize` oracle so they cannot
        drift apart.
        """
        serialized: list[SerializedColumn] = []
        for column in columns:
            name_tokens = (
                tuple(split_identifier(column.name))
                if self.include_column_name
                else ()
            )
            counts = Counter(
                (value.__class__, value) for value in column.non_null_values()
            )
            groups: list[tuple[tuple[str, ...], float]] = []
            if name_tokens:
                groups.append((name_tokens, 1.0))
            folded_total = len(name_tokens)
            occurrences = len(name_tokens)
            for (_value_type, value), count in counts.items():
                value_tokens = self._tokens_of_value(value)
                groups.append((value_tokens, float(count)))
                folded_total += len(value_tokens)
                occurrences += count * len(value_tokens)
            budget = folded_total if self.dedupe_values else occurrences
            if budget > self.max_tokens:
                # Truncation territory: mirror the reference serialization
                # exactly rather than re-deriving its mid-value cut.
                tokens, weights = self.serialize(column)
                serialized.append(
                    SerializedColumn(occurrences=occurrences, exact=(tokens, weights))
                )
            else:
                serialized.append(
                    SerializedColumn(occurrences=occurrences, groups=groups)
                )
        return serialized

    # -- encoding -----------------------------------------------------------------

    def encode(self, column: Column) -> np.ndarray:
        """Encode one column into a unit vector of shape (dim,).

        All-null or all-unembeddable columns yield the zero vector, which
        indexes treat as unindexable.  This is the sequential reference
        implementation; corpus builds use :meth:`encode_batch`.
        """
        tokens, weights = self.serialize(column)
        if tokens:
            vectors = self.model.embed_tokens(tokens)
            weight_array = np.asarray(weights, dtype=np.float64)
            if self.aggregation == "tfidf":
                idf = np.asarray([self.model.idf(token) for token in tokens])
                weight_array = weight_array * idf
            total_weight = weight_array.sum()
            if total_weight > 0:
                aggregate = (weight_array[:, None] * vectors).sum(axis=0) / total_weight
            else:
                aggregate = np.zeros(self.dim)
        else:
            aggregate = np.zeros(self.dim)

        if self.numeric_profile_weight > 0 and column.dtype.is_numeric:
            profile = numeric_profile_vector(column)
            projected = project_profiles(profile[None, :], self.dim)[0]
            aggregate = (
                (1.0 - self.numeric_profile_weight) * aggregate
                + self.numeric_profile_weight * projected
            )

        norm = np.linalg.norm(aggregate)
        if norm > 0:
            aggregate = aggregate / norm
        return aggregate

    # -- batched aggregation internals ----------------------------------------

    def _group_weights(self, tokens: Sequence[str]) -> np.ndarray:
        """Per-token aggregation weights of one token group (idf or 1s)."""
        if self.aggregation != "tfidf":
            return np.ones(len(tokens))
        if hasattr(self.model, "idf_batch"):
            return np.asarray(self.model.idf_batch(list(tokens)), dtype=np.float64)
        return np.asarray([self.model.idf(token) for token in tokens])

    def _embed_distinct(self, tokens: Sequence[str]) -> np.ndarray:
        """Distinct-token embed through the model's batch contract."""
        if hasattr(self.model, "embed_tokens_distinct"):
            return self.model.embed_tokens_distinct(tokens)
        return self.model.embed_tokens(list(tokens))

    _NAME_KEY = "__column_name__"

    def _fill_value_vectors(
        self, missing: list[tuple[object, tuple[str, ...]]]
    ) -> list[tuple[int, np.ndarray, float]]:
        """Embed uncached (cache key, token group) pairs in one pass.

        Distinct tokens across all missing groups embed once via the model
        batch contract; per-group (token count, idf-weighted vector sum,
        weight sum) entries come out of one segment reduction and land in
        the value-vector cache.  The entries are also *returned* (parallel
        to ``missing``) — a chunk may hold more distinct values than the
        LRU capacity, so the caller must not rely on reading them back.
        """
        distinct: dict[str, int] = {}
        flat_ids: list[int] = []
        lengths = np.empty(len(missing), dtype=np.intp)
        for position, (_key, group) in enumerate(missing):
            lengths[position] = len(group)
            for token in group:
                token_id = distinct.get(token)
                if token_id is None:
                    token_id = len(distinct)
                    distinct[token] = token_id
                flat_ids.append(token_id)
        if distinct:
            distinct_tokens = list(distinct)
            token_matrix = self._embed_distinct(distinct_tokens)
            token_weights = self._group_weights(distinct_tokens)
            ids = np.asarray(flat_ids, dtype=np.intp)
            weighted = token_weights[ids, None] * token_matrix[ids]
            flat_weights = token_weights[ids]
        nonempty = np.flatnonzero(lengths)
        starts = np.cumsum(lengths) - lengths
        if nonempty.size:
            sums = np.add.reduceat(weighted, starts[nonempty], axis=0)
            weight_sums = np.add.reduceat(flat_weights, starts[nonempty])
        row = 0
        filled: list[tuple[int, np.ndarray, float]] = []
        for position, (key, group) in enumerate(missing):
            if lengths[position] == 0:
                entry = (0, np.zeros(self.dim), 0.0)
            else:
                # Copy before caching: a row view would pin the whole batch
                # matrix in memory for as long as one entry survives.
                vector = sums[row].copy()
                vector.setflags(write=False)
                entry = (int(lengths[position]), vector, float(weight_sums[row]))
                row += 1
            filled.append(entry)
            self._value_vectors.put(key, entry)
        return filled

    def _batch_aggregate_context_free(
        self, columns: Sequence[Column]
    ) -> tuple[np.ndarray, EncodeStats]:
        """Fused serialize + aggregate for context-free models.

        The hot loop does one dict probe per (column, distinct value); a
        distinct value resolves to a cached (token count, vector sum,
        weight sum) entry at most once per chunk.  Frequency folding, the
        ``max_tokens`` budget check, and the weighted means then all run
        as segment reductions over the chunk's value-count arrays —
        equivalent to aggregating :meth:`serialize_batch`'s folded output.
        """
        stats = EncodeStats()
        n = len(columns)
        aggregates = np.zeros((n, self.dim))
        cache = self._value_vectors
        # Pass 1: resolve values against the chunk table / value cache.
        chunk_table: dict[object, int] = {}
        entries: list[tuple[int, np.ndarray, float] | None] = []
        missing: list[tuple[object, tuple[str, ...]]] = []
        flat_rows: list[int] = []
        flat_folds: list[float] = []
        lengths = np.empty(n, dtype=np.intp)
        chunk_hits = 0
        for position, column in enumerate(columns):
            count_before = len(flat_rows)
            if self.include_column_name:
                key = (self._NAME_KEY, column.name)
                row = chunk_table.get(key)
                if row is None:
                    row = len(entries)
                    chunk_table[key] = row
                    entry = cache.get(key)
                    if entry is None:
                        missing.append((key, tuple(split_identifier(column.name))))
                    entries.append(entry)
                else:
                    chunk_hits += 1
                flat_rows.append(row)
                flat_folds.append(1.0)
            # Keys are (type, value) pairs: 7, 7.0, and True hash alike but
            # tokenize differently, so they get distinct cache rows.
            value_counts = Counter(
                (value.__class__, value) for value in column.non_null_values()
            )
            for key, count in value_counts.items():
                row = chunk_table.get(key)
                if row is None:
                    row = len(entries)
                    chunk_table[key] = row
                    entry = cache.get(key)
                    if entry is None:
                        missing.append((key, self._tokens_of_value(key[1])))
                    entries.append(entry)
                else:
                    # A value another column in this chunk already resolved:
                    # served from the chunk table, never re-embedded.
                    chunk_hits += 1
                flat_rows.append(row)
                flat_folds.append(float(count))
            lengths[position] = len(flat_rows) - count_before
        stats.cache_hits = chunk_hits
        if missing:
            filled = self._fill_value_vectors(missing)
            for (key, _group), entry in zip(missing, filled):
                entries[chunk_table[key]] = entry
        if not entries:
            return aggregates, stats
        # Pass 2: segment reductions over the flattened (row, fold) pairs.
        token_counts = np.asarray([entry[0] for entry in entries], dtype=np.float64)
        value_matrix = np.stack([entry[1] for entry in entries])
        value_weights = np.asarray([entry[2] for entry in entries], dtype=np.float64)
        rows_array = np.asarray(flat_rows, dtype=np.intp)
        folds_array = np.asarray(flat_folds, dtype=np.float64)
        starts = np.cumsum(lengths) - lengths
        nonempty = np.flatnonzero(lengths)
        if nonempty.size:
            boundaries = starts[nonempty]
            group_tokens = token_counts[rows_array]
            folded = np.add.reduceat(group_tokens, boundaries)
            occurrences = np.add.reduceat(folds_array * group_tokens, boundaries)
            weighted = folds_array[:, None] * value_matrix[rows_array]
            sums = np.add.reduceat(weighted, boundaries, axis=0)
            totals = np.add.reduceat(folds_array * value_weights[rows_array], boundaries)
            scale = np.where(totals > 0, totals, 1.0)
            aggregates[nonempty] = sums / scale[:, None]
            aggregates[nonempty[totals <= 0]] = 0.0
            stats.token_occurrences = int(occurrences.sum())
            stats.tokens = int(folded.sum())
            # Columns whose reference serialization would truncate replay
            # its exact (tokens, weights) stream instead.
            budget = folded if self.dedupe_values else occurrences
            for index in np.flatnonzero(budget > self.max_tokens):
                position = int(nonempty[index])
                tokens, weights = self.serialize(columns[position])
                stats.tokens -= int(folded[index]) - len(tokens)
                aggregates[position] = self._aggregate_flat(tokens, weights)
        stats.distinct_tokens = len(chunk_table)
        return aggregates, stats

    def _aggregate_flat(self, tokens: list[str], weights: list[float]) -> np.ndarray:
        """Reference-equivalent weighted mean of one flat token stream."""
        if not tokens:
            return np.zeros(self.dim)
        if hasattr(self.model, "embed_tokens_batch"):
            # The batch contract's fan-out already dedups and gathers.
            vectors = self.model.embed_tokens_batch([tokens])[0]
        else:
            vectors = self.model.embed_tokens(tokens)
        weight_array = np.asarray(weights, dtype=np.float64) * self._group_weights(
            tokens
        )
        total = weight_array.sum()
        if total <= 0:
            return np.zeros(self.dim)
        return (weight_array[:, None] * vectors).sum(axis=0) / total

    def _batch_aggregate_contextual(
        self, columns: Sequence[Column]
    ) -> tuple[np.ndarray, EncodeStats]:
        """Per-column aggregation for contextual models.

        Token vectors depend on their neighbours, so every column keeps its
        reference serialization order and the model's batch contract
        handles the (input-side) dedup.
        """
        stats = EncodeStats()
        aggregates = np.zeros((len(columns), self.dim))
        streams = [self.serialize(column) for column in columns]
        stats.tokens = sum(len(tokens) for tokens, _weights in streams)
        stats.token_occurrences = stats.tokens
        token_lists = [tokens for tokens, _weights in streams]
        if hasattr(self.model, "embed_tokens_batch"):
            matrices = self.model.embed_tokens_batch(token_lists)
        else:
            matrices = [self.model.embed_tokens(tokens) for tokens in token_lists]
        seen: set[str] = set()
        for position, (tokens, weights) in enumerate(streams):
            if not tokens:
                continue
            seen.update(tokens)
            weight_array = np.asarray(weights, dtype=np.float64) * self._group_weights(
                tokens
            )
            total = weight_array.sum()
            if total > 0:
                aggregates[position] = (
                    weight_array[:, None] * matrices[position]
                ).sum(axis=0) / total
        stats.distinct_tokens = len(seen)
        return aggregates, stats

    def encode_batch(
        self, columns: Sequence[Column]
    ) -> tuple[np.ndarray, EncodeStats]:
        """Encode a column chunk; returns (matrix (n, dim), :class:`EncodeStats`).

        Element-wise equivalent (within float tolerance) to stacking
        :meth:`encode` per column, but built as array operations: one
        serialization pass through the value cache, cached value-vector
        sums for repeated values, one deduped model embed for the chunk's
        misses, one segment-reduce aggregation, one batched numeric-profile
        projection, one normalization pass.
        """
        if not columns:
            return np.zeros((0, self.dim)), EncodeStats()
        token_cache = getattr(self.model, "token_cache", None)
        caches = [self._value_tokens, self._value_vectors]
        if token_cache is not None:
            caches.append(token_cache)
        hits_before = sum(cache.hits for cache in caches)
        misses_before = sum(cache.misses for cache in caches)

        if getattr(self.model, "context_free", False):
            aggregates, stats = self._batch_aggregate_context_free(columns)
        else:
            aggregates, stats = self._batch_aggregate_contextual(columns)
        stats.columns = len(columns)

        if self.numeric_profile_weight > 0:
            numeric_positions = [
                position
                for position, column in enumerate(columns)
                if column.dtype.is_numeric
            ]
            if numeric_positions:
                profiles = np.stack(
                    [numeric_profile_vector(columns[p]) for p in numeric_positions]
                )
                projected = project_profiles(profiles, self.dim)
                index = np.asarray(numeric_positions, dtype=np.intp)
                aggregates[index] = (
                    (1.0 - self.numeric_profile_weight) * aggregates[index]
                    + self.numeric_profile_weight * projected
                )

        norms = np.linalg.norm(aggregates, axis=1, keepdims=True)
        np.divide(aggregates, norms, out=aggregates, where=norms > 0)

        stats.cache_hits += sum(cache.hits for cache in caches) - hits_before
        stats.cache_misses += sum(cache.misses for cache in caches) - misses_before
        return aggregates, stats

    def encode_many(self, columns: Sequence[Column]) -> np.ndarray:
        """Encode several columns; shape (len(columns), dim).

        Routed through :meth:`encode_batch` — the batched pipeline is the
        only production encode path.
        """
        matrix, _stats = self.encode_batch(columns)
        return matrix

    def encode_values(self, name: str, values: Sequence[object]) -> np.ndarray:
        """Convenience: encode raw values as an anonymous column."""
        return self.encode(Column.from_raw(name, list(values)))

    def cache_stats(self) -> dict[str, object]:
        """Serving-layer snapshot: encoder caches plus the model token cache."""
        payload: dict[str, object] = {
            "value_tokens": self._value_tokens.stats(),
            "value_vectors": self._value_vectors.stats(),
        }
        token_cache = getattr(self.model, "token_cache", None)
        if token_cache is not None:
            payload["token_cache"] = token_cache.stats()
        return payload
