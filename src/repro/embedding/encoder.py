"""Column encoder: column → one unit vector.

Implements the embedding step shared by the indexing and search pipelines
(Figure 2): serialize the (sampled) column's values to tokens, embed every
token with the underlying model, aggregate, and L2-normalize.  Aggregation
is either an unweighted mean or an idf-weighted mean (ablation §5 of
DESIGN.md); numeric columns optionally blend in a distribution profile.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.embedding.numeric import numeric_profile_vector, project_profile
from repro.storage.column import Column
from repro.text.tokenize import split_identifier, tokenize_value

__all__ = ["ColumnEncoder"]

_AGGREGATIONS = ("mean", "tfidf")


class ColumnEncoder:
    """Turns columns into embedding vectors using a token-embedding model.

    Parameters
    ----------
    model:
        Any object with ``dim``, ``embed_tokens(list[str]) -> ndarray`` and
        ``idf(str) -> float`` (see :mod:`repro.embedding`).
    aggregation:
        ``"mean"`` or ``"tfidf"`` (idf-weighted mean).
    max_tokens:
        Hard cap on tokens per column; protects against long-text columns.
    include_column_name:
        Whether the column's name tokens join the serialization.  Off by
        default: WarpGate embeds values, name evidence belongs to D3L.
    dedupe_values:
        Encode each distinct value once, weighted by its frequency.  An
        optimization ablation — identical output direction for mean
        aggregation, much cheaper on low-cardinality columns.
    numeric_profile_weight:
        Blend weight of the numeric distribution profile for numeric
        columns (0 disables).
    """

    def __init__(
        self,
        model,
        *,
        aggregation: str = "mean",
        max_tokens: int = 10_000,
        include_column_name: bool = False,
        dedupe_values: bool = False,
        numeric_profile_weight: float = 0.3,
    ) -> None:
        if aggregation not in _AGGREGATIONS:
            raise ValueError(
                f"unknown aggregation {aggregation!r}; choose from {_AGGREGATIONS}"
            )
        if max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive, got {max_tokens}")
        if not 0.0 <= numeric_profile_weight <= 1.0:
            raise ValueError(
                f"numeric_profile_weight must be in [0, 1], got {numeric_profile_weight}"
            )
        self.model = model
        self.aggregation = aggregation
        self.max_tokens = max_tokens
        self.include_column_name = include_column_name
        self.dedupe_values = dedupe_values
        self.numeric_profile_weight = numeric_profile_weight

    @property
    def dim(self) -> int:
        """Embedding dimensionality (delegates to the model)."""
        return self.model.dim

    def __repr__(self) -> str:
        return (
            f"ColumnEncoder(model={type(self.model).__name__}, "
            f"aggregation={self.aggregation!r})"
        )

    # -- serialization ---------------------------------------------------------

    def serialize(self, column: Column) -> tuple[list[str], list[float]]:
        """Tokenize a column into (tokens, weights).

        Weights are all 1.0 unless ``dedupe_values`` folds duplicate values
        into a single weighted occurrence.
        """
        tokens: list[str] = []
        weights: list[float] = []
        if self.include_column_name:
            for token in split_identifier(column.name):
                tokens.append(token)
                weights.append(1.0)
        if self.dedupe_values:
            counts: dict[object, int] = {}
            for value in column.non_null_values():
                counts[value] = counts.get(value, 0) + 1
            for value, count in counts.items():
                for token in tokenize_value(value):
                    tokens.append(token)
                    weights.append(float(count))
                if len(tokens) >= self.max_tokens:
                    break
        else:
            for value in column.non_null_values():
                for token in tokenize_value(value):
                    tokens.append(token)
                    weights.append(1.0)
                if len(tokens) >= self.max_tokens:
                    break
        return tokens[: self.max_tokens], weights[: self.max_tokens]

    # -- encoding -----------------------------------------------------------------

    def encode(self, column: Column) -> np.ndarray:
        """Encode one column into a unit vector of shape (dim,).

        All-null or all-unembeddable columns yield the zero vector, which
        indexes treat as unindexable.
        """
        tokens, weights = self.serialize(column)
        if tokens:
            vectors = self.model.embed_tokens(tokens)
            weight_array = np.asarray(weights, dtype=np.float64)
            if self.aggregation == "tfidf":
                idf = np.asarray([self.model.idf(token) for token in tokens])
                weight_array = weight_array * idf
            total_weight = weight_array.sum()
            if total_weight > 0:
                aggregate = (weight_array[:, None] * vectors).sum(axis=0) / total_weight
            else:
                aggregate = np.zeros(self.dim)
        else:
            aggregate = np.zeros(self.dim)

        if self.numeric_profile_weight > 0 and column.dtype.is_numeric:
            profile = numeric_profile_vector(column)
            projected = project_profile(profile, self.dim)
            aggregate = (
                (1.0 - self.numeric_profile_weight) * aggregate
                + self.numeric_profile_weight * projected
            )

        norm = np.linalg.norm(aggregate)
        if norm > 0:
            aggregate = aggregate / norm
        return aggregate

    def encode_many(self, columns: Sequence[Column]) -> np.ndarray:
        """Encode several columns; shape (len(columns), dim)."""
        if not columns:
            return np.zeros((0, self.dim))
        return np.stack([self.encode(column) for column in columns])

    def encode_values(self, name: str, values: Sequence[object]) -> np.ndarray:
        """Convenience: encode raw values as an anonymous column."""
        return self.encode(Column.from_raw(name, list(values)))
