"""Self-supervised fine-tuning of column embeddings (§5.2.3).

The paper's second efficiency direction: *"fine-tune off-the-shelf embedding
models in a self-supervised way that pushes embeddings of joinable columns
to have higher cosine similarity so that an index data structure like
SimHash can be better utilized."*

This module implements that idea as a learned linear map ``W`` applied on
top of the frozen column encoder:

* **positive pairs** come for free (self-supervision): two independent
  samples of the *same* column must embed identically — the augmentation
  used by contrastive table-representation work (e.g. Pylon, cited by the
  paper);
* **negative pairs** are samples of different columns;
* the objective pulls positives above a target cosine and pushes negatives
  below it, optimized with plain gradient descent on numpy;
* ``W`` is initialized at the identity, so zero training steps reproduce
  the base encoder exactly.

The practical effect measured by ``benchmarks/bench_finetune.py``: the
cosine gap between joinable and non-joinable pairs widens, so a SimHash
index at the paper's 0.7 threshold generates fewer false candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import rng_for
from repro.embedding.encoder import ColumnEncoder
from repro.storage.column import Column
from repro.warehouse.sampling import UniformSampler

__all__ = ["ContrastiveFineTuner", "FineTunedEncoder", "FineTuneReport"]


@dataclass
class FineTuneReport:
    """Training summary: loss trajectory and the final margin."""

    steps: int
    losses: list[float] = field(default_factory=list)
    positive_cosine_before: float = 0.0
    positive_cosine_after: float = 0.0
    negative_cosine_before: float = 0.0
    negative_cosine_after: float = 0.0

    @property
    def margin_before(self) -> float:
        """Mean positive minus mean negative cosine before training."""
        return self.positive_cosine_before - self.negative_cosine_before

    @property
    def margin_after(self) -> float:
        """Mean positive minus mean negative cosine after training."""
        return self.positive_cosine_after - self.negative_cosine_after


class FineTunedEncoder:
    """A column encoder composed with a learned linear map.

    Drop-in replacement for :class:`~repro.embedding.encoder.ColumnEncoder`:
    exposes ``dim`` and ``encode`` and keeps outputs unit-normalized.
    """

    def __init__(self, base: ColumnEncoder, transform: np.ndarray) -> None:
        if transform.shape != (base.dim, base.dim):
            raise ValueError(
                f"transform must be ({base.dim}, {base.dim}), got {transform.shape}"
            )
        self.base = base
        self.transform = transform

    @property
    def dim(self) -> int:
        """Embedding dimensionality (unchanged by the linear map)."""
        return self.base.dim

    def encode(self, column: Column) -> np.ndarray:
        """Base encoding, mapped through ``W`` and re-normalized."""
        vector = self.base.encode(column) @ self.transform
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def encode_many(self, columns) -> np.ndarray:
        """Encode several columns; shape (len(columns), dim)."""
        if not columns:
            return np.zeros((0, self.dim))
        return np.stack([self.encode(column) for column in columns])


class ContrastiveFineTuner:
    """Learns the linear map from self-supervised column pairs.

    Parameters
    ----------
    encoder:
        The frozen base encoder.
    sample_size:
        Rows per augmentation draw (two independent draws of each column
        form one positive pair).
    positive_target / negative_target:
        Cosine levels the objective pulls positives above and pushes
        negatives below (hinge-style; pairs already beyond their target
        contribute no gradient).
    learning_rate / l2_to_identity:
        Step size and a pull toward the identity map that keeps the
        transform from collapsing directions.
    """

    def __init__(
        self,
        encoder: ColumnEncoder,
        *,
        sample_size: int = 100,
        positive_target: float = 0.95,
        negative_target: float = 0.4,
        learning_rate: float = 0.1,
        l2_to_identity: float = 0.01,
        seed_key: str = "finetune-v1",
    ) -> None:
        if not 0.0 < positive_target <= 1.0:
            raise ValueError(f"positive_target must be in (0, 1], got {positive_target}")
        if not -1.0 <= negative_target < positive_target:
            raise ValueError(
                "negative_target must be below positive_target, got "
                f"{negative_target} >= {positive_target}"
            )
        self.encoder = encoder
        self.sample_size = sample_size
        self.positive_target = positive_target
        self.negative_target = negative_target
        self.learning_rate = learning_rate
        self.l2_to_identity = l2_to_identity
        self.seed_key = seed_key

    # -- pair construction -------------------------------------------------------

    def build_pairs(
        self, columns: list[Column]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Embed two augmented views per column; derive positives/negatives.

        Returns (view_a, view_b, positive index pairs, negative index pairs)
        where views are (n, dim) matrices of base-encoder embeddings.
        """
        if len(columns) < 2:
            raise ValueError("need at least two columns for contrastive pairs")
        view_a = []
        view_b = []
        for index, column in enumerate(columns):
            sampler_a = UniformSampler(self.sample_size)
            sampler_b = UniformSampler(self.sample_size)
            draw_a = sampler_a.sample_column(column, seed_key=f"{self.seed_key}-a{index}")
            draw_b = sampler_b.sample_column(column, seed_key=f"{self.seed_key}-b{index}")
            view_a.append(self.encoder.encode(draw_a))
            view_b.append(self.encoder.encode(draw_b))
        a = np.stack(view_a)
        b = np.stack(view_b)
        n = len(columns)
        positives = np.array([(i, i) for i in range(n)])
        rng = rng_for("finetune-negatives", self.seed_key, n)
        negatives = []
        for i in range(n):
            j = int(rng.integers(0, n - 1))
            if j >= i:
                j += 1
            negatives.append((i, j))
        return a, b, positives, np.array(negatives)

    # -- training -------------------------------------------------------------------

    def fit(
        self, columns: list[Column], *, steps: int = 200
    ) -> tuple[FineTunedEncoder, FineTuneReport]:
        """Learn the map on ``columns``; returns the tuned encoder + report."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        a, b, positives, negatives = self.build_pairs(columns)
        dim = self.encoder.dim
        transform = np.eye(dim)
        report = FineTuneReport(steps=steps)
        report.positive_cosine_before = self._mean_cosine(a, b, positives, transform)
        report.negative_cosine_before = self._mean_cosine(a, b, negatives, transform)

        for _step in range(steps):
            loss, gradient = self._loss_and_gradient(
                a, b, positives, negatives, transform
            )
            report.losses.append(loss)
            transform -= self.learning_rate * gradient

        report.positive_cosine_after = self._mean_cosine(a, b, positives, transform)
        report.negative_cosine_after = self._mean_cosine(a, b, negatives, transform)
        return FineTunedEncoder(self.encoder, transform), report

    # -- objective ----------------------------------------------------------------------

    @staticmethod
    def _pair_cosines(
        a: np.ndarray, b: np.ndarray, pairs: np.ndarray, transform: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cosines of transformed pairs plus the transformed (normalized) views."""
        left = a[pairs[:, 0]] @ transform
        right = b[pairs[:, 1]] @ transform
        left_norm = np.linalg.norm(left, axis=1, keepdims=True)
        right_norm = np.linalg.norm(right, axis=1, keepdims=True)
        left_unit = np.divide(
            left, left_norm, out=np.zeros_like(left), where=left_norm > 0
        )
        right_unit = np.divide(
            right, right_norm, out=np.zeros_like(right), where=right_norm > 0
        )
        return np.sum(left_unit * right_unit, axis=1), left_unit, right_unit

    def _mean_cosine(
        self, a: np.ndarray, b: np.ndarray, pairs: np.ndarray, transform: np.ndarray
    ) -> float:
        cosines, _, _ = self._pair_cosines(a, b, pairs, transform)
        return float(cosines.mean())

    def _loss_and_gradient(
        self,
        a: np.ndarray,
        b: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
        transform: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        """Hinge loss on pair cosines; gradient approximated on raw views.

        The gradient treats the normalization as locally constant (a common,
        stable simplification for small steps): d cos / dW ≈ xᵀy' + yᵀx'
        scaled by the hinge activity of the pair.
        """
        gradient = np.zeros_like(transform)
        loss = 0.0
        for pairs, target, sign in (
            (positives, self.positive_target, -1.0),  # raise positives
            (negatives, self.negative_target, +1.0),  # lower negatives
        ):
            cosines, left_unit, right_unit = self._pair_cosines(
                a, b, pairs, transform
            )
            if sign < 0:
                active = cosines < target
                loss += float(np.clip(target - cosines, 0.0, None).sum())
            else:
                active = cosines > target
                loss += float(np.clip(cosines - target, 0.0, None).sum())
            if not np.any(active):
                continue
            raw_left = a[pairs[active, 0]]
            raw_right = b[pairs[active, 1]]
            # d(xW · yW)/dW contribution, folded over the active pairs.
            gradient += sign * (
                raw_left.T @ right_unit[active] + raw_right.T @ left_unit[active]
            )
        total_pairs = len(positives) + len(negatives)
        gradient /= total_pairs
        gradient += self.l2_to_identity * (transform - np.eye(transform.shape[0]))
        return loss / total_pairs, gradient
