"""Shared token-embedding model base: the batched embedding contract.

Every registry model embeds tokens one at a time through ``embed_token``;
that was fine for the search side but made corpus builds a per-column,
per-token Python loop.  This module defines the canonical *batch contract*
all models implement:

``embed_tokens_batch(list[list[str]]) -> list[ndarray]``
    One call embeds the token sequences of a whole column chunk.  For
    *context-free* models (hashing, webtable, cooccur — a token's vector
    never depends on its neighbours) the default implementation dedups
    tokens across the entire batch and embeds each distinct token exactly
    once; contextual models (bertlike, contextual) override it to batch
    the underlying token fetch while still mixing per sequence.

``embed_tokens_distinct(list[str]) -> ndarray``
    The dedup kernel: embeds a list of *unique* tokens, consulting the
    model's bounded LRU :class:`TokenVectorCache` first so values repeated
    across columns cost one embed per process, not one per occurrence.

``idf_batch(list[str]) -> ndarray``
    Vectorized idf lookup for the tf-idf aggregation path.

Subclasses override ``_embed_distinct_uncached`` (the real vectorized
work) and leave the caching, deduping, and fan-out to the base class.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

__all__ = ["LRUCache", "TokenEmbeddingModel"]


class LRUCache:
    """Bounded, thread-safe LRU mapping with hit/miss accounting.

    Used for the shared token-vector cache (token → unit vector) and the
    encoder's value caches (cell value → tokens / vector sums).  Both see
    heavy-tailed key distributions — categorical values repeat massively
    across warehouse columns — so a bounded LRU keeps memory flat while
    serving almost every repeat from the cache.  Registry models are
    process-wide singletons whose caches may be touched from several
    engines at once, so ``get``/``put`` take an internal lock (concurrent
    misses at worst duplicate an embed; they never corrupt the map).
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={len(self)}, capacity={self.capacity}, "
            f"hit_rate={self.hit_rate:.2f})"
        )

    def get(self, key: object) -> object | None:
        """Cached value for ``key`` (marked most-recent), counting hit/miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        """Store ``value``, evicting the least-recently-used entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """Machine-readable snapshot for stats endpoints and bench reports."""
        return {
            "size": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


class TokenEmbeddingModel:
    """Base class providing the batched embedding contract.

    Subclasses must set ``dim`` and implement ``embed_token``; everything
    else has a correct (if unvectorized) default.  ``context_free`` declares
    whether a token's vector is independent of its neighbours — the switch
    that lets the batch path dedup tokens across columns.
    """

    name = "abstract"
    #: A token's vector never depends on surrounding tokens; batch calls may
    #: dedup tokens across the whole batch.  Contextual models set False.
    context_free = True

    dim: int
    #: Bounded token → vector cache shared across batch calls; None when the
    #: model has no cacheable per-token path (contextual mixers delegate).
    token_cache: LRUCache | None = None

    # -- single-token / single-sequence paths (reference implementations) ------

    def embed_token(self, token: str) -> np.ndarray:
        """Vector for one token."""
        raise NotImplementedError

    def embed_tokens(self, tokens: list[str]) -> np.ndarray:
        """Matrix of shape (len(tokens), dim); the sequential reference path."""
        if not tokens:
            return np.zeros((0, self.dim))
        return np.stack([self.embed_token(token) for token in tokens])

    def idf(self, token: str) -> float:
        """Inverse document frequency; models without corpus stats use 1.0."""
        return 1.0

    @property
    def is_trained(self) -> bool:
        """Models that need no training are always ready."""
        return True

    # -- batch contract ---------------------------------------------------------

    def _embed_distinct_uncached(self, tokens: Sequence[str]) -> np.ndarray:
        """Embed unique tokens without consulting the cache (override me)."""
        return self.embed_tokens(list(tokens))

    def embed_tokens_distinct(self, tokens: Sequence[str]) -> np.ndarray:
        """Embed a sequence of *unique* tokens, one row each, cache-first.

        Cached rows are gathered; misses are embedded in one vectorized
        pass and written back.  Callers must not mutate the returned rows.
        Contextual models bypass the cache entirely: their per-token
        output depends on the surrounding sequence, so caching it (or
        serving a base-model row in its place) would be wrong — and their
        ``token_cache`` may belong to a *shared* base model that must
        never see contextualized rows.
        """
        if not tokens:
            return np.zeros((0, self.dim))
        cache = self.token_cache
        if cache is None or not self.context_free:
            return self._embed_distinct_uncached(tokens)
        rows = np.empty((len(tokens), self.dim))
        missing: list[str] = []
        missing_positions: list[int] = []
        for position, token in enumerate(tokens):
            vector = cache.get(token)
            if vector is None:
                missing.append(token)
                missing_positions.append(position)
            else:
                rows[position] = vector
        if missing:
            computed = self._embed_distinct_uncached(missing)
            for offset, position in enumerate(missing_positions):
                # Copy before caching: a row view would pin the whole batch
                # matrix in memory for as long as one entry survives.
                vector = computed[offset].copy()
                vector.setflags(write=False)
                rows[position] = vector
                cache.put(missing[offset], vector)
        return rows

    def embed_tokens_batch(self, token_lists: Sequence[Sequence[str]]) -> list[np.ndarray]:
        """Embed many token sequences in one call; one matrix per sequence.

        Element-wise equivalent to ``[embed_tokens(ts) for ts in
        token_lists]``.  Context-free models embed each distinct token in
        the batch exactly once (through the token cache) and fan the rows
        back out with an index gather; contextual models override this to
        preserve per-sequence mixing.
        """
        if not self.context_free:
            return [self.embed_tokens(list(tokens)) for tokens in token_lists]
        distinct: dict[str, int] = {}
        for tokens in token_lists:
            for token in tokens:
                if token not in distinct:
                    distinct[token] = len(distinct)
        matrix = self.embed_tokens_distinct(list(distinct))
        outputs: list[np.ndarray] = []
        for tokens in token_lists:
            if not tokens:
                outputs.append(np.zeros((0, self.dim)))
                continue
            indices = np.fromiter(
                (distinct[token] for token in tokens), dtype=np.intp, count=len(tokens)
            )
            outputs.append(matrix[indices])
        return outputs

    def idf_batch(self, tokens: Sequence[str]) -> np.ndarray:
        """Vectorized :meth:`idf`; shape (len(tokens),)."""
        return np.fromiter(
            (self.idf(token) for token in tokens), dtype=np.float64, count=len(tokens)
        )

    def token_cache_stats(self) -> dict[str, object] | None:
        """Snapshot of the token-vector cache, or None when the model has none."""
        return self.token_cache.stats() if self.token_cache is not None else None
