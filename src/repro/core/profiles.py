"""Embedding cache: amortize column profiling across queries.

§5.1 of the paper notes that actively sampling a 12,000-table warehouse is
expensive and that samples (and profiles) should be shared across
applications.  :class:`EmbeddingCache` is that sharing layer: WarpGate
records every column embedding it computes, so a query over an
already-indexed column skips the load + embed steps entirely — the "passive
sampling of user queries" optimization.
"""

from __future__ import annotations

import numpy as np

from repro.storage.schema import ColumnRef

__all__ = ["EmbeddingCache"]


class EmbeddingCache:
    """ColumnRef → embedding vector, with hit/miss accounting."""

    def __init__(self) -> None:
        self._vectors: dict[ColumnRef, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, ref: ColumnRef) -> bool:
        return ref in self._vectors

    def get(self, ref: ColumnRef) -> np.ndarray | None:
        """Cached vector for ``ref``, counting the hit or miss."""
        vector = self._vectors.get(ref)
        if vector is None:
            self.misses += 1
        else:
            self.hits += 1
        return vector

    def put(self, ref: ColumnRef, vector: np.ndarray) -> None:
        """Store a vector (copies are not taken; callers must not mutate)."""
        self._vectors[ref] = vector

    def invalidate(self, ref: ColumnRef) -> None:
        """Drop one entry (e.g. after a table refresh)."""
        self._vectors.pop(ref, None)

    def clear(self) -> None:
        """Drop everything and reset counters."""
        self._vectors.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """Machine-readable snapshot (size, traffic, hit rate)."""
        return {
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }
