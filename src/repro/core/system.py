"""Common interface and helpers for join-discovery systems.

Every system (WarpGate and both baselines) indexes a corpus through a
metered :class:`~repro.warehouse.connector.WarehouseConnector` and answers
top-k queries with a :class:`~repro.core.candidates.DiscoveryResult`, so
effectiveness and efficiency are measured identically across systems.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.candidates import DiscoveryResult
from repro.errors import NotIndexedError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.types import DataType
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import Sampler

__all__ = ["ELIGIBLE_TYPES", "IndexReport", "JoinDiscoverySystem"]

# Column types worth indexing for join discovery.  Dates and booleans join
# trivially (tiny shared domains) and are excluded by every system equally.
ELIGIBLE_TYPES = (DataType.STRING, DataType.INTEGER, DataType.FLOAT)


@dataclass
class IndexReport:
    """What indexing a corpus cost.

    ``columns_indexed`` counts columns newly added to the index;
    ``columns_replaced`` counts in-place replacements of already-indexed
    columns (re-indexing an existing corpus), so the two never
    double-count one column.
    """

    system: str
    columns_indexed: int = 0
    columns_replaced: int = 0
    columns_skipped: int = 0
    wall_seconds: float = 0.0
    simulated_load_seconds: float = 0.0
    scanned_bytes: int = 0
    charged_dollars: float = 0.0
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Wall time plus simulated warehouse unload time."""
        return self.wall_seconds + self.simulated_load_seconds


class JoinDiscoverySystem(ABC):
    """Abstract join-discovery system: index once, search many times."""

    name: str = "abstract"

    def __init__(self) -> None:
        self._connector: WarehouseConnector | None = None
        self._indexed = False

    # -- shared plumbing -----------------------------------------------------------

    @property
    def connector(self) -> WarehouseConnector:
        """The connector captured at indexing time."""
        if self._connector is None:
            raise NotIndexedError(f"{self.name} has not indexed a corpus yet")
        return self._connector

    @property
    def is_indexed(self) -> bool:
        """True once :meth:`index_corpus` has completed."""
        return self._indexed

    def eligible_refs(self, connector: WarehouseConnector) -> list[ColumnRef]:
        """Refs of all columns any system should index (metadata only)."""
        refs = []
        for database_name, table in connector.warehouse.table_refs():
            for column in table.columns:
                if column.dtype in ELIGIBLE_TYPES:
                    refs.append(ColumnRef(database_name, table.name, column.name))
        return refs

    def load_column(
        self, ref: ColumnRef, sampler: Sampler | None
    ) -> tuple[Column, float, float]:
        """Scan one column; returns (column, measured_s, simulated_s)."""
        start = time.perf_counter()
        column, receipt = self.connector.scan_column(ref, sampler=sampler)
        measured = time.perf_counter() - start
        return column, measured, receipt.simulated_seconds

    def _require_indexed(self) -> None:
        if not self._indexed:
            raise NotIndexedError(
                f"{self.name}.search() called before index_corpus()"
            )

    # -- system contract --------------------------------------------------------------

    @abstractmethod
    def index_corpus(
        self, connector: WarehouseConnector, *, sampler: Sampler | None = None
    ) -> IndexReport:
        """Profile and index every eligible column reachable via ``connector``."""

    @abstractmethod
    def search(self, query: ColumnRef, k: int = 10) -> DiscoveryResult:
        """Top-``k`` columns judged joinable with ``query``."""

    # -- common post-processing ----------------------------------------------------------

    @staticmethod
    def drop_same_table(
        scored: list[tuple[ColumnRef, float]], query: ColumnRef, k: int
    ) -> list[tuple[ColumnRef, float]]:
        """Remove the query column and its table-mates, then trim to ``k``.

        Join discovery looks for *other* tables to join with; every system
        applies the same filter so rankings stay comparable.
        """
        filtered = [
            (ref, score)
            for ref, score in scored
            if not ref.same_table(query)
        ]
        return filtered[:k]

    def __repr__(self) -> str:
        state = "indexed" if self._indexed else "empty"
        return f"{type(self).__name__}({state})"
