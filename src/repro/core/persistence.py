"""Index persistence: save and restore a WarpGate deployment artifact.

§5.2.2 of the paper discusses provisioning WarpGate in production; the
operational unit there is the *profiled index* — column embeddings plus
their addresses — which is much cheaper to ship than to recompute (every
recompute is a metered warehouse scan).

The artifact is a single ``.npz`` file holding the embedding matrix, the
serialized column refs, and the config fields needed to rebuild the search
backend identically.  Loading never touches the warehouse.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.errors import DiscoveryError
from repro.storage.schema import ColumnRef

__all__ = ["save_index", "load_index", "load_service"]

_FORMAT_VERSION = 1


def save_index(system, path: str | Path) -> Path:
    """Write an indexed system's vectors + config to ``path`` (.npz).

    Accepts a :class:`WarpGate` or a
    :class:`~repro.service.discovery.DiscoveryService` (unwrapped to its
    engine).  Raises :class:`DiscoveryError` if the system has not indexed
    a corpus.
    """
    system = getattr(system, "engine", system)
    if not system.is_indexed:
        raise DiscoveryError("cannot save an unindexed WarpGate")
    path = Path(path)
    refs = []
    vectors = []
    for ref, vector in sorted(
        ((ref, system.vector_of(ref)) for ref in system._vectors),
        key=lambda pair: str(pair[0]),
    ):
        refs.append([ref.database, ref.table, ref.column])
        vectors.append(vector)
    header = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(system.config),
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        refs=np.array(refs, dtype=object),
        vectors=np.stack(vectors) if vectors else np.zeros((0, system.config.dim)),
    )
    # np.savez appends .npz when absent; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path) -> WarpGate:
    """Rebuild a searchable WarpGate from a saved artifact.

    The restored system answers :meth:`~repro.core.warpgate.WarpGate.search`
    only through pre-embedded queries (no connector is attached); use
    :meth:`attach` semantics by calling ``index_corpus`` if live scanning is
    needed again.  Practically: call ``system.search_vector(...)`` or attach
    the original warehouse connector.
    """
    path = Path(path)
    if not path.exists():
        raise DiscoveryError(f"no index artifact at {path}")
    with np.load(path, allow_pickle=True) as payload:
        header = json.loads(bytes(payload["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != _FORMAT_VERSION:
            raise DiscoveryError(
                f"unsupported index format {header.get('format_version')!r}"
            )
        config = WarpGateConfig(**header["config"])
        refs = payload["refs"]
        vectors = payload["vectors"]
    system = WarpGate(config)
    for position in range(len(refs)):
        database, table, column = (str(part) for part in refs[position])
        ref = ColumnRef(database, table, column)
        vector = np.asarray(vectors[position], dtype=np.float64)
        system._index.add(ref, vector)
        system._vectors[ref] = vector
    system._indexed = True
    return system


def load_service(path: str | Path, *, connector=None):
    """Rebuild a :class:`~repro.service.discovery.DiscoveryService` from an artifact.

    The serving-layer counterpart of :func:`load_index`; pass ``connector``
    to re-enable live-scanning queries and incremental mutation.
    """
    from repro.service.discovery import DiscoveryService

    return DiscoveryService.load(path, connector=connector)
