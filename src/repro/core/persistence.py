"""Index persistence: save and restore a WarpGate deployment artifact.

§5.2.2 of the paper discusses provisioning WarpGate in production; the
operational unit there is the *profiled index* — column embeddings plus
their addresses — which is much cheaper to ship than to recompute (every
recompute is a metered warehouse scan).

The artifact is a single ``.npz`` file holding the index's columnar arena
payload — the ``float32`` embedding matrix and, for the LSH backend, the
packed ``uint64`` SimHash band keys — plus the serialized column refs and
the config fields needed to rebuild the search backend identically.
Loading never touches the warehouse, and (format 2) never recomputes
signatures: the arena is bulk-restored in one pass.  Format-1 artifacts
(``float64`` vectors, no signatures) still load; their signatures are
rehashed from the stored vectors.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.errors import DiscoveryError
from repro.storage.schema import ColumnRef

__all__ = ["save_index", "load_index", "load_service"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_index(system, path: str | Path) -> Path:
    """Write an indexed system's arena payload + config to ``path`` (.npz).

    Accepts a :class:`WarpGate` or a
    :class:`~repro.service.discovery.DiscoveryService` (unwrapped to its
    engine).  Raises :class:`DiscoveryError` if the system has not indexed
    a corpus.
    """
    system = getattr(system, "engine", system)
    if not system.is_indexed:
        raise DiscoveryError("cannot save an unindexed WarpGate")
    path = Path(path)
    index = system._index
    arena = index.arena
    ordered = sorted(index.keys(), key=str)
    rows = np.asarray([arena.row_of(ref) for ref in ordered], dtype=np.int64)
    refs = [[ref.database, ref.table, ref.column] for ref in ordered]
    header = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(system.config),
    }
    payload: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "refs": np.array(refs, dtype=object),
        "vectors": (
            arena.matrix[rows]
            if rows.size
            else np.zeros((0, system.config.dim), dtype=np.float32)
        ),
    }
    if arena.signature_words and rows.size:
        payload["signatures"] = arena.signatures[rows]
    np.savez_compressed(path, **payload)
    # np.savez appends .npz when absent; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path) -> WarpGate:
    """Rebuild a searchable WarpGate from a saved artifact.

    The restored system answers :meth:`~repro.core.warpgate.WarpGate.search`
    only through pre-embedded queries (no connector is attached); use
    :meth:`attach` semantics by calling ``index_corpus`` if live scanning is
    needed again.  Practically: call ``system.search_vector(...)`` or attach
    the original warehouse connector.
    """
    path = Path(path)
    if not path.exists():
        raise DiscoveryError(f"no index artifact at {path}")
    with np.load(path, allow_pickle=True) as payload:
        header = json.loads(bytes(payload["header"].tobytes()).decode("utf-8"))
        version = header.get("format_version")
        if version not in _SUPPORTED_VERSIONS:
            raise DiscoveryError(f"unsupported index format {version!r}")
        config = WarpGateConfig(**header["config"])
        raw_refs = payload["refs"]
        vectors = payload["vectors"]
        signatures = payload["signatures"] if "signatures" in payload else None
    system = WarpGate(config)
    refs = [
        ColumnRef(*(str(part) for part in raw_refs[position]))
        for position in range(len(raw_refs))
    ]
    if refs:
        index = system._index
        if signatures is not None and index.arena.signature_words != (
            signatures.shape[1] if signatures.ndim == 2 else -1
        ):
            # Backend/banding drift (shouldn't happen — the config travels
            # with the artifact); rehash rather than load bad keys.
            signatures = None
        index.bulk_load(refs, np.asarray(vectors), signatures=signatures)
        system._indexed = True
    return system


def load_service(path: str | Path, *, connector=None):
    """Rebuild a :class:`~repro.service.discovery.DiscoveryService` from an artifact.

    The serving-layer counterpart of :func:`load_index`; pass ``connector``
    to re-enable live-scanning queries and incremental mutation.
    """
    from repro.service.discovery import DiscoveryService

    return DiscoveryService.load(path, connector=connector)
