"""Index persistence: save and restore a WarpGate deployment artifact.

§5.2.2 of the paper discusses provisioning WarpGate in production; the
operational unit there is the *profiled index* — column embeddings plus
their addresses — which is much cheaper to ship than to recompute (every
recompute is a metered warehouse scan).

The artifact is a single ``.npz`` file holding the index's columnar
payload — the ``float32`` embedding matrix and, for the LSH backend, the
packed ``uint64`` SimHash band keys — plus a JSON header with the column
refs and the config fields needed to rebuild the search backend
identically.  Loading never touches the warehouse.

Format history
--------------
* **format 3** (current): *uncompressed* archive; refs ship as a
  fixed-width unicode member (no pickling, C-speed parse).  Stored
  members are memory-mapped on load (:mod:`repro.index.mmapio`) and
  adopted zero-copy into the arena with derived structures left to lazy
  resynchronization, so a cold process maps a multi-GB index in
  milliseconds — O(refs), independent of ``dim`` — and pages vectors in
  lazily as queries touch them.  ``compress=True`` opts back into
  deflate (smaller file, in-memory load).  Sharded engines
  (``config.n_shards > 1``) save as one flat payload and re-partition on
  load.
* **format 2**: compressed archive, pickled ref array, ``float32``
  vectors + signatures; restored through the bulk-load path.
* **format 1**: compressed, ``float64`` vectors, no signatures; the
  signatures are rehashed from the stored vectors on load.

All three load; only format 3 is written.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.durability import faultpoints
from repro.errors import ArtifactCorruptionError, DiscoveryError
from repro.index.mmapio import load_npz_arrays
from repro.index.sharding import ShardedIndex
from repro.storage.schema import ColumnRef

__all__ = [
    "save_index",
    "load_index",
    "load_service",
    "save_index_durable",
    "load_index_durable",
]

_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def _write_npz_atomic(path: Path, payload: dict, *, compress: bool) -> Path:
    """Write an ``.npz`` artifact atomically: temp + fsync + ``os.replace``.

    The temp file lives in the target directory (``os.replace`` must not
    cross filesystems), so a crash mid-save leaves at worst a stale
    ``.tmp`` file — the previous artifact at ``path`` is never clobbered
    until the new bytes are durable.  ``np.savez`` appends ``.npz`` to
    bare *paths* but not to open file objects, so the final suffix is
    normalized first and the archive written through a handle.
    """
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    tmp = final.with_name(f".{final.name}.tmp")
    writer = np.savez_compressed if compress else np.savez
    with tmp.open("wb") as handle:
        writer(handle, **payload)
        handle.flush()
        os.fsync(handle.fileno())
    faultpoints.fire("artifact.save.before_replace")
    os.replace(tmp, final)
    faultpoints.fire("artifact.save.after_replace")
    return final


def _export_sorted(system) -> tuple[list[ColumnRef], np.ndarray, np.ndarray | None]:
    """The index payload with refs in canonical (str) order."""
    keys, vectors, signatures = system._index.export_rows()
    refs = list(keys)
    order = sorted(range(len(refs)), key=lambda position: str(refs[position]))
    ordered = np.asarray(order, dtype=np.int64)
    refs = [refs[position] for position in order]
    vectors = (
        vectors[ordered]
        if len(refs)
        else np.zeros((0, system.config.dim), dtype=np.float32)
    )
    signatures = signatures[ordered] if signatures is not None and len(refs) else None
    return refs, vectors, signatures


def save_index(system, path: str | Path, *, compress: bool = False) -> Path:
    """Write an indexed system's index payload + config to ``path`` (.npz).

    Accepts a :class:`WarpGate` or a
    :class:`~repro.service.discovery.DiscoveryService` (unwrapped to its
    engine); sharded engines are gathered across shards.  The archive is
    uncompressed by default so it can be memory-mapped on load — pass
    ``compress=True`` to trade the zero-copy cold load for a smaller
    file.  Raises :class:`DiscoveryError` if the system has not indexed a
    corpus.
    """
    system = getattr(system, "engine", system)
    if not system.is_indexed:
        raise DiscoveryError("cannot save an unindexed WarpGate")
    path = Path(path)
    refs, vectors, signatures = _export_sorted(system)
    # Refs ship as a fixed-width unicode member (not pickled objects, not
    # JSON): it loads without allow_pickle, memory-maps like any numeric
    # member, and converts back to Python strings in one C-speed tolist.
    ref_parts = np.array(
        [[ref.database, ref.table, ref.column] for ref in refs], dtype=np.str_
    ).reshape(len(refs), 3)
    payload: dict[str, np.ndarray] = {
        "refs": ref_parts,
        "vectors": np.ascontiguousarray(vectors, dtype=np.float32),
    }
    if signatures is not None:
        payload["signatures"] = np.ascontiguousarray(signatures, dtype=np.uint64)
    header = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(system.config),
        # Per-member CRC32 of the raw array bytes; loaders verify any
        # member they materialize in memory (mmap'd members stay lazy —
        # hashing them would force a full page-in).
        "member_crc32": {
            name: zlib.crc32(np.ascontiguousarray(array).tobytes())
            for name, array in payload.items()
        },
    }
    payload = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **payload,
    }
    return _write_npz_atomic(path, payload, compress=compress)


def _save_legacy(system, path: str | Path, *, version: int) -> Path:
    """Write a format-1/2 artifact (tests + load-compat benchmarks only).

    Replicates what earlier releases wrote: compressed archive, pickled
    ref array; format 1 additionally downcasts to the old ``float64``
    no-signature payload.
    """
    if version not in (1, 2):
        raise ValueError(f"legacy writer supports formats 1 and 2, got {version}")
    system = getattr(system, "engine", system)
    if not system.is_indexed:
        raise DiscoveryError("cannot save an unindexed WarpGate")
    path = Path(path)
    refs, vectors, signatures = _export_sorted(system)
    raw_refs = np.empty(len(refs), dtype=object)
    raw_refs[:] = [[ref.database, ref.table, ref.column] for ref in refs]
    header = {"format_version": version, "config": asdict(system.config)}
    payload: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "refs": raw_refs,
        "vectors": (
            vectors.astype(np.float64) if version == 1 else vectors
        ),
    }
    if version == 2 and signatures is not None:
        payload["signatures"] = signatures
    return _write_npz_atomic(path, payload, compress=True)


def load_index(path: str | Path) -> WarpGate:
    """Rebuild a searchable WarpGate from a saved artifact.

    Format-3 artifacts restore zero-copy: the vector (and signature)
    members stay memory-mapped and the arena adopts them directly, so the
    load cost is O(refs), not O(n·dim) — the OS pages vector data in
    lazily.  (A sharded config re-partitions the flat payload instead,
    which copies.)  Format-1/2 artifacts take the legacy decompress +
    bulk-load path.

    The restored system answers :meth:`~repro.core.warpgate.WarpGate.search`
    only through pre-embedded queries (no connector is attached); use
    :meth:`attach` semantics by calling ``index_corpus`` if live scanning is
    needed again.  Practically: call ``system.search_vector(...)`` or attach
    the original warehouse connector.
    """
    path = Path(path)
    if not path.exists():
        raise DiscoveryError(f"no index artifact at {path}")
    # A truncated download, a bit flip, or a non-archive file must
    # surface as one typed error naming the path (and, when known, the
    # member) — never a raw zipfile/numpy traceback from the loader's
    # guts, and never a silently wrong index.
    try:
        payload = load_npz_arrays(path, allow_pickle=True)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        raise ArtifactCorruptionError(path, detail=str(error)) from error
    if "header" not in payload:
        raise ArtifactCorruptionError(path, member="header", detail="missing")
    try:
        header = json.loads(
            bytes(np.asarray(payload["header"]).tobytes()).decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ArtifactCorruptionError(
            path, member="header", detail=str(error)
        ) from error
    version = header.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise DiscoveryError(f"unsupported index format {version!r}")
    config = WarpGateConfig(**header["config"])
    for member in ("refs", "vectors"):
        if member not in payload:
            raise ArtifactCorruptionError(path, member=member, detail="missing")
    vectors = payload["vectors"]
    signatures = payload.get("signatures")
    # Per-member CRC (format-3 headers): verify every member the loader
    # materialized in memory.  Memory-mapped members stay lazy — the OS
    # pages them in on demand, and hashing would defeat the zero-copy
    # load — so mmap'd artifacts rely on the durable store's
    # segment-level checksums instead.
    expected_crcs = header.get("member_crc32") or {}
    for member, expected in expected_crcs.items():
        array = payload.get(member)
        if array is None or isinstance(array, np.memmap):
            continue
        actual = zlib.crc32(np.ascontiguousarray(array).tobytes())
        if actual != int(expected):
            raise ArtifactCorruptionError(
                path,
                member=member,
                detail=f"CRC mismatch ({actual:#010x} != {int(expected):#010x})",
            )
    if version >= 3:
        # Fixed-width unicode member → three Python string lists in one
        # C-speed pass; this loop is on the cold-start critical path.
        parts = np.asarray(payload["refs"])
        refs = (
            list(map(ColumnRef, *parts.T.tolist())) if parts.size else []
        )
    else:
        raw_refs = payload["refs"]
        refs = [
            ColumnRef(*(str(part) for part in raw_refs[position]))
            for position in range(len(raw_refs))
        ]
    system = WarpGate(config)
    if refs:
        index = system._index
        expected_words = (
            index.shards[0].arena.signature_words
            if isinstance(index, ShardedIndex)
            else index.arena.signature_words
        )
        if signatures is not None and expected_words != (
            signatures.shape[1] if signatures.ndim == 2 else -1
        ):
            # Backend/banding drift (shouldn't happen — the config travels
            # with the artifact); rehash rather than load bad keys.
            signatures = None
        if version >= 3 and not isinstance(index, ShardedIndex):
            # Zero-copy: the arena adopts the (typically memory-mapped)
            # artifact members without a normalization or copy pass.
            index.adopt_rows(refs, vectors, signatures)
        else:
            index.bulk_load(refs, np.asarray(vectors), signatures=signatures)
        system._indexed = True
    return system


def load_service(path: str | Path, *, connector=None):
    """Rebuild a :class:`~repro.service.discovery.DiscoveryService` from an artifact.

    The serving-layer counterpart of :func:`load_index`; pass ``connector``
    to re-enable live-scanning queries and incremental mutation.
    """
    from repro.service.discovery import DiscoveryService

    return DiscoveryService.load(path, connector=connector)


def save_index_durable(system, directory: str | Path):
    """Checkpoint an indexed system into a durable store at ``directory``.

    The directory-based counterpart of :func:`save_index`: state lands as
    an immutable checksummed segment plus an atomically-published
    manifest (see :mod:`repro.durability.store`), so a crash mid-save
    never clobbers the previous state.  Returns the open
    :class:`~repro.durability.DurableIndexStore` — subsequent mutations
    can be WAL-logged through it.
    """
    from repro.durability.store import DurableIndexStore

    system = getattr(system, "engine", system)
    if not system.is_indexed:
        raise DiscoveryError("cannot save an unindexed WarpGate")
    config = system.config
    store = DurableIndexStore(
        directory,
        fsync=config.durable_fsync,
        checkpoint_every=config.checkpoint_every,
    )
    store.checkpoint(system)
    return store


def load_index_durable(directory: str | Path):
    """Recover a WarpGate from a durable store: validate, replay, rebuild.

    Runs the full recovery algorithm — manifest parse, segment checksum
    validation, torn-tail discard, WAL replay past ``wal_applied_seq`` —
    and rebuilds a searchable engine holding exactly the
    last-acknowledged mutation set.  Returns ``(system, store, report)``
    where ``report`` says what recovery found (segments loaded, records
    replayed/skipped, torn bytes).  Checksum failures raise the typed
    :mod:`repro.errors` durability errors, never a silent wrong answer.
    """
    from dataclasses import replace

    from repro.durability.store import DurableIndexStore

    directory = Path(directory)
    store = DurableIndexStore(directory, fsync="never")
    config_dict, refs, vectors, report = store.recover()
    config = WarpGateConfig(**config_dict)
    # The store may have been moved/copied since the manifest was
    # written; the directory actually recovered from is the truth.
    config = replace(config, durable_dir=str(directory))
    # Reopen the WAL under the recovered fsync policy for future appends.
    store.close()
    store = DurableIndexStore(
        directory,
        fsync=config.durable_fsync,
        checkpoint_every=config.checkpoint_every,
    )
    system = WarpGate(config)
    if refs:
        # Replay rebuilds vectors bitwise; SimHash signatures rehash
        # deterministically from them inside bulk_load.
        system._index.bulk_load(refs, vectors)
        system._indexed = True
    system.rebuild_index()
    return system, store, report
