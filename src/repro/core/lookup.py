"""Sigma Workbooks "Add column via lookup" (Figure 3).

The paper integrates WarpGate into Workbooks: a user right-clicks a column,
sees the top-k join-path recommendations (candidate column + table +
database + similarity score), picks one, browses the candidate table's
columns, and adds selected columns next to the query column through a
*cardinality-preserving* join — the query table keeps exactly its rows; each
row gains the looked-up value (or null when no match).

Matching is case- and whitespace-insensitive (``normalize_value``): the
"semantically joinable after transformation" cases WarpGate surfaces are
exactly the ones an exact-match join would lose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.warpgate import WarpGate
from repro.errors import InvalidQueryError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.text.tokenize import normalize_value

__all__ = ["LookupRecommendation", "LookupService"]


@dataclass(frozen=True)
class LookupRecommendation:
    """One row of the recommendation window in Figure 3."""

    rank: int
    candidate: ColumnRef
    score: float
    table_columns: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"#{self.rank}: column {self.candidate.column!r} of table "
            f"{self.candidate.table!r} in database {self.candidate.database!r} "
            f"(similarity {self.score:.3f})"
        )


class LookupService:
    """Drives the Add-column-via-lookup flow over an indexed WarpGate.

    Accepts either a raw :class:`WarpGate` (wrapped in a
    :class:`~repro.service.discovery.DiscoveryService` internally, so
    recommendations run through the same locked read path as every other
    caller) or an existing service.
    """

    def __init__(self, warpgate: "WarpGate | DiscoveryService") -> None:
        # Imported lazily: repro.core.lookup loads before repro.core.warpgate
        # during package init, and repro.service sits above both.
        from repro.service.discovery import DiscoveryService

        if isinstance(warpgate, DiscoveryService):
            self.service = warpgate
        else:
            self.service = DiscoveryService(engine=warpgate)
        self.warpgate = self.service.engine

    # -- step 1-2: recommendations ---------------------------------------------------

    def recommend(self, query: ColumnRef, k: int = 3) -> list[LookupRecommendation]:
        """Top-k join-path recommendations with candidate-table metadata."""
        result = self.service.search(query, k)
        recommendations = []
        for rank, candidate in enumerate(result.candidates, start=1):
            table = self.warpgate.connector.warehouse.resolve(candidate.ref)
            recommendations.append(
                LookupRecommendation(
                    rank=rank,
                    candidate=candidate.ref,
                    score=candidate.score,
                    table_columns=table.column_names,
                )
            )
        return recommendations

    # -- step 3: add the chosen columns ------------------------------------------------

    def add_column_via_lookup(
        self,
        query: ColumnRef,
        candidate: ColumnRef,
        value_columns: list[str],
    ) -> Table:
        """Cardinality-preserving join adding ``value_columns`` to the query table.

        For every query-table row, the candidate table is probed on
        normalized equality between the query column and the candidate
        column; the first match supplies the values (Workbooks' Lookup
        semantics), otherwise the cell is null.
        """
        warehouse = self.warpgate.connector.warehouse
        query_table = warehouse.resolve(query)
        candidate_table = warehouse.resolve(candidate)
        for value_column in value_columns:
            if value_column not in candidate_table:
                raise InvalidQueryError(
                    f"candidate table {candidate.table!r} has no column "
                    f"{value_column!r}"
                )
        if query.column not in query_table:
            raise InvalidQueryError(
                f"query table {query.table!r} has no column {query.column!r}"
            )

        # Build the probe map once: normalized join key -> first-match row.
        join_column = candidate_table.column(candidate.column)
        first_match: dict[str, int] = {}
        for row_index, value in enumerate(join_column.values):
            if value is None:
                continue
            key = normalize_value(value)
            if key and key not in first_match:
                first_match[key] = row_index

        result = query_table
        query_values = query_table.column(query.column).values
        for value_column in value_columns:
            source = candidate_table.column(value_column)
            looked_up = []
            for value in query_values:
                match_row = (
                    first_match.get(normalize_value(value)) if value is not None else None
                )
                looked_up.append(source[match_row] if match_row is not None else None)
            new_name = value_column
            suffix = 2
            while new_name in result:
                new_name = f"{value_column}_{suffix}"
                suffix += 1
            result = result.with_column(Column(new_name, looked_up, source.dtype))
        return result

    def match_rate(self, query: ColumnRef, candidate: ColumnRef) -> float:
        """Fraction of query rows that find a lookup partner.

        A direct quality check on a recommendation: semantic similarity
        promises joinability, this verifies it on the actual data.
        """
        warehouse = self.warpgate.connector.warehouse
        query_values = warehouse.resolve(query).column(query.column).values
        candidate_values = warehouse.resolve(candidate).column(candidate.column).values
        candidate_keys = {
            normalize_value(value) for value in candidate_values if value is not None
        }
        non_null = [value for value in query_values if value is not None]
        if not non_null:
            return 0.0
        matched = sum(
            1 for value in non_null if normalize_value(value) in candidate_keys
        )
        return matched / len(non_null)
