"""WarpGate: embedding-based semantic join discovery (Figure 2).

Indexing pipeline: for every eligible column in the warehouse, scan a
(possibly sampled) slice through the metered connector, encode it into a
unit vector with the configured embedding model, and insert it into the
configured similarity index (SimHash LSH by default).

Search pipeline: scan + encode the query column the same way, probe the
index, and return candidates ranked by cosine similarity above the
threshold, excluding the query's own table.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro._util import chunked
from repro.core.system import IndexReport, JoinDiscoverySystem
from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.core.config import WarpGateConfig
from repro.core.profiles import EmbeddingCache
from repro.embedding.encoder import ColumnEncoder, EncodeStats
from repro.embedding.registry import get_model
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.minhash import MinHashSignature
from repro.index.pivot import PivotFilterIndex
from repro.index.sharding import ShardedIndex
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import Sampler, make_sampler

__all__ = ["WarpGate"]


class WarpGate(JoinDiscoverySystem):
    """The paper's system: semantic join discovery over a CDW.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.WarpGateConfig`; defaults to the
        paper's configuration (Web Table Embeddings, SimHash LSH, cosine
        threshold 0.7, full-pass indexing).
    cache:
        Optional shared :class:`~repro.core.profiles.EmbeddingCache`; when
        given, queries over already-profiled columns skip load + embed.
    """

    name = "warpgate"

    def __init__(
        self,
        config: WarpGateConfig | None = None,
        *,
        cache: EmbeddingCache | None = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else WarpGateConfig()
        self.cache = cache
        self._model = get_model(self.config.model_name, dim=self.config.dim)
        self.encoder = ColumnEncoder(
            self._model,
            aggregation=self.config.aggregation,
            include_column_name=self.config.include_column_name,
            dedupe_values=self.config.dedupe_values,
            numeric_profile_weight=self.config.numeric_profile_weight,
        )
        self._index = self._build_index()
        # Hybrid-scoring sketch cache: ref -> (MinHash signature, distinct
        # count) of the scanned values, captured during indexing so search
        # time pays no extra warehouse scans for candidates.
        self._signatures: dict[ColumnRef, tuple[MinHashSignature, int]] = {}

    def _build_index(self):
        """Instantiate the configured search backend.

        With ``n_shards > 1`` the backend factory is replicated behind a
        :class:`~repro.index.sharding.ShardedIndex` (parallel fan-out,
        shard-local mutation); ``shard_workers > 0`` upgrades that to a
        :class:`~repro.index.procpool.ProcessShardedIndex` (one worker
        process per shard over shared mmap segments — GIL-free scoring);
        ``quantize`` enables int8 candidate scoring with exact float32
        re-ranking on every shard.
        """

        def make_backend():
            if self.config.search_backend == "lsh":
                return SimHashLSHIndex(
                    self.config.dim,
                    n_bits=self.config.n_bits,
                    n_bands=self.config.n_bands,
                    threshold=self.config.threshold,
                )
            if self.config.search_backend == "exact":
                return ExactCosineIndex(self.config.dim)
            return PivotFilterIndex(self.config.dim, threshold=self.config.threshold)

        if self.config.shard_workers > 0:
            from repro.index.procpool import ProcessShardedIndex

            # One worker process per shard: n_shards == 1 means the
            # worker count *defines* the partitioning (config validation
            # pins any explicit n_shards to shard_workers).
            index = ProcessShardedIndex(
                self.config.dim,
                make_backend,
                n_shards=self.config.shard_workers,
                placement=self.config.shard_placement,
                transport=self.config.worker_transport,
            )
        elif self.config.n_shards > 1:
            index = ShardedIndex(
                self.config.dim,
                make_backend,
                n_shards=self.config.n_shards,
                placement=self.config.shard_placement,
            )
        else:
            index = make_backend()
        if self.config.quantize:
            index.enable_quantization(self.config.rerank_factor)
        return index

    def close(self) -> None:
        """Release engine resources (worker processes, published segments).

        A no-op for in-process engines; with ``shard_workers > 0`` this
        terminates the shard worker pool.  Idempotent.
        """
        close = getattr(self._index, "close", None)
        if close is not None:
            close()

    def _default_sampler(self) -> Sampler | None:
        if self.config.sample_size is None:
            return None
        return make_sampler(self.config.sampling_strategy, self.config.sample_size)

    # -- indexing pipeline ------------------------------------------------------------

    def index_corpus(
        self,
        connector: WarehouseConnector,
        *,
        sampler: Sampler | None = None,
        chunk_size: int | None = None,
    ) -> IndexReport:
        """Embed and index every eligible column (Figure 2, left half).

        The build streams in chunks of ``chunk_size`` columns (default:
        ``config.index_chunk_size``): each chunk is loaded through the
        metered connector, serialized and embedded in one
        :meth:`~repro.embedding.ColumnEncoder.encode_batch` call (deduped
        tokens, shared token-vector cache), and appended through the
        index's columnar bulk path — so a million-column corpus indexes in
        bounded memory while the embedding work stays vectorized.
        """
        self._connector = connector
        sampler = sampler if sampler is not None else self._default_sampler()
        chunk = chunk_size if chunk_size is not None else self.config.index_chunk_size
        if chunk <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk}")
        report = IndexReport(system=self.name)
        start = time.perf_counter()
        meter_before = connector.meter.charged_dollars
        bytes_before = connector.stats.scanned_bytes
        simulated_before = connector.stats.simulated_seconds

        embed_stats = EncodeStats()
        for chunk_refs in chunked(self.eligible_refs(connector), chunk):
            columns = [
                self.load_column(ref, sampler)[0] for ref in chunk_refs
            ]
            matrix, stats = self.encoder.encode_batch(columns)
            embed_stats.merge(stats)
            fresh_refs: list[ColumnRef] = []
            fresh_rows: list[int] = []
            for position, ref in enumerate(chunk_refs):
                vector = matrix[position]
                if not np.any(vector):
                    report.columns_skipped += 1
                    continue
                self._sketch(ref, columns[position])
                if ref in self._index:
                    # Re-indexing over an existing corpus replaces in place.
                    self._store(ref, vector)
                    report.columns_replaced += 1
                else:
                    fresh_refs.append(ref)
                    fresh_rows.append(position)
                    report.columns_indexed += 1
            if fresh_refs:
                self._index.bulk_load(fresh_refs, matrix[fresh_rows])
                if self.cache is not None:
                    for ref, row in zip(fresh_refs, fresh_rows):
                        self.cache.put(ref, matrix[row])

        report.wall_seconds = time.perf_counter() - start
        report.notes["chunk_size"] = chunk
        report.notes["embed"] = embed_stats.to_dict()
        report.simulated_load_seconds = (
            connector.stats.simulated_seconds - simulated_before
        )
        # Wall time already contains the measured scan cost; subtracting the
        # simulated component from it would double-count nothing because the
        # connector never sleeps — the two are disjoint by construction.
        report.scanned_bytes = connector.stats.scanned_bytes - bytes_before
        report.charged_dollars = connector.meter.charged_dollars - meter_before
        report.notes["sampler"] = repr(sampler) if sampler else "full-scan"
        report.notes["backend"] = self.config.search_backend
        self._indexed = True
        return report

    # -- hybrid-scoring sketches --------------------------------------------------------

    def _sketch(self, ref: ColumnRef, column: Column) -> None:
        """Capture the column's MinHash sketch + distinct count (hybrid only)."""
        if self.config.scoring != "hybrid":
            return
        distinct = {
            str(value) for value in column.distinct_values if value is not None
        }
        self._signatures[ref] = (MinHashSignature.of(distinct), len(distinct))

    def _query_signature(self, query: ColumnRef) -> tuple[MinHashSignature, int] | None:
        """Sketch of the query column's values; None without a connector.

        Indexed queries reuse the sketch captured at indexing time; fresh
        query columns are scanned once and their sketch cached alongside.
        """
        cached = self._signatures.get(query)
        if cached is not None:
            return cached
        if self._connector is None:
            return None
        column, _measured, _simulated = self.load_column(
            query, self._default_sampler()
        )
        distinct = {
            str(value) for value in column.distinct_values if value is not None
        }
        sketch = (MinHashSignature.of(distinct), len(distinct))
        self._signatures[query] = sketch
        return sketch

    # -- incremental mutation -----------------------------------------------------------

    def _store(self, ref: ColumnRef, vector: np.ndarray) -> None:
        """Insert or replace one embedding in the index."""
        if ref in self._index:
            self._index.update(ref, vector)
        else:
            self._index.add(ref, vector)
        if self.cache is not None:
            self.cache.put(ref, vector)

    def add_column(self, ref: ColumnRef, *, sampler: Sampler | None = None) -> bool:
        """Scan, embed, and index one column without a full re-index.

        Replaces the stored vector when ``ref`` is already indexed.
        Returns ``False`` when the column embeds to a zero vector (skipped,
        matching :meth:`index_corpus` behaviour).
        """
        return bool(self.add_columns([ref], sampler=sampler))

    def add_columns(
        self, refs: Sequence[ColumnRef], *, sampler: Sampler | None = None
    ) -> list[ColumnRef]:
        """Scan, embed, and index several columns in one batched pass.

        The incremental sibling of :meth:`index_corpus`: all columns load
        through the metered connector, embed in one
        :meth:`~repro.embedding.ColumnEncoder.encode_batch` call, and
        insert (or replace) individually.  Returns the refs actually
        indexed — columns embedding to the zero vector are skipped.
        """
        if not refs:
            return []
        sampler = sampler if sampler is not None else self._default_sampler()
        columns = [self.load_column(ref, sampler)[0] for ref in refs]
        matrix, _stats = self.encoder.encode_batch(columns)
        kept: list[ColumnRef] = []
        for position, ref in enumerate(refs):
            vector = matrix[position]
            if not np.any(vector):
                continue
            self._sketch(ref, columns[position])
            self._store(ref, vector)
            kept.append(ref)
        if kept:
            self._indexed = True
        return kept

    def remove_column(self, ref: ColumnRef) -> None:
        """Drop one column from the index; raises ``KeyError`` if absent."""
        if ref not in self._index:
            raise KeyError(f"{ref} is not indexed")
        self._index.remove(ref)
        self._signatures.pop(ref, None)
        if self.cache is not None:
            self.cache.invalidate(ref)
        if len(self._index) == 0:
            # Evicting the last column leaves nothing searchable; keep
            # is_indexed consistent with what search() can actually do.
            self._indexed = False

    def rebuild_index(self) -> None:
        """Eagerly rebuild derived index structures after mutations.

        The pivot and exact backends otherwise rebuild lazily inside
        ``query``; callers serving concurrent readers use this so the
        read path never writes shared state.
        """
        build = getattr(self._index, "build", None)
        if build is not None and len(self._index) > 0:
            build()

    def refresh_column(self, ref: ColumnRef, *, sampler: Sampler | None = None) -> bool:
        """Re-scan and re-embed one column in place (after data changes).

        A column that now embeds to a zero vector is evicted; returns
        whether the column is indexed afterwards.
        """
        refreshed = self.add_column(ref, sampler=sampler)
        if not refreshed and ref in self._index:
            self.remove_column(ref)
        return refreshed

    # -- search pipeline ----------------------------------------------------------------

    def embed_query(self, query: ColumnRef) -> tuple[np.ndarray, TimingBreakdown]:
        """Load (or recall from cache) and encode the query column."""
        timing = TimingBreakdown()
        if self.cache is not None:
            cached = self.cache.get(query)
            if cached is not None:
                return cached, timing
        sampler = self._default_sampler()
        column, measured, simulated = self.load_column(query, sampler)
        timing.load_measured_s = measured
        timing.load_simulated_s = simulated
        embed_start = time.perf_counter()
        # Same path as indexing: a single-column batch still hits the
        # value-tokenization and token-vector caches.
        matrix, _stats = self.encoder.encode_batch([column])
        vector = matrix[0]
        timing.embed_s = time.perf_counter() - embed_start
        if self.cache is not None and np.any(vector):
            self.cache.put(query, vector)
        return vector, timing

    def search(
        self,
        query: ColumnRef,
        k: int | None = None,
        *,
        threshold: float | None = None,
    ) -> DiscoveryResult:
        """Top-k semantic join discovery (Figure 2, right half).

        With ``config.scoring == "hybrid"`` results are ranked by the
        blended semantic+syntactic score instead of raw cosine, and
        ``threshold`` (when given) overrides the *blend* floor
        (``config.hybrid_floor``), not the cosine threshold.
        """
        self._require_indexed()
        vector, timing = self.embed_query(query)
        if not np.any(vector):
            return DiscoveryResult(query=query, candidates=[], timing=timing)
        if self.config.scoring == "hybrid":
            result = self._search_hybrid(query, vector, k, threshold)
        else:
            result = self.search_vector(vector, k, threshold=threshold, exclude=query)
        result.timing = timing + result.timing
        return result

    def _search_hybrid(
        self,
        query: ColumnRef,
        vector: np.ndarray,
        k: int | None,
        threshold: float | None,
    ) -> DiscoveryResult:
        """Rank candidates by ``w·cosine + (1-w)·containment``.

        Candidate generation probes the index down to the lowest cosine
        that could still clear the blend floor under perfect containment
        (``(floor - (1 - w)) / w``), over-fetching past ``k`` because the
        blend re-orders the cosine ranking.  The cosine-calibrated
        ``config.threshold`` is deliberately *not* applied to blended
        scores — it would discard exactly the moderate-cosine /
        high-containment pairs hybrid scoring exists to keep.

        Degrades to pure cosine scoring when the query's value set cannot
        be sketched (no connector and no indexed sketch, or an empty
        column).  Candidates indexed without a sketch (e.g. bulk-loaded
        vectors) contribute zero syntactic evidence.
        """
        k = k if k is not None else self.config.default_k
        if k <= 0:
            return DiscoveryResult(query=query, candidates=[], timing=TimingBreakdown())
        query_sketch = self._query_signature(query)
        if query_sketch is None or query_sketch[0].is_empty:
            return self.search_vector(vector, k, threshold=threshold, exclude=query)
        floor = self.config.hybrid_floor if threshold is None else threshold
        weight = self.config.hybrid_semantic_weight
        cosine_floor = max(-1.0, (floor - (1.0 - weight)) / weight)
        timing = TimingBreakdown()
        lookup_start = time.perf_counter()
        raw = self._probe(
            np.asarray(vector, dtype=np.float64),
            max(4 * k, 32),
            cosine_floor,
            query,
        )
        query_sig, query_size = query_sketch
        scored: list[tuple[ColumnRef, float]] = []
        for ref, cosine in raw:
            sketch = self._signatures.get(ref)
            containment = (
                query_sig.containment_estimate(sketch[0], query_size, sketch[1])
                if sketch is not None
                else 0.0
            )
            blended = weight * float(cosine) + (1.0 - weight) * containment
            if blended >= floor:
                scored.append((ref, blended))
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        timing.lookup_s = time.perf_counter() - lookup_start
        return DiscoveryResult(
            query=query,
            candidates=[JoinCandidate(ref, score) for ref, score in scored[:k]],
            timing=timing,
        )

    def _probe(
        self,
        vector: np.ndarray,
        k: int,
        floor: float,
        exclude: ColumnRef | None,
    ) -> list[tuple[ColumnRef, float]]:
        """Probe the index, widening the over-fetch until ``k`` survive.

        The same-table filter can starve a fixed over-fetch when the query's
        own table concentrates many near-duplicate columns, so the fetch
        doubles until ``k`` results survive filtering or the index is
        exhausted.
        """
        if exclude is None:
            return self._index.query(vector, k, threshold=floor)
        total = len(self._index)
        fetch = k + 16
        while True:
            raw = self._index.query(vector, fetch, threshold=floor, exclude=exclude)
            kept = self.drop_same_table(raw, exclude, k)
            if len(kept) >= k or len(raw) < fetch or fetch >= total:
                return kept
            fetch = min(fetch * 2, total)

    def search_vector(
        self,
        vector: np.ndarray,
        k: int | None = None,
        *,
        threshold: float | None = None,
        exclude: ColumnRef | None = None,
    ) -> DiscoveryResult:
        """Search with a pre-computed embedding (no warehouse access).

        This is the query path of a restored index artifact (see
        :mod:`repro.core.persistence`) and of cached-profile queries.  The
        result's ``query`` is ``exclude`` when given, else ``None`` — a
        vector has no catalog address.
        """
        self._require_indexed()
        k = k if k is not None else self.config.default_k
        timing = TimingBreakdown()
        vector = np.asarray(vector, dtype=np.float64)
        if k <= 0 or not np.any(vector):
            return DiscoveryResult(query=exclude, candidates=[], timing=timing)
        lookup_start = time.perf_counter()
        kept = self._probe(
            vector,
            k,
            self.config.threshold if threshold is None else threshold,
            exclude,
        )
        timing.lookup_s = time.perf_counter() - lookup_start
        return DiscoveryResult(
            query=exclude,
            candidates=[JoinCandidate(ref, score) for ref, score in kept],
            timing=timing,
        )

    def search_vectors(
        self,
        vectors: list[np.ndarray],
        k: int | None = None,
        *,
        threshold: float | None = None,
        excludes: list[ColumnRef | None] | None = None,
    ) -> list[DiscoveryResult]:
        """Batched :meth:`search_vector`: one index pass for a query block.

        Results are identical to calling :meth:`search_vector` once per
        entry — the probe runs the index's ``search_batch`` (one GEMM over
        the arena), and any query starved by the same-table filter falls
        back to the widening single-query probe.  ``excludes`` is a
        parallel list of refs to drop (``None`` entries keep everything).
        Reported ``lookup_s`` is the block's wall time split evenly across
        the batch, since the index amortizes the work jointly.
        """
        self._require_indexed()
        k = k if k is not None else self.config.default_k
        floor = self.config.threshold if threshold is None else threshold
        count = len(vectors)
        exclude_list = list(excludes) if excludes is not None else [None] * count
        if len(exclude_list) != count:
            raise ValueError(f"{len(exclude_list)} excludes for {count} vectors")
        arrays = [np.asarray(vector, dtype=np.float64) for vector in vectors]
        results: list[DiscoveryResult | None] = [None] * count
        live: list[int] = []
        for position, vector in enumerate(arrays):
            if k <= 0 or not np.any(vector):
                results[position] = DiscoveryResult(
                    query=exclude_list[position],
                    candidates=[],
                    timing=TimingBreakdown(),
                )
            else:
                live.append(position)
        if live:
            lookup_start = time.perf_counter()
            total = len(self._index)
            # Mirror _probe's first iteration: over-fetch whenever a
            # same-table filter might starve the result list.
            fetch = k if all(exclude_list[p] is None for p in live) else k + 16
            batch = self._index.search_batch(
                np.stack([arrays[p] for p in live]),
                fetch,
                threshold=floor,
                excludes=[exclude_list[p] for p in live],
            )
            kept_lists: dict[int, list] = {}
            for position, raw in zip(live, batch):
                exclude = exclude_list[position]
                if exclude is None:
                    kept_lists[position] = raw[:k]
                    continue
                kept = self.drop_same_table(raw, exclude, k)
                if len(kept) < k and len(raw) >= fetch and fetch < total:
                    # The fixed over-fetch starved; rerun this query through
                    # the widening single-query probe (identical semantics).
                    kept = self._probe(arrays[position], k, floor, exclude)
                kept_lists[position] = kept
            share = (time.perf_counter() - lookup_start) / len(live)
            for position, kept in kept_lists.items():
                timing = TimingBreakdown()
                timing.lookup_s = share
                results[position] = DiscoveryResult(
                    query=exclude_list[position],
                    candidates=[JoinCandidate(ref, score) for ref, score in kept],
                    timing=timing,
                )
        return results  # type: ignore[return-value]

    def set_rerank_factor(self, rerank_factor: int) -> None:
        """Retune the index's int8 re-rank breadth on the live quantizer.

        A no-op when the engine is not quantized (or the backend does not
        support live retuning, e.g. process-sharded workers own their
        quantizers).  Degraded-mode serving uses this to narrow re-rank
        under overload and restore it on recovery.
        """
        setter = getattr(self._index, "set_rerank_factor", None)
        if setter is not None:
            setter(rerank_factor)

    def attach_connector(self, connector: WarehouseConnector) -> None:
        """Attach a live connector to a restored index (re-enables search()).

        The index itself is not rebuilt — only query-time column loading
        starts working again.
        """
        self._connector = connector

    @property
    def connector_or_none(self) -> WarehouseConnector | None:
        """The attached connector, or None (unlike :attr:`connector`, no raise)."""
        return self._connector

    def bump_generation(self) -> None:
        """Advance :attr:`index_generation` without changing index content.

        For logical mutations that evict nothing physical — e.g. dropping
        a table whose columns were all removed earlier — so generation-
        keyed caches and the join graph still observe the change.
        """
        self._index.touch()

    # -- introspection ---------------------------------------------------------------------

    def embedding_cache_stats(self) -> dict[str, object]:
        """Cache effectiveness snapshot across the embedding pipeline.

        Bundles the shared :class:`EmbeddingCache` (column-level, when
        attached) with the encoder's value-tokenization and token-vector
        caches — what the serving layer exposes on ``/stats``.
        """
        payload = self.encoder.cache_stats()
        if self.cache is not None:
            payload["embedding_cache"] = self.cache.stats()
        return payload

    def vector_of(self, ref: ColumnRef) -> np.ndarray:
        """Indexed unit embedding of ``ref`` (raises KeyError if not indexed).

        Served straight from the index's columnar arena (``float32``); the
        engine keeps no side copy of the embeddings.
        """
        return self._index.vector_of(ref)

    def similarity(self, left: ColumnRef, right: ColumnRef) -> float:
        """Cosine similarity between two indexed columns."""
        a, b = self._index.vector_of(left), self._index.vector_of(right)
        return float(a @ b)

    @property
    def indexed_count(self) -> int:
        """Number of columns in the index."""
        return len(self._index)

    @property
    def index_generation(self) -> int:
        """Monotonic counter of index content mutations.

        Moves on every add/remove/update/refresh/compaction (across all
        shards on a sharded engine), so any result computed under one
        value is stale under any other — the serving layer keys its query
        cache on it for implicit invalidation.
        """
        return self._index.mutation_generation

    @property
    def indexed_refs(self) -> tuple[ColumnRef, ...]:
        """Refs of every indexed column, in insertion order."""
        return tuple(self._index.keys())

    def is_column_indexed(self, ref: ColumnRef) -> bool:
        """True when ``ref`` currently has an indexed embedding (O(1))."""
        return ref in self._index

    def explain(self, query: ColumnRef, candidate: ColumnRef) -> dict[str, object]:
        """Why a candidate matched: similarity plus LSH collision odds."""
        cosine = self.similarity(query, candidate)
        explanation: dict[str, object] = {
            "query": str(query),
            "candidate": str(candidate),
            "cosine": round(cosine, 4),
            "above_threshold": cosine >= self.config.threshold,
        }
        if self.config.scoring == "hybrid":
            query_sketch = self._signatures.get(query)
            candidate_sketch = self._signatures.get(candidate)
            if query_sketch is not None and candidate_sketch is not None:
                weight = self.config.hybrid_semantic_weight
                containment = query_sketch[0].containment_estimate(
                    candidate_sketch[0], query_sketch[1], candidate_sketch[1]
                )
                blended = weight * cosine + (1.0 - weight) * containment
                explanation["scoring"] = "hybrid"
                explanation["containment"] = round(containment, 4)
                explanation["blended"] = round(blended, 4)
                explanation["above_floor"] = blended >= self.config.hybrid_floor
        lsh = self._index
        if isinstance(lsh, ShardedIndex):
            # Shards share one banding configuration, so any shard's
            # S-curve describes the whole engine.
            lsh = lsh.shards[0]
        if isinstance(lsh, SimHashLSHIndex):
            explanation["lsh_candidate_probability"] = round(
                lsh.expected_candidate_rate(cosine), 4
            )
        return explanation
