"""WarpGate core: the paper's primary contribution.

:class:`WarpGate` implements the two pipelines of Figure 2 — indexing
(scan → embed → SimHash LSH) and search (embed query → LSH probe → ranked
join candidates) — over a metered warehouse connector, with pluggable
sampling, embedding model, aggregation, and search backend.
:class:`LookupService` reproduces the Sigma Workbooks "Add column via
lookup" integration (Figure 3), including the cardinality-preserving join.
"""

from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.core.config import WarpGateConfig
from repro.core.lookup import LookupRecommendation, LookupService
from repro.core.persistence import load_index, load_service, save_index
from repro.core.profiles import EmbeddingCache
from repro.core.system import IndexReport, JoinDiscoverySystem
from repro.core.warpgate import WarpGate

__all__ = [
    "DiscoveryResult",
    "EmbeddingCache",
    "IndexReport",
    "JoinCandidate",
    "JoinDiscoverySystem",
    "LookupRecommendation",
    "LookupService",
    "TimingBreakdown",
    "WarpGate",
    "WarpGateConfig",
    "load_index",
    "load_service",
    "save_index",
]
