"""WarpGate configuration.

One frozen dataclass gathers every knob the paper describes or that
DESIGN.md marks for ablation, with the paper's defaults: Web Table
Embeddings, SimHash LSH at similarity threshold 0.7, full-pass indexing
(``sample_size=None``) unless the sample-efficiency experiments say
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["WarpGateConfig"]

_SEARCH_BACKENDS = ("lsh", "exact", "pivot")
_SCORING_MODES = ("cosine", "hybrid")
_AGGREGATIONS = ("mean", "tfidf")
_SAMPLING_STRATEGIES = ("head", "uniform", "reservoir", "distinct")
_SHARD_PLACEMENTS = ("hash", "round_robin")
_WORKER_TRANSPORTS = ("pipe", "shm")
_FSYNC_POLICIES = ("always", "never")


@dataclass(frozen=True)
class WarpGateConfig:
    """All WarpGate knobs in one immutable value.

    Parameters
    ----------
    model_name:
        Embedding model from the registry: ``webtable`` (paper default),
        ``bertlike`` (§4.4 comparison), or ``hashing`` (syntactic ablation).
    dim:
        Embedding dimensionality.
    n_bits / n_bands:
        SimHash signature size and banding layout.
    threshold:
        Cosine similarity floor of the LSH index (paper: 0.7).
    aggregation:
        Column aggregation: ``mean`` or ``tfidf``.
    sampling_strategy / sample_size:
        How columns are sampled out of the warehouse during indexing and
        query embedding; ``sample_size=None`` scans full columns.
    search_backend:
        ``lsh`` (paper), ``exact`` (brute force), or ``pivot``
        (block-and-verify, §5.2.3).
    include_column_name / dedupe_values / numeric_profile_weight:
        Encoder options (see :class:`repro.embedding.ColumnEncoder`).
    default_k:
        Result-list size when the caller does not pass one.
    index_chunk_size:
        Columns loaded + encoded + appended per chunk during corpus
        indexing; bounds the build's working set so arbitrarily large
        corpora stream through constant memory.
    n_shards:
        Index partitions (see :class:`repro.index.ShardedIndex`); 1 keeps
        the single-arena engine, >1 fans searches out across per-shard
        arenas in parallel and keeps mutation/compaction shard-local.
    shard_placement:
        ``hash`` (stable hash of table identity — table columns colocate)
        or ``round_robin`` (exact balance).
    shard_workers:
        Worker *processes* for the query fan-out (see
        :class:`repro.index.ProcessShardedIndex`); 0 (default) keeps
        everything in-process.  With ``shard_workers > 0`` the engine
        runs one worker process per shard over shared mmap segments —
        GIL-free scoring — while mutations stay on the in-process
        writer.  ``n_shards`` must be 1 (the worker count then *is* the
        shard count) or equal to ``shard_workers``.
    worker_transport:
        How query blocks reach the workers: ``pipe`` (pickled over the
        request pipe, default) or ``shm`` (staged in a
        ``multiprocessing.shared_memory`` buffer, descriptor-only
        messages).
    quantize:
        Score candidates on int8 codes (4x smaller scoring set) and
        re-rank the survivors exactly in float32
        (see :class:`repro.index.ArenaQuantizer`).
    rerank_factor:
        Quantization recall knob: exact-re-rank the top
        ``rerank_factor * k`` survivors per query.  Higher = better
        recall, more float32 work (int8 recall@10 ≥ 0.98 vs full float32
        at the default; see BENCH_index.json's ``quant`` stage).
    coalesce:
        Collect concurrent serving requests into micro-batches executed
        through the index's batched search path (see
        :class:`repro.service.coalesce.QueryCoalescer`).  A lone request
        bypasses the batching machinery entirely, so sparse traffic pays
        no added latency.
    coalesce_max_batch:
        Upper bound on requests coalesced into one batch.
    coalesce_max_wait_us:
        How long (microseconds) a coalescing leader waits for concurrent
        requests to join its batch before executing.  Only ever paid when
        at least two requests are already in flight.
    query_cache_size:
        Entries in the serving layer's generation-keyed query-result LRU
        (see :class:`repro.service.qcache.QueryResultCache`); 0 disables
        result caching.
    scoring:
        ``cosine`` (paper default: rank and filter on index cosine alone)
        or ``hybrid``: blend cosine with a MinHash *containment* estimate
        of the candidate's value overlap —
        ``hybrid_semantic_weight * cosine + (1 - weight) * containment``
        — and rank/filter on the blend.  Containment is the NextiaJD
        joinability proxy, so hybrid recovers high-containment pairs
        whose embeddings sit below the cosine threshold (dirty or
        mixed-vocabulary columns).  Ref-based :meth:`WarpGate.search`
        only: raw-vector searches have no value sets to sketch and stay
        cosine-ranked.
    hybrid_semantic_weight:
        Cosine's share of the hybrid blend, in ``(0, 1]`` (1.0 degenerates
        to cosine scores filtered at ``hybrid_floor``).
    hybrid_floor:
        Score floor applied to the *blended* score in hybrid mode (the
        cosine ``threshold`` is calibrated for pure-cosine scores and
        would discard exactly the moderate-cosine/high-containment pairs
        hybrid exists to keep).  Candidate generation probes the index
        down to the cosine that could still clear the floor under perfect
        containment: ``(hybrid_floor - (1 - weight)) / weight``.
    durable_dir:
        Root of the crash-safe durable store
        (:class:`repro.durability.DurableIndexStore`): WAL + checksummed
        segments + atomically-published manifest.  ``None`` (default)
        keeps the engine purely in-memory between explicit saves.
    durable_fsync:
        WAL fsync policy: ``always`` (every acknowledged mutation is
        fsync'd before the call returns) or ``never`` (OS-buffered; a
        crash may lose the tail — benchmarks and tests only).
    checkpoint_every:
        Auto-compact the WAL into a fresh segment after this many
        records (0 = only on explicit checkpoint).
    default_deadline_ms:
        Per-request time budget applied when a request names none (via
        ``SearchRequest.deadline_ms`` or the ``X-Deadline-Ms`` header).
        A request whose budget expires before its index probe runs is
        answered ``deadline_exceeded`` (HTTP 504) without touching the
        GEMM path.  0 (default) disables deadlines.
    degrade_shed_threshold:
        Admission-control sheds inside ``degrade_window_s`` that push the
        service into degraded tier 1 (reduced ``rerank_factor``, path
        queries capped to one hop); twice the threshold reaches tier 2
        (additionally reported not-ready by ``GET /readyz``).
    degrade_window_s:
        Sliding window (seconds) over which sheds are counted.
    degrade_recovery_s:
        Shed-free seconds required before the service steps *down* one
        degradation tier (hysteresis: recovery is deliberately slower
        than escalation so the service does not flap at the boundary).
    """

    model_name: str = "webtable"
    dim: int = 64
    n_bits: int = 128
    n_bands: int = 16
    threshold: float = 0.7
    aggregation: str = "mean"
    sampling_strategy: str = "head"
    sample_size: int | None = None
    search_backend: str = "lsh"
    include_column_name: bool = False
    dedupe_values: bool = False
    numeric_profile_weight: float = 0.3
    default_k: int = 10
    index_chunk_size: int = 512
    n_shards: int = 1
    shard_placement: str = "hash"
    shard_workers: int = 0
    worker_transport: str = "pipe"
    quantize: bool = False
    rerank_factor: int = 4
    coalesce: bool = True
    coalesce_max_batch: int = 32
    coalesce_max_wait_us: int = 500
    query_cache_size: int = 4096
    scoring: str = "cosine"
    hybrid_semantic_weight: float = 0.6
    hybrid_floor: float = 0.35
    durable_dir: str | None = None
    durable_fsync: str = "always"
    checkpoint_every: int = 256
    default_deadline_ms: int = 0
    degrade_shed_threshold: int = 16
    degrade_window_s: float = 10.0
    degrade_recovery_s: float = 5.0

    def __post_init__(self) -> None:
        if self.search_backend not in _SEARCH_BACKENDS:
            raise ValueError(
                f"unknown search_backend {self.search_backend!r}; "
                f"choose from {_SEARCH_BACKENDS}"
            )
        if self.aggregation not in _AGGREGATIONS:
            raise ValueError(
                f"unknown aggregation {self.aggregation!r}; choose from {_AGGREGATIONS}"
            )
        if self.sampling_strategy not in _SAMPLING_STRATEGIES:
            raise ValueError(
                f"unknown sampling_strategy {self.sampling_strategy!r}; "
                f"choose from {_SAMPLING_STRATEGIES}"
            )
        if self.sample_size is not None and self.sample_size <= 0:
            raise ValueError(
                f"sample_size must be positive or None, got {self.sample_size}"
            )
        if not -1.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [-1, 1], got {self.threshold}")
        if self.default_k <= 0:
            raise ValueError(f"default_k must be positive, got {self.default_k}")
        if self.index_chunk_size <= 0:
            raise ValueError(
                f"index_chunk_size must be positive, got {self.index_chunk_size}"
            )
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.shard_placement not in _SHARD_PLACEMENTS:
            raise ValueError(
                f"unknown shard_placement {self.shard_placement!r}; "
                f"choose from {_SHARD_PLACEMENTS}"
            )
        if self.shard_workers < 0:
            raise ValueError(
                f"shard_workers must be >= 0, got {self.shard_workers}"
            )
        if (
            self.shard_workers > 0
            and self.n_shards > 1
            and self.n_shards != self.shard_workers
        ):
            raise ValueError(
                f"shard_workers ({self.shard_workers}) must match n_shards "
                f"({self.n_shards}) when both are set: one worker process "
                "owns exactly one shard"
            )
        if self.worker_transport not in _WORKER_TRANSPORTS:
            raise ValueError(
                f"unknown worker_transport {self.worker_transport!r}; "
                f"choose from {_WORKER_TRANSPORTS}"
            )
        if self.rerank_factor < 1:
            raise ValueError(
                f"rerank_factor must be >= 1, got {self.rerank_factor}"
            )
        if self.coalesce_max_batch < 1:
            raise ValueError(
                f"coalesce_max_batch must be >= 1, got {self.coalesce_max_batch}"
            )
        if self.coalesce_max_wait_us < 0:
            raise ValueError(
                f"coalesce_max_wait_us must be >= 0, got {self.coalesce_max_wait_us}"
            )
        if self.query_cache_size < 0:
            raise ValueError(
                f"query_cache_size must be >= 0, got {self.query_cache_size}"
            )
        if self.scoring not in _SCORING_MODES:
            raise ValueError(
                f"unknown scoring {self.scoring!r}; choose from {_SCORING_MODES}"
            )
        if not 0.0 < self.hybrid_semantic_weight <= 1.0:
            raise ValueError(
                "hybrid_semantic_weight must be in (0, 1], got "
                f"{self.hybrid_semantic_weight}"
            )
        if not -1.0 <= self.hybrid_floor <= 1.0:
            raise ValueError(
                f"hybrid_floor must be in [-1, 1], got {self.hybrid_floor}"
            )
        if self.durable_fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"unknown durable_fsync {self.durable_fsync!r}; "
                f"choose from {_FSYNC_POLICIES}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.default_deadline_ms < 0:
            raise ValueError(
                f"default_deadline_ms must be >= 0, got {self.default_deadline_ms}"
            )
        if self.degrade_shed_threshold < 1:
            raise ValueError(
                "degrade_shed_threshold must be >= 1, got "
                f"{self.degrade_shed_threshold}"
            )
        if self.degrade_window_s <= 0:
            raise ValueError(
                f"degrade_window_s must be positive, got {self.degrade_window_s}"
            )
        if self.degrade_recovery_s < 0:
            raise ValueError(
                f"degrade_recovery_s must be >= 0, got {self.degrade_recovery_s}"
            )

    def with_sampling(self, sample_size: int | None, strategy: str | None = None) -> "WarpGateConfig":
        """Copy of this config with a different sampling setup."""
        return replace(
            self,
            sample_size=sample_size,
            sampling_strategy=strategy if strategy is not None else self.sampling_strategy,
        )

    def with_model(self, model_name: str) -> "WarpGateConfig":
        """Copy of this config with a different embedding model."""
        return replace(self, model_name=model_name)

    def with_backend(self, search_backend: str) -> "WarpGateConfig":
        """Copy of this config with a different search backend."""
        return replace(self, search_backend=search_backend)

    def with_threshold(self, threshold: float) -> "WarpGateConfig":
        """Copy of this config with a different LSH threshold."""
        return replace(self, threshold=threshold)

    def with_sharding(
        self, n_shards: int, placement: str | None = None
    ) -> "WarpGateConfig":
        """Copy of this config with a different shard layout."""
        return replace(
            self,
            n_shards=n_shards,
            shard_placement=(
                placement if placement is not None else self.shard_placement
            ),
        )

    def with_workers(
        self, shard_workers: int, transport: str | None = None
    ) -> "WarpGateConfig":
        """Copy of this config with multi-process query fan-out toggled."""
        return replace(
            self,
            shard_workers=shard_workers,
            worker_transport=(
                transport if transport is not None else self.worker_transport
            ),
        )

    def with_quantization(
        self, quantize: bool = True, rerank_factor: int | None = None
    ) -> "WarpGateConfig":
        """Copy of this config with int8 candidate scoring toggled."""
        return replace(
            self,
            quantize=quantize,
            rerank_factor=(
                rerank_factor if rerank_factor is not None else self.rerank_factor
            ),
        )

    def with_scoring(
        self,
        scoring: str,
        *,
        semantic_weight: float | None = None,
        floor: float | None = None,
    ) -> "WarpGateConfig":
        """Copy of this config with a different scoring mode."""
        return replace(
            self,
            scoring=scoring,
            hybrid_semantic_weight=(
                semantic_weight
                if semantic_weight is not None
                else self.hybrid_semantic_weight
            ),
            hybrid_floor=floor if floor is not None else self.hybrid_floor,
        )

    def with_durability(
        self,
        durable_dir: str | None,
        *,
        fsync: str | None = None,
        checkpoint_every: int | None = None,
    ) -> "WarpGateConfig":
        """Copy of this config with the durable store re-targeted."""
        return replace(
            self,
            durable_dir=durable_dir,
            durable_fsync=fsync if fsync is not None else self.durable_fsync,
            checkpoint_every=(
                checkpoint_every
                if checkpoint_every is not None
                else self.checkpoint_every
            ),
        )

    def with_serving(
        self,
        *,
        coalesce: bool | None = None,
        coalesce_max_batch: int | None = None,
        coalesce_max_wait_us: int | None = None,
        query_cache_size: int | None = None,
    ) -> "WarpGateConfig":
        """Copy of this config with different serving-engine knobs."""
        return replace(
            self,
            coalesce=coalesce if coalesce is not None else self.coalesce,
            coalesce_max_batch=(
                coalesce_max_batch
                if coalesce_max_batch is not None
                else self.coalesce_max_batch
            ),
            coalesce_max_wait_us=(
                coalesce_max_wait_us
                if coalesce_max_wait_us is not None
                else self.coalesce_max_wait_us
            ),
            query_cache_size=(
                query_cache_size
                if query_cache_size is not None
                else self.query_cache_size
            ),
        )

    def with_overload(
        self,
        *,
        default_deadline_ms: int | None = None,
        degrade_shed_threshold: int | None = None,
        degrade_window_s: float | None = None,
        degrade_recovery_s: float | None = None,
    ) -> "WarpGateConfig":
        """Copy of this config with different overload-protection knobs."""
        return replace(
            self,
            default_deadline_ms=(
                default_deadline_ms
                if default_deadline_ms is not None
                else self.default_deadline_ms
            ),
            degrade_shed_threshold=(
                degrade_shed_threshold
                if degrade_shed_threshold is not None
                else self.degrade_shed_threshold
            ),
            degrade_window_s=(
                degrade_window_s
                if degrade_window_s is not None
                else self.degrade_window_s
            ),
            degrade_recovery_s=(
                degrade_recovery_s
                if degrade_recovery_s is not None
                else self.degrade_recovery_s
            ),
        )
