"""Discovery result types shared by WarpGate and the baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.schema import ColumnRef

__all__ = ["JoinCandidate", "TimingBreakdown", "DiscoveryResult"]


@dataclass(frozen=True, slots=True)
class JoinCandidate:
    """One ranked candidate: a column plus its similarity score."""

    ref: ColumnRef
    score: float

    def __str__(self) -> str:
        return f"{self.ref} ({self.score:.3f})"


@dataclass
class TimingBreakdown:
    """Decomposition of one query's response time.

    ``load_simulated_s`` is the connector's modelled warehouse unload
    latency (the component an EC2-to-Snowflake deployment would actually
    pay); the other fields are measured wall-clock on this machine.  The
    paper's end-to-end query response time is their sum.
    """

    load_measured_s: float = 0.0
    load_simulated_s: float = 0.0
    embed_s: float = 0.0
    lookup_s: float = 0.0
    other_s: float = 0.0

    @property
    def response_time_s(self) -> float:
        """End-to-end query response time."""
        return (
            self.load_measured_s
            + self.load_simulated_s
            + self.embed_s
            + self.lookup_s
            + self.other_s
        )

    @property
    def load_s(self) -> float:
        """Total data-loading time (measured + simulated)."""
        return self.load_measured_s + self.load_simulated_s

    @property
    def lookup_fraction(self) -> float:
        """Share of response time spent in the index lookup."""
        total = self.response_time_s
        return self.lookup_s / total if total > 0 else 0.0

    def __add__(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            load_measured_s=self.load_measured_s + other.load_measured_s,
            load_simulated_s=self.load_simulated_s + other.load_simulated_s,
            embed_s=self.embed_s + other.embed_s,
            lookup_s=self.lookup_s + other.lookup_s,
            other_s=self.other_s + other.other_s,
        )

    def scaled(self, factor: float) -> "TimingBreakdown":
        """Breakdown with every component multiplied by ``factor``."""
        return TimingBreakdown(
            load_measured_s=self.load_measured_s * factor,
            load_simulated_s=self.load_simulated_s * factor,
            embed_s=self.embed_s * factor,
            lookup_s=self.lookup_s * factor,
            other_s=self.other_s * factor,
        )


@dataclass
class DiscoveryResult:
    """Outcome of one top-k join-discovery query.

    ``query`` is ``None`` for pre-embedded vector searches (e.g.
    :meth:`repro.core.warpgate.WarpGate.search_vector` without an
    ``exclude`` ref), where no catalog address exists for the query.
    """

    query: ColumnRef | None
    candidates: list[JoinCandidate] = field(default_factory=list)
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    @property
    def refs(self) -> list[ColumnRef]:
        """Candidate refs in rank order."""
        return [candidate.ref for candidate in self.candidates]

    def top(self, k: int) -> list[JoinCandidate]:
        """First ``k`` candidates."""
        return self.candidates[:k]

    def describe(self) -> str:
        """Human-readable multi-line summary (used by examples)."""
        lines = [f"query: {self.query if self.query is not None else '<vector>'}"]
        for rank, candidate in enumerate(self.candidates, start=1):
            lines.append(f"  {rank:2d}. {candidate}")
        lines.append(
            f"  response time: {self.timing.response_time_s * 1e3:.1f} ms "
            f"(lookup {self.timing.lookup_s * 1e3:.1f} ms)"
        )
        return "\n".join(lines)
