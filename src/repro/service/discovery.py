"""`DiscoveryService`: the session-based serving facade over WarpGate.

The library core (:class:`~repro.core.warpgate.WarpGate`) is a one-shot
pipeline — index a corpus, then query a frozen index.  The deployed system
the paper describes sits behind Sigma Workbooks and serves a *continuously
evolving* warehouse, so this facade adds what serving requires:

* **typed boundary** — :class:`SearchRequest` in,
  :class:`SearchResponse` / :class:`IndexStats` out,
  :class:`ServiceError` envelopes on failure;
* **incremental index mutation** — :meth:`add_table`, :meth:`drop_table`,
  and :meth:`refresh_column` update the live index in place, never
  re-indexing the corpus;
* **batch search** — :meth:`search_many` amortizes query-column scans
  (duplicate query refs are embedded once) and lock traffic across a
  request batch, returning results identical to per-query :meth:`search`;
* **a thread-safe read path** — a writer-preferring RW lock lets any
  number of searches run concurrently while mutations are exclusive.

The facade is deliberately thin: every search still runs WarpGate's
embed → probe → rank pipeline, so library results and service results
never diverge.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.core.candidates import DiscoveryResult
from repro.core.config import WarpGateConfig
from repro.core.profiles import EmbeddingCache
from repro.core.system import ELIGIBLE_TYPES, IndexReport
from repro.core.warpgate import WarpGate
from repro.errors import (
    ColumnNotFoundError,
    DatabaseNotFoundError,
    EmptyIndexError,
    NotIndexedError,
    TableNotFoundError,
)
from repro.service.rwlock import ReadWriteLock
from repro.service.types import IndexStats, SearchRequest, SearchResponse, ServiceError
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import Sampler

__all__ = ["DiscoveryService"]


class DiscoveryService:
    """Thread-safe, incrementally-updatable join-discovery service.

    Parameters
    ----------
    config:
        Forwarded to the wrapped :class:`WarpGate` (ignored when ``engine``
        is given).
    cache:
        Optional shared :class:`EmbeddingCache`, forwarded to the engine.
    engine:
        An existing :class:`WarpGate` to serve (e.g. restored via
        :func:`repro.core.persistence.load_index`); mutually exclusive
        with ``config``.

    Usage::

        service = DiscoveryService()
        service.open(WarehouseConnector(warehouse))
        response = service.search("sales.orders.customer_name", k=5)
        service.add_table("sales", new_table)       # no re-index
        service.drop_table("sales", "orders_old")   # no re-index
    """

    def __init__(
        self,
        config: WarpGateConfig | None = None,
        *,
        cache: EmbeddingCache | None = None,
        engine: WarpGate | None = None,
    ) -> None:
        if engine is not None and (config is not None or cache is not None):
            raise ValueError("pass either engine or config/cache, not both")
        self.engine = engine if engine is not None else WarpGate(config, cache=cache)
        self._lock = ReadWriteLock()
        # Warehouse scans + embedding mutate connector/cache counters that
        # are not thread-safe, so every scan the service issues (query
        # embedding and mutation loading alike) is serialized here.  Index
        # probes stay concurrent under the RW lock's shared side.
        self._scan_lock = threading.Lock()
        # Traffic counters are written by concurrent readers (searches run
        # under the *shared* lock), so they get their own mutex.
        self._counter_lock = threading.Lock()
        self._searches = 0
        self._mutations = 0

    def __repr__(self) -> str:
        return (
            f"DiscoveryService(backend={self.engine.config.search_backend!r}, "
            f"indexed_columns={self.engine.indexed_count})"
        )

    # -- error translation ---------------------------------------------------------

    @contextmanager
    def _boundary(self):
        """Translate library errors into typed :class:`ServiceError` envelopes."""
        try:
            yield
        except ServiceError:
            raise
        except (DatabaseNotFoundError, TableNotFoundError, ColumnNotFoundError) as error:
            raise ServiceError.not_found(str(error)) from error
        except (NotIndexedError, EmptyIndexError) as error:
            raise ServiceError.not_indexed(str(error)) from error

    def _record_mutation(self) -> None:
        """Bump the mutation counter and refresh derived structures."""
        with self._counter_lock:
            self._mutations += 1
        self.engine.rebuild_index()

    def _record_searches(self, count: int) -> None:
        with self._counter_lock:
            self._searches += count

    # -- lifecycle ----------------------------------------------------------------

    def open(
        self, connector: WarehouseConnector, *, sampler: Sampler | None = None
    ) -> IndexReport:
        """Bulk-index every eligible column reachable via ``connector``.

        One-shot: re-opening an already-indexed service would merge two
        corpora into one index (leaving stale, unresolvable columns
        searchable), so it raises — build a fresh service instead, or
        evolve the current corpus through :meth:`add_table` /
        :meth:`drop_table`.
        """
        with self._lock.write(), self._scan_lock, self._boundary():
            if self.engine.is_indexed:
                raise ServiceError.bad_request(
                    "service is already open; create a new DiscoveryService "
                    "to index a different corpus"
                )
            report = self.engine.index_corpus(connector, sampler=sampler)
            self.engine.rebuild_index()
            return report

    def attach_connector(self, connector: WarehouseConnector) -> None:
        """Attach a live connector (e.g. after restoring a saved artifact)."""
        with self._lock.write():
            self.engine.attach_connector(connector)

    def save(self, path: str | Path) -> Path:
        """Persist the index artifact (see :mod:`repro.core.persistence`)."""
        from repro.core.persistence import save_index

        with self._lock.read():
            return save_index(self.engine, path)

    @classmethod
    def load(
        cls, path: str | Path, *, connector: WarehouseConnector | None = None
    ) -> "DiscoveryService":
        """Restore a service from a saved artifact, optionally re-attached."""
        from repro.core.persistence import load_index

        service = cls(engine=load_index(path))
        if connector is not None:
            service.engine.attach_connector(connector)
        service.engine.rebuild_index()
        return service

    # -- incremental mutation ------------------------------------------------------

    def _table_refs(self, database: str, table_name: str) -> list[ColumnRef]:
        """Indexed refs belonging to one table."""
        return [
            ref
            for ref in self.engine.indexed_refs
            if ref.table_key == (database, table_name)
        ]

    def add_table(
        self, database: str, table: Table, *, sampler: Sampler | None = None
    ) -> IndexStats:
        """Register ``table`` and index its eligible columns incrementally.

        Replacing an existing table of the same name re-embeds its columns
        and evicts any indexed column the new table no longer carries.
        The full corpus is never re-indexed.
        """
        with self._lock.write(), self._scan_lock, self._boundary():
            warehouse = self.engine.connector.warehouse
            before = set(self._table_refs(database, table.name))
            warehouse.add_table(database, table)
            eligible = [
                ColumnRef(database, table.name, column.name)
                for column in table.columns
                if column.dtype in ELIGIBLE_TYPES
            ]
            # One batched scan + encode for the whole table — the same
            # chunked pipeline corpus indexing uses.
            kept = set(self.engine.add_columns(eligible, sampler=sampler))
            # Evict everything previously indexed for this table that did
            # not survive re-indexing: columns dropped by name, columns
            # whose dtype became ineligible, and columns that now embed to
            # a zero vector.
            for ref in before - kept:
                self.engine.remove_column(ref)
            self._record_mutation()
            return self._stats_locked()

    def drop_table(self, database: str, table_name: str) -> IndexStats:
        """Evict a table's columns from the index and drop it from the catalog."""
        with self._lock.write(), self._scan_lock, self._boundary():
            warehouse = self.engine.connector.warehouse
            warehouse.drop_table(database, table_name)
            for ref in self._table_refs(database, table_name):
                self.engine.remove_column(ref)
            self._record_mutation()
            return self._stats_locked()

    def refresh_column(
        self, ref: ColumnRef | str, *, sampler: Sampler | None = None
    ) -> IndexStats:
        """Re-scan and re-embed one *indexed* column in place.

        Refreshing a ref that is not in the index is ``not_found`` — a
        refresh must never turn into an insert of a column the indexing
        eligibility rules excluded (use :meth:`add_table` to add data).
        """
        request_ref = ref if isinstance(ref, ColumnRef) else ColumnRef.parse(ref)
        with self._lock.write(), self._scan_lock, self._boundary():
            request_ref = self._resolve_ref(request_ref)
            if not self.engine.is_column_indexed(request_ref):
                raise ServiceError.not_found(f"{request_ref} is not indexed")
            self.engine.refresh_column(request_ref, sampler=sampler)
            self._record_mutation()
            return self._stats_locked()

    # -- search -------------------------------------------------------------------

    @staticmethod
    def _coerce(request: SearchRequest | ColumnRef | str, k, threshold) -> SearchRequest:
        if isinstance(request, SearchRequest):
            return request
        return SearchRequest(query=request, k=k, threshold=threshold)

    def _resolve_ref(self, ref: ColumnRef) -> ColumnRef:
        """Qualify a 2-part ``table.column`` ref when it is unambiguous."""
        if ref.database:
            return ref
        connector = self.engine._connector
        names = connector.warehouse.database_names if connector is not None else ()
        if len(names) == 1:
            return ColumnRef(names[0], ref.table, ref.column)
        raise ServiceError.bad_request(
            f"query {ref} omits the database and the warehouse has "
            f"{len(names)} database(s); use db.table.column"
        )

    def _embed_then_probe(self, query: ColumnRef, request: SearchRequest):
        """The locked embed → probe pipeline shared by search paths.

        Embedding scans the warehouse, so it runs under the scan mutex;
        the index probe runs under the shared side of the RW lock.  The
        two sections are sequential, never nested, so a writer holding
        write+scan cannot deadlock with a reader.
        """
        with self._scan_lock:
            vector, timing = self.engine.embed_query(query)
        if not np.any(vector):
            return DiscoveryResult(query=query, candidates=[], timing=timing)
        with self._lock.read():
            result = self.engine.search_vector(
                vector, request.k, threshold=request.threshold, exclude=query
            )
        result.timing = timing + result.timing
        return result

    def search(
        self,
        request: SearchRequest | ColumnRef | str,
        k: int | None = None,
        *,
        threshold: float | None = None,
    ) -> SearchResponse:
        """Top-k join discovery for one request.

        Runs the engine's exact search pipeline (embed → probe → rank);
        probes from concurrent callers share the read lock.
        """
        request = self._coerce(request, k, threshold)
        with self._boundary():
            result = self._embed_then_probe(self._resolve_ref(request.query), request)
        self._record_searches(1)
        return SearchResponse.from_result(result)

    def search_many(
        self, requests: list[SearchRequest | ColumnRef | str]
    ) -> list[SearchResponse]:
        """Batch search: one lock round, one embedding per unique query,
        and one batched index probe per parameter group.

        Results are identical to issuing each request through
        :meth:`search` — the probe runs the engine's
        :meth:`~repro.core.warpgate.WarpGate.search_vectors`, which is the
        index's true batched path (one matrix product per query block, see
        ``ColumnarIndex.search_batch``; on a sharded engine the block fans
        out across all shards in parallel on the shared pool, see
        ``ShardedIndex.search_batch``) with per-query semantics preserved
        — but duplicate query refs pay the warehouse scan and embedding
        only once, and the block amortizes signature hashing, candidate
        generation, and BLAS dispatch.  Requests sharing ``(k, threshold)``
        are probed together; mixed-parameter batches fall into one block
        per distinct pair.

        The batch is all-or-nothing: if any request's query cannot be
        resolved or scanned, the whole call raises one
        :class:`ServiceError` and no partial results are returned.
        """
        coerced = [self._coerce(request, None, None) for request in requests]
        responses: list[SearchResponse | None] = [None] * len(coerced)
        with self._boundary():
            resolved = [self._resolve_ref(request.query) for request in coerced]
            embedded: dict[ColumnRef, tuple] = {}
            with self._scan_lock:
                for query in resolved:
                    if query not in embedded:
                        embedded[query] = self.engine.embed_query(query)
            groups: dict[tuple, list[int]] = {}
            for position, request in enumerate(coerced):
                groups.setdefault((request.k, request.threshold), []).append(position)
            with self._lock.read():
                for (k, threshold), positions in groups.items():
                    vectors = [embedded[resolved[p]][0] for p in positions]
                    results = self.engine.search_vectors(
                        vectors,
                        k,
                        threshold=threshold,
                        excludes=[resolved[p] for p in positions],
                    )
                    for position, result in zip(positions, results):
                        embed_timing = embedded[resolved[position]][1]
                        result.timing = embed_timing + result.timing
                        responses[position] = SearchResponse.from_result(result)
        self._record_searches(len(coerced))
        return responses  # type: ignore[return-value]

    # -- introspection -------------------------------------------------------------

    def _stats_locked(self) -> IndexStats:
        """Snapshot stats; caller must hold the lock (read or write)."""
        tables = databases = 0
        if self.engine._connector is not None:
            warehouse = self.engine._connector.warehouse
            tables = warehouse.table_count
            databases = len(warehouse.database_names)
        config = self.engine.config
        with self._counter_lock:
            searches, mutations = self._searches, self._mutations
        return IndexStats(
            backend=config.search_backend,
            dim=config.dim,
            threshold=config.threshold,
            indexed_columns=self.engine.indexed_count,
            tables=tables,
            databases=databases,
            searches=searches,
            mutations=mutations,
            caches=self.engine.embedding_cache_stats(),
            shards=config.n_shards,
            quantized=config.quantize,
        )

    def stats(self) -> IndexStats:
        """Current :class:`IndexStats` snapshot (shared read lock)."""
        with self._lock.read():
            return self._stats_locked()

    @property
    def is_indexed(self) -> bool:
        """True once the service holds a searchable index."""
        return self.engine.is_indexed
