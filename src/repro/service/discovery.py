"""`DiscoveryService`: the session-based serving facade over WarpGate.

The library core (:class:`~repro.core.warpgate.WarpGate`) is a one-shot
pipeline — index a corpus, then query a frozen index.  The deployed system
the paper describes sits behind Sigma Workbooks and serves a *continuously
evolving* warehouse, so this facade adds what serving requires:

* **typed boundary** — :class:`SearchRequest` in,
  :class:`SearchResponse` / :class:`IndexStats` out,
  :class:`ServiceError` envelopes on failure;
* **incremental index mutation** — :meth:`add_table`, :meth:`drop_table`,
  and :meth:`refresh_column` update the live index in place, never
  re-indexing the corpus;
* **batch search** — :meth:`search_many` amortizes query-column scans
  (duplicate query refs are embedded once) and lock traffic across a
  request batch, returning results identical to per-query :meth:`search`;
* **a thread-safe read path** — a writer-preferring RW lock lets any
  number of searches run concurrently while mutations are exclusive;
* **multi-hop discovery** — :meth:`find_paths` / :meth:`neighbors`
  query a lazily-maintained :class:`~repro.graph.joingraph.JoinGraph`
  whose edges are rebuilt per table off ``index_generation``, with
  path results cached under the same generation-keyed scheme;
* **a concurrent serving engine** — :meth:`search_coalesced` routes
  requests through a :class:`~repro.service.coalesce.QueryCoalescer`
  (concurrent in-flight searches execute as one batched index probe,
  with a fast-path bypass when traffic is sparse), and every probe
  consults a generation-keyed
  :class:`~repro.service.qcache.QueryResultCache` — index mutations
  invalidate implicitly because the index's monotonic
  ``mutation_generation`` is part of the cache key, so a stale result
  can never be served;
* **overload protection** — per-request deadlines (from
  ``SearchRequest.deadline_ms`` or the config's ``default_deadline_ms``)
  are enforced at every expensive boundary (before the warehouse scan,
  after embedding, before the probe) and surface as ``deadline_exceeded``
  (HTTP 504); the HTTP layer reports shed connections into a
  :class:`~repro._util.DegradationPolicy`, and sustained shedding
  downshifts serving fidelity (narrower int8 re-rank, path queries
  capped to one hop) until traffic quiets — cache hits always stay
  full-fidelity, and :attr:`readiness` reports ``/readyz`` state.

The facade is deliberately thin: every search still runs WarpGate's
embed → probe → rank pipeline, so library results and service results
never diverge.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro._util import DegradationPolicy
from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.core.config import WarpGateConfig
from repro.core.profiles import EmbeddingCache
from repro.core.system import ELIGIBLE_TYPES, IndexReport
from repro.core.warpgate import WarpGate
from repro.errors import (
    ColumnNotFoundError,
    DatabaseNotFoundError,
    DeadlineExceededError,
    EmptyIndexError,
    NotIndexedError,
    ReproError,
    RespawnLimitError,
    TableNotFoundError,
    WorkerCrashError,
)
from repro.embedding.base import LRUCache
from repro.graph.joingraph import JoinGraph
from repro.graph.paths import JoinEdge, JoinPath, TableKey, parse_table
from repro.service.coalesce import QueryCoalescer
from repro.service.qcache import QueryResultCache
from repro.service.rwlock import ReadWriteLock
from repro.service.types import IndexStats, SearchRequest, SearchResponse, ServiceError
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import Sampler

__all__ = ["DiscoveryService"]


class _TimedRequest:
    """A request paired with its absolute monotonic deadline (or ``None``).

    The coalescer's unit of work on the serving path: carrying the
    deadline alongside the request lets the coalescer enforce it at its
    own boundaries (urgent bypass, expired-in-queue) via ``deadline_of``
    without knowing anything about :class:`SearchRequest`.
    """

    __slots__ = ("request", "deadline")

    def __init__(self, request: SearchRequest, deadline: float | None) -> None:
        self.request = request
        self.deadline = deadline


class DiscoveryService:
    """Thread-safe, incrementally-updatable join-discovery service.

    Parameters
    ----------
    config:
        Forwarded to the wrapped :class:`WarpGate` (ignored when ``engine``
        is given).
    cache:
        Optional shared :class:`EmbeddingCache`, forwarded to the engine.
    engine:
        An existing :class:`WarpGate` to serve (e.g. restored via
        :func:`repro.core.persistence.load_index`); mutually exclusive
        with ``config``.
    durable_store:
        An already-open :class:`~repro.durability.DurableIndexStore` to
        log mutations into (the :meth:`load_durable` path).  When absent
        and the engine's config names a ``durable_dir``, the service
        opens a store there itself.

    Usage::

        service = DiscoveryService()
        service.open(WarehouseConnector(warehouse))
        response = service.search("sales.orders.customer_name", k=5)
        service.add_table("sales", new_table)       # no re-index
        service.drop_table("sales", "orders_old")   # no re-index
    """

    def __init__(
        self,
        config: WarpGateConfig | None = None,
        *,
        cache: EmbeddingCache | None = None,
        engine: WarpGate | None = None,
        durable_store=None,
    ) -> None:
        if engine is not None and (config is not None or cache is not None):
            raise ValueError("pass either engine or config/cache, not both")
        self.engine = engine if engine is not None else WarpGate(config, cache=cache)
        # Durable mutation log: every acknowledged mutation appends one
        # fsync'd WAL record *before* the mutator returns (the ack
        # barrier); see repro.durability.store for the crash-safety story.
        effective = self.engine.config
        self._store = durable_store
        if self._store is None and effective.durable_dir:
            from repro.durability import DurableIndexStore

            self._store = DurableIndexStore(
                effective.durable_dir,
                fsync=effective.durable_fsync,
                checkpoint_every=effective.checkpoint_every,
            )
        self._lock = ReadWriteLock()
        # Warehouse scans + embedding mutate connector/cache counters that
        # are not thread-safe, so every scan the service issues (query
        # embedding and mutation loading alike) is serialized here.  Index
        # probes stay concurrent under the RW lock's shared side.
        self._scan_lock = threading.Lock()
        # Traffic counters are written by concurrent readers (searches run
        # under the *shared* lock), so they get their own mutex.
        self._counter_lock = threading.Lock()
        self._searches = 0
        self._mutations = 0
        # The serving engine: a generation-keyed result cache consulted by
        # every probe, and a coalescer that batches concurrent requests
        # through _execute_coalesced.  Both are configured per engine.
        serving = self.engine.config
        self._qcache = (
            QueryResultCache(serving.query_cache_size)
            if serving.query_cache_size > 0
            else None
        )
        self._coalescer = (
            QueryCoalescer(
                self._execute_coalesced,
                # Fast path = the plain search path, verbatim: a request
                # hitting an idle coalescer costs exactly what search()
                # costs (the serve bench pins single-client p50 parity).
                execute_one=self._execute_one_timed,
                max_batch=serving.coalesce_max_batch,
                max_wait_us=serving.coalesce_max_wait_us,
                deadline_of=lambda timed: timed.deadline,
            )
            if serving.coalesce
            else None
        )
        # The join graph syncs lazily against the engine under its own
        # mutex (graph queries run beneath the *shared* read lock, so
        # they need a second serialization layer); mutators only touch
        # its dirty set, which has its own lock inside JoinGraph, so a
        # writer never acquires _graph_lock.  Path results are cached
        # under the index generation, mirroring the query cache.
        self._graph = JoinGraph(self.engine, edge_threshold=serving.threshold)
        self._graph_lock = threading.Lock()
        self._path_cache = (
            LRUCache(serving.query_cache_size)
            if serving.query_cache_size > 0
            else None
        )
        self._path_queries = 0
        # Overload protection: the HTTP layer reports every shed
        # connection here; sustained shedding downshifts serving fidelity
        # (narrower re-rank, capped path hops) and recovers hysteretically
        # once traffic quiets.  The tier is *applied* lazily on the probe
        # path so cache hits never pay for the reconciliation.
        self._degradation = DegradationPolicy(
            shed_threshold=serving.degrade_shed_threshold,
            window_s=serving.degrade_window_s,
            recovery_s=serving.degrade_recovery_s,
        )
        self._applied_tier = DegradationPolicy.TIER_NORMAL
        self._effective_rerank = serving.rerank_factor
        self._deadline_misses = 0
        #: Set by :meth:`load_durable` — what recovery found on disk.
        self.recovery_report: dict | None = None

    def __repr__(self) -> str:
        return (
            f"DiscoveryService(backend={self.engine.config.search_backend!r}, "
            f"indexed_columns={self.engine.indexed_count})"
        )

    # -- error translation ---------------------------------------------------------

    @contextmanager
    def _boundary(self):
        """Translate library errors into typed :class:`ServiceError` envelopes."""
        try:
            yield
        except ServiceError:
            raise
        except DeadlineExceededError as error:
            with self._counter_lock:
                self._deadline_misses += 1
            raise ServiceError.deadline_exceeded(str(error)) from error
        except (DatabaseNotFoundError, TableNotFoundError, ColumnNotFoundError) as error:
            raise ServiceError.not_found(str(error)) from error
        except (NotIndexedError, EmptyIndexError) as error:
            raise ServiceError.not_indexed(str(error)) from error
        except (WorkerCrashError, RespawnLimitError) as error:
            # A shard worker died mid-request (or its respawn breaker is
            # open): the pool has already reaped it, so this is a
            # server-side fault, not a caller mistake.
            raise ServiceError.internal(str(error)) from error

    def _record_mutation(self) -> None:
        """Bump the mutation counter and refresh derived structures."""
        with self._counter_lock:
            self._mutations += 1
        self.engine.rebuild_index()

    def _record_searches(self, count: int) -> None:
        with self._counter_lock:
            self._searches += count

    # -- durability ---------------------------------------------------------------

    @staticmethod
    def _ref_order(refs) -> list[ColumnRef]:
        return sorted(refs, key=lambda ref: (ref.database, ref.table, ref.column))

    def _log_mutation(self, *, upserts=(), removes=()) -> None:
        """Durably record a mutation's effect before acknowledging it.

        Called by the mutators after the engine change but before the
        response is built: the WAL append (fsync'd under the default
        policy) is the ack barrier — a crash before it loses only the
        unacknowledged mutation, a crash after it loses nothing.  Refs
        are logged in sorted order so replay is deterministic.
        """
        if self._store is None:
            return
        self._store.ensure_base(self.engine)
        removes = self._ref_order(removes)
        if removes:
            self._store.log_remove(removes)
        upserts = self._ref_order(upserts)
        if upserts:
            vectors = np.stack([self.engine.vector_of(ref) for ref in upserts])
            self._store.log_upsert(upserts, vectors)
        self._store.maybe_checkpoint(self.engine)

    def checkpoint(self) -> dict | None:
        """Compact the durable store now (no-op without one).

        Returns the published manifest, or ``None`` when the service is
        in-memory only.
        """
        if self._store is None:
            return None
        with self._lock.write(), self._boundary():
            return self._store.checkpoint(self.engine)

    @property
    def durable_store(self):
        """The backing :class:`DurableIndexStore` (``None`` when in-memory)."""
        return self._store

    # -- lifecycle ----------------------------------------------------------------

    def open(
        self, connector: WarehouseConnector, *, sampler: Sampler | None = None
    ) -> IndexReport:
        """Bulk-index every eligible column reachable via ``connector``.

        One-shot: re-opening an already-indexed service would merge two
        corpora into one index (leaving stale, unresolvable columns
        searchable), so it raises — build a fresh service instead, or
        evolve the current corpus through :meth:`add_table` /
        :meth:`drop_table`.
        """
        with self._lock.write(), self._scan_lock, self._boundary():
            if self.engine.is_indexed:
                raise ServiceError.bad_request(
                    "service is already open; create a new DiscoveryService "
                    "to index a different corpus"
                )
            if self._store is not None and self._store.has_manifest:
                raise ServiceError.bad_request(
                    f"durable store at {self._store.directory} already holds "
                    "a checkpoint; recover it with DiscoveryService."
                    "load_durable instead of re-indexing over it"
                )
            report = self.engine.index_corpus(connector, sampler=sampler)
            self.engine.rebuild_index()
            if self._store is not None:
                # Establish the durable base: the bulk-indexed corpus as
                # segment + manifest, before any mutation is acknowledged.
                self._store.checkpoint(self.engine)
            return report

    def close(self) -> None:
        """Release engine resources (shard worker processes; idempotent)."""
        self.engine.close()
        if self._store is not None:
            self._store.close()

    def attach_connector(self, connector: WarehouseConnector) -> None:
        """Attach a live connector (e.g. after restoring a saved artifact)."""
        with self._lock.write():
            self.engine.attach_connector(connector)
            # Edge confidences blend in MinHash signatures only when a
            # connector is available, so a late attach restarts the graph.
            self._graph.invalidate_all()

    def save(self, path: str | Path) -> Path:
        """Persist the index artifact (see :mod:`repro.core.persistence`)."""
        from repro.core.persistence import save_index

        with self._lock.read():
            return save_index(self.engine, path)

    @classmethod
    def load(
        cls, path: str | Path, *, connector: WarehouseConnector | None = None
    ) -> "DiscoveryService":
        """Restore a service from a saved artifact, optionally re-attached."""
        from repro.core.persistence import load_index

        service = cls(engine=load_index(path))
        if connector is not None:
            service.engine.attach_connector(connector)
        service.engine.rebuild_index()
        return service

    @classmethod
    def load_durable(
        cls,
        directory: str | Path,
        *,
        connector: WarehouseConnector | None = None,
    ) -> "DiscoveryService":
        """Recover a service from a durable store (crash or clean restart).

        Validates the manifest and segment checksums, discards a torn
        WAL tail, and replays acknowledged records — the rebuilt index
        holds exactly the last-acknowledged mutation set.  The recovery
        report is exposed as :attr:`recovery_report`.
        """
        from repro.core.persistence import load_index_durable

        engine, store, report = load_index_durable(directory)
        service = cls(engine=engine, durable_store=store)
        service.recovery_report = report
        if connector is not None:
            service.engine.attach_connector(connector)
        return service

    # -- incremental mutation ------------------------------------------------------

    def _table_refs(self, database: str, table_name: str) -> list[ColumnRef]:
        """Indexed refs belonging to one table."""
        return [
            ref
            for ref in self.engine.indexed_refs
            if ref.table_key == (database, table_name)
        ]

    def add_table(
        self, database: str, table: Table, *, sampler: Sampler | None = None
    ) -> IndexStats:
        """Register ``table`` and index its eligible columns incrementally.

        Replacing an existing table of the same name re-embeds its columns
        and evicts any indexed column the new table no longer carries.
        The full corpus is never re-indexed.
        """
        with self._lock.write(), self._scan_lock, self._boundary():
            warehouse = self.engine.connector.warehouse
            before = set(self._table_refs(database, table.name))
            warehouse.add_table(database, table)
            eligible = [
                ColumnRef(database, table.name, column.name)
                for column in table.columns
                if column.dtype in ELIGIBLE_TYPES
            ]
            # One batched scan + encode for the whole table — the same
            # chunked pipeline corpus indexing uses.
            kept = set(self.engine.add_columns(eligible, sampler=sampler))
            # Evict everything previously indexed for this table that did
            # not survive re-indexing: columns dropped by name, columns
            # whose dtype became ineligible, and columns that now embed to
            # a zero vector.
            for ref in before - kept:
                self.engine.remove_column(ref)
            self._log_mutation(upserts=kept, removes=before - kept)
            self._graph.invalidate_table((database, table.name))
            self._record_mutation()
            return self._stats_locked()

    def drop_table(self, database: str, table_name: str) -> IndexStats:
        """Evict a table's columns from the index and drop it from the catalog."""
        with self._lock.write(), self._scan_lock, self._boundary():
            warehouse = self.engine.connector.warehouse
            warehouse.drop_table(database, table_name)
            evicted = self._table_refs(database, table_name)
            for ref in evicted:
                self.engine.remove_column(ref)
            if not evicted:
                # Every column was already evicted (e.g. refreshed away
                # during churn), so removing the catalog entry changes no
                # index content — but generation-keyed consumers (query
                # cache, join graph) must still observe the drop.
                self.engine.bump_generation()
            self._log_mutation(removes=evicted)
            self._graph.invalidate_table((database, table_name))
            self._record_mutation()
            return self._stats_locked()

    def refresh_column(
        self, ref: ColumnRef | str, *, sampler: Sampler | None = None
    ) -> IndexStats:
        """Re-scan and re-embed one *indexed* column in place.

        Refreshing a ref that is not in the index is ``not_found`` — a
        refresh must never turn into an insert of a column the indexing
        eligibility rules excluded (use :meth:`add_table` to add data).
        """
        request_ref = ref if isinstance(ref, ColumnRef) else ColumnRef.parse(ref)
        with self._lock.write(), self._scan_lock, self._boundary():
            request_ref = self._resolve_ref(request_ref)
            if not self.engine.is_column_indexed(request_ref):
                raise ServiceError.not_found(f"{request_ref} is not indexed")
            self.engine.refresh_column(request_ref, sampler=sampler)
            if self.engine.is_column_indexed(request_ref):
                self._log_mutation(upserts=[request_ref])
            else:
                # The refresh evicted the column (it embeds to zero now).
                self._log_mutation(removes=[request_ref])
            self._graph.invalidate_table(request_ref.table_key)
            self._record_mutation()
            return self._stats_locked()

    # -- search -------------------------------------------------------------------

    @staticmethod
    def _coerce(request: SearchRequest | ColumnRef | str, k, threshold) -> SearchRequest:
        if isinstance(request, SearchRequest):
            return request
        return SearchRequest(query=request, k=k, threshold=threshold)

    def _resolve_ref(self, ref: ColumnRef) -> ColumnRef:
        """Qualify a 2-part ``table.column`` ref when it is unambiguous."""
        if ref.database:
            return ref
        connector = self.engine._connector
        names = connector.warehouse.database_names if connector is not None else ()
        if len(names) == 1:
            return ColumnRef(names[0], ref.table, ref.column)
        raise ServiceError.bad_request(
            f"query {ref} omits the database and the warehouse has "
            f"{len(names)} database(s); use db.table.column"
        )

    def _absolute_deadline(self, deadline_ms: int | None) -> float | None:
        """Translate a millisecond budget into an absolute monotonic deadline.

        ``None`` falls back to the config's ``default_deadline_ms``;
        a resolved budget of 0 means *no deadline*.
        """
        if deadline_ms is None:
            deadline_ms = self.engine.config.default_deadline_ms
        if not deadline_ms:
            return None
        return time.monotonic() + deadline_ms / 1e3

    def _deadline_for(self, request: SearchRequest) -> float | None:
        """This request's absolute deadline (its budget starts now)."""
        return self._absolute_deadline(request.deadline_ms)

    @staticmethod
    def _check_deadline(deadline: float | None) -> None:
        """Raise :class:`DeadlineExceededError` when ``deadline`` has passed.

        Called at every expensive boundary on the search path so a doomed
        request is answered instead of burning scan/embed/GEMM work it
        can no longer use.  Always called inside :meth:`_boundary`, which
        translates the raise into a 504 envelope and counts the miss.
        """
        if deadline is None:
            return
        overrun = time.monotonic() - deadline
        if overrun >= 0:
            raise DeadlineExceededError(overrun_s=overrun)

    def _effective_params(self, request: SearchRequest) -> tuple[int, float]:
        """Resolve ``(k, threshold)`` against the engine configuration.

        Cache keys and probe calls both use the resolved values, so a
        request relying on defaults and one naming them explicitly hit
        the same cache entry.
        """
        config = self.engine.config
        k = request.k if request.k is not None else config.default_k
        threshold = (
            request.threshold if request.threshold is not None else config.threshold
        )
        return k, threshold

    @staticmethod
    def _result_from_cached(cached, exclude: ColumnRef) -> DiscoveryResult:
        """Rebuild a result from cached ``(ref, score)`` pairs (fresh objects)."""
        return DiscoveryResult(
            query=exclude,
            candidates=[JoinCandidate(ref, score) for ref, score in cached],
            timing=TimingBreakdown(),
        )

    def _embed_then_probe(
        self,
        query: ColumnRef,
        request: SearchRequest,
        *,
        deadline: float | None = None,
    ) -> SearchResponse:
        """The locked embed → probe pipeline of the single-search path.

        Embedding scans the warehouse, so it runs under the scan mutex;
        the index probe runs under the shared side of the RW lock.  The
        two sections are sequential, never nested, so a writer holding
        write+scan cannot deadlock with a reader.  The probe itself is a
        one-entry :meth:`_probe_block_locked` block, so the query-cache
        protocol has exactly one implementation across the single,
        batch, and coalesced paths (and a lone miss takes the
        single-query probe, not a full-arena GEMM).
        """
        with self._scan_lock:
            self._check_deadline(deadline)
            vector, timing = self.engine.embed_query(query)
        if not np.any(vector):
            return SearchResponse.from_result(
                DiscoveryResult(query=query, candidates=[], timing=timing)
            )
        self._check_deadline(deadline)
        k, threshold = self._effective_params(request)
        responses: list[SearchResponse | None] = [None]
        with self._lock.read():
            self._probe_block_locked(k, threshold, [(0, vector, query, timing)], responses)
        return responses[0]  # type: ignore[return-value]

    def search(
        self,
        request: SearchRequest | ColumnRef | str,
        k: int | None = None,
        *,
        threshold: float | None = None,
    ) -> SearchResponse:
        """Top-k join discovery for one request.

        Runs the engine's exact search pipeline (embed → probe → rank);
        probes from concurrent callers share the read lock.
        """
        request = self._coerce(request, k, threshold)
        with self._boundary():
            response = self._embed_then_probe(
                self._resolve_ref(request.query),
                request,
                deadline=self._deadline_for(request),
            )
        self._record_searches(1)
        return response

    def _execute_one_timed(self, timed: _TimedRequest) -> SearchResponse:
        """The coalescer's fast path: plain search under a carried deadline.

        Identical to :meth:`search` except the deadline was fixed at
        submission time (``_TimedRequest``), so time spent reaching the
        fast path counts against the budget.
        """
        request = timed.request
        with self._boundary():
            self._check_deadline(timed.deadline)
            response = self._embed_then_probe(
                self._resolve_ref(request.query), request, deadline=timed.deadline
            )
        self._record_searches(1)
        return response

    def search_many(
        self,
        requests: list[SearchRequest | ColumnRef | str],
        *,
        deadline_ms: int | None = None,
    ) -> list[SearchResponse]:
        """Batch search: one lock round, one embedding per unique query,
        and one batched index probe per parameter group.

        Results are identical to issuing each request through
        :meth:`search` — the probe runs the engine's
        :meth:`~repro.core.warpgate.WarpGate.search_vectors`, which is the
        index's true batched path (one matrix product per query block, see
        ``ColumnarIndex.search_batch``; on a sharded engine the block fans
        out across all shards in parallel on the shared pool, see
        ``ShardedIndex.search_batch``) with per-query semantics preserved
        — but duplicate query refs pay the warehouse scan and embedding
        only once, and the block amortizes signature hashing, candidate
        generation, and BLAS dispatch.  Requests sharing ``(k, threshold)``
        are probed together; mixed-parameter batches fall into one block
        per distinct pair.

        The batch is all-or-nothing: if any request's query cannot be
        resolved or scanned, the whole call raises one
        :class:`ServiceError` and no partial results are returned —
        including deadlines: the batch shares its *tightest* deadline
        (``deadline_ms`` here, any request's own ``deadline_ms``, or the
        config default), and expiry fails the whole call with 504.
        """
        coerced = [self._coerce(request, None, None) for request in requests]
        responses: list[SearchResponse | None] = [None] * len(coerced)
        with self._boundary():
            bounds = [self._deadline_for(request) for request in coerced]
            if deadline_ms is not None:
                bounds.append(self._absolute_deadline(deadline_ms))
            bounds = [bound for bound in bounds if bound is not None]
            deadline = min(bounds) if bounds else None
            resolved = [self._resolve_ref(request.query) for request in coerced]
            embedded: dict[ColumnRef, tuple] = {}
            with self._scan_lock:
                for query in resolved:
                    self._check_deadline(deadline)
                    if query not in embedded:
                        embedded[query] = self.engine.embed_query(query)
            groups: dict[tuple, list[int]] = {}
            for position, request in enumerate(coerced):
                groups.setdefault(self._effective_params(request), []).append(position)
            with self._lock.read():
                self._check_deadline(deadline)
                for (k, threshold), positions in groups.items():
                    block = [
                        (
                            position,
                            embedded[resolved[position]][0],
                            resolved[position],
                            embedded[resolved[position]][1],
                        )
                        for position in positions
                    ]
                    self._probe_block_locked(k, threshold, block, responses)
        self._record_searches(len(coerced))
        return responses  # type: ignore[return-value]

    def _probe_block_locked(
        self, k: int, threshold: float, block: list, responses: list
    ) -> None:
        """Probe one same-``(k, threshold)`` block, cache-first, batched.

        ``block`` lists ``(position, vector, exclude, embed_timing)``;
        the caller holds the shared read lock.  Cache hits resolve
        without touching the index; misses probe together through the
        engine's batched :meth:`~repro.core.warpgate.WarpGate.search_vectors`
        and are stored under the generation read beneath this read lock
        (mutations need the exclusive side, so it cannot move mid-block).
        """
        misses: list[tuple] = []
        self._apply_degradation_locked()
        if self._qcache is not None:
            generation = self.engine.index_generation
            for position, vector, exclude, embed_timing in block:
                key = QueryResultCache.key(vector, k, threshold, exclude, generation)
                cached = self._qcache.get(key)
                if cached is not None:
                    result = self._result_from_cached(cached, exclude)
                    result.timing = embed_timing + result.timing
                    responses[position] = SearchResponse.from_result(result)
                else:
                    misses.append((position, vector, exclude, embed_timing, key))
        else:
            misses = [(*entry, None) for entry in block]
        if not misses:
            return
        if len(misses) == 1:
            # A lone miss takes the single-query probe (candidate gather,
            # not a full-arena GEMM) — this is what makes the coalescer's
            # fast path cost exactly what plain search() costs.
            results = [
                self.engine.search_vector(
                    misses[0][1], k, threshold=threshold, exclude=misses[0][2]
                )
            ]
        else:
            results = self.engine.search_vectors(
                [entry[1] for entry in misses],
                k,
                threshold=threshold,
                excludes=[entry[2] for entry in misses],
            )
        for (position, _vector, _exclude, embed_timing, key), result in zip(
            misses, results
        ):
            if key is not None:
                self._qcache.put(
                    key,
                    [(candidate.ref, candidate.score) for candidate in result.candidates],
                )
            result.timing = embed_timing + result.timing
            responses[position] = SearchResponse.from_result(result)

    def _apply_degradation_locked(self) -> None:
        """Reconcile the engine's re-rank breadth with the degradation tier.

        Called on the probe path only — cache hits skip it, so cached
        answers stay full-fidelity for free even while degraded.  The
        setter is an idempotent attribute swap inside the engine, so
        concurrent readers racing here converge on the same value.
        """
        tier = self._degradation.tier()
        if tier == self._applied_tier:
            return
        base = self.engine.config.rerank_factor
        effective = self._degradation.rerank_factor_for(base)
        self.engine.set_rerank_factor(effective)
        with self._counter_lock:
            self._applied_tier = tier
            self._effective_rerank = effective

    # -- coalesced serving path ----------------------------------------------------

    def search_coalesced(
        self,
        request: SearchRequest | ColumnRef | str,
        k: int | None = None,
        *,
        threshold: float | None = None,
    ) -> SearchResponse:
        """Top-k search through the request coalescer.

        The serving engine's entry point (``POST /search`` routes here):
        requests in flight at the same moment execute as one batched
        index probe, while a lone request takes the coalescer's fast path
        — so sparse traffic pays no added latency and results are always
        identical to :meth:`search`.  With coalescing disabled in the
        config this *is* :meth:`search`.
        """
        request = self._coerce(request, k, threshold)
        if self._coalescer is None:
            return self.search(request)
        timed = _TimedRequest(request, self._deadline_for(request))
        with self._boundary():
            return self._coalescer.submit(timed)  # type: ignore[return-value]

    def _execute_coalesced(self, batch: list) -> list:
        """Batch executor behind the coalescer: one outcome per request.

        Unlike :meth:`search_many` (all-or-nothing by contract), coalesced
        requests are independent strangers sharing a batch, so failures
        are isolated: each position gets either a :class:`SearchResponse`
        or the :class:`ServiceError` that request alone would have raised
        — deadlines included: a position that expires while its
        batchmates embed is answered 504 right there and never joins the
        probe block.
        """
        count = len(batch)
        requests = [timed.request for timed in batch]
        deadlines = [timed.deadline for timed in batch]
        outcomes: list[object] = [None] * count
        resolved: list[ColumnRef | None] = [None] * count
        embedded: dict[ColumnRef, tuple] = {}
        with self._scan_lock:
            for position, request in enumerate(requests):
                try:
                    with self._boundary():
                        self._check_deadline(deadlines[position])
                        query = self._resolve_ref(request.query)
                        if query not in embedded:
                            embedded[query] = self.engine.embed_query(query)
                    resolved[position] = query
                except ServiceError as error:
                    outcomes[position] = error
                except ReproError as error:
                    outcomes[position] = ServiceError.bad_request(str(error))
        groups: dict[tuple, list[int]] = {}
        for position, request in enumerate(requests):
            if outcomes[position] is None:
                groups.setdefault(self._effective_params(request), []).append(position)
        succeeded = 0
        with self._lock.read():
            for (k_eff, threshold_eff), positions in groups.items():
                live: list[tuple] = []
                for position in positions:
                    try:
                        with self._boundary():
                            self._check_deadline(deadlines[position])
                    except ServiceError as error:
                        outcomes[position] = error
                        continue
                    query = resolved[position]
                    vector, embed_timing = embedded[query]
                    if not np.any(vector):
                        outcomes[position] = SearchResponse.from_result(
                            DiscoveryResult(
                                query=query, candidates=[], timing=embed_timing
                            )
                        )
                        succeeded += 1
                    else:
                        live.append((position, vector, query, embed_timing))
                if not live:
                    continue
                try:
                    with self._boundary():
                        self._probe_block_locked(
                            k_eff, threshold_eff, live, outcomes
                        )
                    succeeded += len(live)
                except ServiceError as error:
                    # The whole block failed the same way (e.g. the index
                    # emptied out underneath the batch).
                    for position, *_rest in live:
                        outcomes[position] = error
                except ReproError as error:
                    for position, *_rest in live:
                        outcomes[position] = ServiceError.bad_request(str(error))
        self._record_searches(succeeded)
        return outcomes

    # -- join-path graph -----------------------------------------------------------

    def _resolve_table(self, table: str | TableKey) -> TableKey:
        """Qualify a bare table name into ``(database, table)`` when unambiguous."""
        if isinstance(table, str):
            key = parse_table(table)
        else:
            key = (str(table[0]), str(table[1]))
        if key[0]:
            return key
        connector = self.engine.connector_or_none
        names = connector.warehouse.database_names if connector is not None else ()
        if len(names) == 1:
            return (names[0], key[1])
        raise ServiceError.bad_request(
            f"table {key[1]!r} omits the database and the warehouse has "
            f"{len(names)} database(s); use db.table"
        )

    def _graph_sync_locked(self) -> None:
        """Bring the graph current; caller holds the read and graph locks.

        Edge sweeps probe the index (safe under the shared lock); MinHash
        signature scans go through the connector, so the sync runs under
        the scan mutex like every other warehouse access.
        """
        with self._scan_lock:
            self._graph.ensure_current()

    def find_paths(
        self,
        src: str | TableKey,
        dst: str | TableKey,
        *,
        max_hops: int = 3,
        limit: int | None = 5,
        combiner: str = "product",
        deadline_ms: int | None = None,
    ) -> list[JoinPath]:
        """Ranked multi-hop join paths between two tables.

        Tables are named ``db.table`` (or bare when the warehouse has one
        database).  Results are cached under the index generation, so a
        repeated query is a dictionary hit until any mutation lands.
        ``deadline_ms`` bounds the query like the search path (expiry is
        a 504); while the service is degraded, path exploration is capped
        to one hop regardless of ``max_hops`` (the cap is part of the
        cache key, so degraded and full answers never mix).
        """
        with self._boundary():
            deadline = self._absolute_deadline(deadline_ms)
            src_key = self._resolve_table(src)
            dst_key = self._resolve_table(dst)
            cap = self._degradation.max_hops_cap()
            effective_hops = min(max_hops, cap) if cap is not None else max_hops
            with self._lock.read(), self._graph_lock:
                self._graph_sync_locked()
                self._check_deadline(deadline)
                paths: tuple[JoinPath, ...] | None = None
                key = None
                if self._path_cache is not None and isinstance(combiner, str):
                    key = (
                        src_key,
                        dst_key,
                        effective_hops,
                        limit,
                        combiner,
                        self.engine.index_generation,
                    )
                    paths = self._path_cache.get(key)
                if paths is None:
                    try:
                        paths = tuple(
                            self._graph.find_paths(
                                src_key,
                                dst_key,
                                max_hops=effective_hops,
                                limit=limit,
                                combiner=combiner,
                            )
                        )
                    except ValueError as error:
                        raise ServiceError.bad_request(str(error)) from error
                    if key is not None:
                        self._path_cache.put(key, paths)
        with self._counter_lock:
            self._path_queries += 1
        return list(paths)

    def neighbors(self, table: str | TableKey) -> list[tuple[TableKey, JoinEdge]]:
        """Directly joinable tables with the best edge to each, ranked."""
        with self._boundary():
            key = self._resolve_table(table)
            with self._lock.read(), self._graph_lock:
                self._graph_sync_locked()
                ranked = self._graph.neighbors(key)
        with self._counter_lock:
            self._path_queries += 1
        return ranked

    def graph_stats(self) -> dict[str, object]:
        """Join-graph counters after forcing a sync (``GET /graph/stats``)."""
        with self._boundary(), self._lock.read(), self._graph_lock:
            self._graph_sync_locked()
            payload = self._graph.stats()
        with self._counter_lock:
            payload["path_queries"] = self._path_queries
        if self._path_cache is not None:
            payload["path_cache"] = self._path_cache.stats()
        return payload

    def export_graph(self, fmt: str = "dot") -> str:
        """The synced graph as DOT or JSON text (CLI export path)."""
        from repro.graph.export import export_graph

        with self._boundary(), self._lock.read(), self._graph_lock:
            self._graph_sync_locked()
            try:
                return export_graph(self._graph, fmt)
            except ValueError as error:
                raise ServiceError.bad_request(str(error)) from error

    @property
    def join_graph(self) -> JoinGraph:
        """The underlying graph (synchronize access through this service)."""
        return self._graph

    # -- introspection -------------------------------------------------------------

    def _stats_locked(self) -> IndexStats:
        """Snapshot stats; caller must hold the lock (read or write)."""
        tables = databases = 0
        if self.engine._connector is not None:
            warehouse = self.engine._connector.warehouse
            tables = warehouse.table_count
            databases = len(warehouse.database_names)
        config = self.engine.config
        with self._counter_lock:
            searches, mutations = self._searches, self._mutations
            path_queries = self._path_queries
            deadline_misses = self._deadline_misses
            effective_rerank = self._effective_rerank
        # Counters only — never forces a graph sync (stats must stay cheap).
        graph = self._graph.stats()
        graph["path_queries"] = path_queries
        caches = self.engine.embedding_cache_stats()
        if self._qcache is not None:
            caches["query_cache"] = self._qcache.stats()
        if self._coalescer is not None:
            caches["coalescer"] = self._coalescer.stats()
        return IndexStats(
            backend=config.search_backend,
            dim=config.dim,
            threshold=config.threshold,
            indexed_columns=self.engine.indexed_count,
            tables=tables,
            databases=databases,
            searches=searches,
            mutations=mutations,
            caches=caches,
            shards=(
                config.shard_workers
                if config.shard_workers > 0
                else config.n_shards
            ),
            quantized=config.quantize,
            graph=graph,
            workers=config.shard_workers,
            durability=self._store.stats() if self._store is not None else None,
            degradation={
                **self._degradation.snapshot(),
                "rerank_factor_effective": effective_rerank,
                "max_hops_cap": self._degradation.max_hops_cap(),
            },
            deadlines={
                "default_deadline_ms": config.default_deadline_ms,
                "misses": deadline_misses,
            },
        )

    def stats(self) -> IndexStats:
        """Current :class:`IndexStats` snapshot (shared read lock)."""
        with self._lock.read():
            return self._stats_locked()

    @property
    def is_indexed(self) -> bool:
        """True once the service holds a searchable index."""
        return self.engine.is_indexed

    @property
    def degradation(self) -> DegradationPolicy:
        """The overload degradation policy (the HTTP layer reports sheds here)."""
        return self._degradation

    @property
    def readiness(self) -> tuple[bool, str]:
        """``(ready, reason)`` for the ``/readyz`` probe.

        Liveness (``/healthz``) answers "is the process up"; readiness
        answers "should a balancer send traffic here" — ``False`` while
        the service has no searchable index yet (still recovering, or
        never opened) and while degraded-mode sits at its deepest tier,
        where adding traffic only deepens the overload.
        """
        if not self.engine.is_indexed:
            return False, "index not loaded"
        if self._degradation.tier() >= DegradationPolicy.TIER_CRITICAL:
            return False, "degraded: critical tier"
        return True, "ready"

    @property
    def coalescer(self) -> QueryCoalescer | None:
        """The request coalescer (``None`` when ``config.coalesce`` is off)."""
        return self._coalescer

    @property
    def query_cache(self) -> QueryResultCache | None:
        """The result cache (``None`` when ``config.query_cache_size`` is 0)."""
        return self._qcache
