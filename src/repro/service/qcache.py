"""Generation-keyed query-result cache for the serving layer.

BI traffic is heavily repetitive: the same joinability probes arrive from
many dashboards and sessions against an index that mutates rarely by
comparison.  :class:`QueryResultCache` memoizes ranked candidate lists in
a bounded, thread-safe LRU whose key embeds the *index mutation
generation* — the monotonic counter every index backend exposes
(:attr:`~repro.index.arena.ColumnarIndex.mutation_generation`, summed
across shards on a :class:`~repro.index.sharding.ShardedIndex`).  Any
``add_table`` / ``drop_table`` / ``refresh_column`` / compaction moves
the generation, so every previously cached entry stops matching *by
construction*: there is no explicit invalidation hook to forget, and a
stale result can never be served.  Entries from dead generations age out
of the LRU tail naturally.

Keying is exact, not semantic: the query vector is digested byte-for-byte
(as the canonical ``float64`` array the probe consumes), and ``k``, the
effective threshold, and the excluded ref are all part of the key, so a
hit is guaranteed to denote the identical probe.  Cached values are
immutable ``(ref, score)`` tuples; callers rebuild result objects per
response, so responses never alias shared state.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embedding.base import LRUCache

__all__ = ["QueryResultCache"]

#: Cached candidate lists: an immutable tuple of (ref, exact float32 score).
CachedCandidates = tuple


class QueryResultCache:
    """Bounded, thread-safe LRU of ranked search results, keyed by
    ``(query digest, k, threshold, exclude, index generation)``.

    Parameters
    ----------
    capacity:
        Maximum cached probes; the least recently used entry is evicted
        first.  Construction with ``capacity <= 0`` raises — callers
        model "cache disabled" as no cache at all, not an empty one.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._entries = LRUCache(capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"QueryResultCache(size={len(self)}, "
            f"capacity={self._entries.capacity}, "
            f"hit_rate={self._entries.hit_rate:.2f})"
        )

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any access."""
        return self._entries.hit_rate

    @staticmethod
    def key(
        vector: np.ndarray,
        k: int,
        threshold: float,
        exclude: object,
        generation: int,
    ) -> tuple:
        """The exact-probe cache key.

        The vector is digested as the canonical ``float64`` contiguous
        array the probe consumes (so logically-equal queries arriving as
        float32 vs float64 views collide as they should), and the
        generation rides in the key: one mutation anywhere in the index
        and every older entry simply stops matching.
        """
        canonical = np.ascontiguousarray(vector, dtype=np.float64)
        digest = hashlib.blake2b(canonical.tobytes(), digest_size=16).digest()
        return (
            digest,
            int(k),
            float(threshold),
            str(exclude) if exclude is not None else None,
            int(generation),
        )

    def get(self, key: tuple) -> CachedCandidates | None:
        """Cached ``(ref, score)`` tuple for ``key``, or ``None`` (a miss)."""
        return self._entries.get(key)

    def put(self, key: tuple, candidates: list) -> None:
        """Store a ranked candidate list (frozen into a tuple of pairs)."""
        self._entries.put(key, tuple((ref, float(score)) for ref, score in candidates))

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()

    def stats(self) -> dict[str, object]:
        """Machine-readable snapshot (``/stats`` and the bench report)."""
        return self._entries.stats()
