"""Multi-process HTTP serving over one ``SO_REUSEPORT`` listen address.

The worker-pool :class:`~repro.service.server.DiscoveryHTTPServer` scales
request handling across threads, but accept/parse/encode and every index
probe still run under one interpreter.  :class:`MultiProcessServer` is
the pre-fork upgrade: ``procs`` child processes each run a complete
server (own service instance, own worker pool) bound to the *same*
``host:port`` with ``SO_REUSEPORT``, so the kernel load-balances incoming
connections across processes and the whole request path — JSON parsing,
embedding lookups, index GEMMs, response encoding — runs GIL-free in
parallel.  ``python -m repro serve --procs N`` routes here.

Design notes:

* **one service per child.**  Children are forked, each builds its own
  :class:`~repro.service.discovery.DiscoveryService` from the supplied
  ``service_factory`` — typically an artifact loader, so every child
  memory-maps the same artifact file and the page cache shares the
  vector data across processes (the same shared-mmap economics the
  :class:`~repro.index.procpool.ProcessShardedIndex` workers use).
  Mutating routes still work, but mutate one child's replica only — the
  multi-process front is for read-heavy serving; route writes to a
  single-process deployment (or republish the artifact).
* **ephemeral ports.**  ``port=0`` is resolved by the parent binding a
  placeholder ``SO_REUSEPORT`` socket first; children bind the resolved
  port and the placeholder closes once every child reports ready.  The
  placeholder never listens, so it receives no connections.
* **supervision.**  A parent thread respawns any child that dies until
  :meth:`shutdown`, which SIGTERMs the children (each shuts its server
  down cleanly) and joins them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time

from repro._util import RespawnGovernor
from repro.errors import ReproError, RespawnLimitError
from repro.service.server import make_server

__all__ = ["MultiProcessServer", "serve_multiprocess"]

#: Seconds the parent waits for one child to report readiness.
_READY_TIMEOUT_S = 30.0
#: Supervisor poll cadence for dead-child detection.
_SUPERVISE_INTERVAL_S = 0.5


def _child_main(
    service_factory,
    host: str,
    port: int,
    workers: int,
    keepalive_idle_s: float,
    verbose: bool,
    ready_conn,
    admission_queue_depth: int | None = None,
    max_body_bytes: int | None = None,
    body_read_timeout_s: float | None = None,
) -> None:
    """One serving child: build the service, serve until SIGTERM."""
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # The parent's foreground Ctrl-C delivers SIGINT to the whole group;
    # shutdown is the parent's job (it SIGTERMs us), so ignore it here.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    overrides = {}
    if max_body_bytes is not None:
        overrides["max_body_bytes"] = max_body_bytes
    if body_read_timeout_s is not None:
        overrides["body_read_timeout_s"] = body_read_timeout_s
    try:
        service = service_factory()
        server = make_server(
            service,
            host,
            port,
            verbose=verbose,
            workers=workers,
            keepalive_idle_s=keepalive_idle_s,
            reuse_port=True,
            admission_queue_depth=admission_queue_depth,
            **overrides,
        )
    except Exception as error:  # noqa: BLE001 — reported to the parent
        try:
            ready_conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            ready_conn.close()
        return
    with server:
        ready_conn.send(("ready", os.getpid()))
        ready_conn.close()
        stop.wait()
    server.server_close()


class MultiProcessServer:
    """``procs`` forked HTTP servers sharing one SO_REUSEPORT address.

    Parameters
    ----------
    service_factory:
        Zero-argument callable building one
        :class:`~repro.service.discovery.DiscoveryService`; runs inside
        each child after fork (closures are fine — nothing is pickled).
    host, port:
        Listen address; ``port=0`` resolves to a free port shared by
        every child (see :attr:`port` after :meth:`start`).
    procs:
        Child server processes.
    workers, keepalive_idle_s, verbose:
        Forwarded to each child's
        :class:`~repro.service.server.DiscoveryHTTPServer`.
    admission_queue_depth, max_body_bytes, body_read_timeout_s:
        Per-child overload-protection knobs, forwarded verbatim: each
        child runs its own bounded admission queue (kernel REUSEPORT
        balancing spreads connections, so per-child shedding bounds the
        whole deployment) and the same body-size / slow-client limits as
        a single-process server.  ``None`` keeps the server defaults.
    max_respawns, respawn_window_s:
        Per-slot circuit breaker: a child that crashes ``max_respawns``
        times within ``respawn_window_s`` seconds stops being respawned
        (its slot is disabled with one clear message); the surviving
        children keep serving.  Respawns back off exponentially with
        jitter between attempts.
    """

    def __init__(
        self,
        service_factory,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        procs: int = 2,
        workers: int = 32,
        keepalive_idle_s: float = 5.0,
        verbose: bool = False,
        max_respawns: int = 5,
        respawn_window_s: float = 30.0,
        admission_queue_depth: int | None = None,
        max_body_bytes: int | None = None,
        body_read_timeout_s: float | None = None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ReproError(
                "multi-process serving needs SO_REUSEPORT, which this "
                "platform does not provide"
            )
        self._factory = service_factory
        self.host = host
        self.port = port
        self.procs = procs
        self._workers = workers
        self._keepalive_idle_s = keepalive_idle_s
        self._verbose = verbose
        self._admission_queue_depth = admission_queue_depth
        self._max_body_bytes = max_body_bytes
        self._body_read_timeout_s = body_read_timeout_s
        self._ctx = multiprocessing.get_context("fork")
        self._children: list[multiprocessing.process.BaseProcess | None] = (
            [None] * procs
        )
        # One respawn governor per slot: exponential backoff with jitter
        # between respawns, breaker open after max_respawns crashes in
        # the window (a child crash-looping on a poisoned artifact would
        # otherwise respawn every _SUPERVISE_INTERVAL_S forever).
        self._governors = [
            RespawnGovernor(
                base_delay_s=0.1,
                max_delay_s=5.0,
                max_failures=max_respawns,
                window_s=respawn_window_s,
            )
            for _ in range(procs)
        ]
        self._disabled: set[int] = set()
        self._placeholder: socket.socket | None = None
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._started = False

    # -- lifecycle ----------------------------------------------------------------

    def _spawn_child(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_child_main,
            args=(
                self._factory,
                self.host,
                self.port,
                self._workers,
                self._keepalive_idle_s,
                self._verbose,
                child_conn,
                self._admission_queue_depth,
                self._max_body_bytes,
                self._body_read_timeout_s,
            ),
            name=f"mpserve-{slot}",
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(_READY_TIMEOUT_S):
                raise ReproError(
                    f"serving child {slot} did not report ready within "
                    f"{_READY_TIMEOUT_S}s"
                )
            status, detail = parent_conn.recv()
        except EOFError as error:
            raise ReproError(
                f"serving child {slot} died before reporting ready"
            ) from error
        finally:
            parent_conn.close()
        if status != "ready":
            process.join(timeout=2.0)
            raise ReproError(f"serving child {slot} failed to start: {detail}")
        self._children[slot] = process

    def _supervise(self) -> None:
        """Respawn dead children (with backoff + breaker) until shutdown."""
        while not self._stopping.wait(_SUPERVISE_INTERVAL_S):
            for slot, child in enumerate(self._children):
                if self._stopping.is_set():
                    return
                if child is None or child.is_alive() or slot in self._disabled:
                    continue
                governor = self._governors[slot]
                governor.record_failure()
                if not governor.allow():
                    # Breaker open: disable the slot with one clear
                    # message instead of a hot respawn loop; surviving
                    # children keep serving.
                    self._disabled.add(slot)
                    error = RespawnLimitError(
                        f"serving child {slot}",
                        governor.recent_failures,
                        governor.window_s,
                    )
                    print(f"mpserve: {error}")
                    continue
                # Interruptible backoff sleep (shutdown must not wait out
                # a multi-second delay).
                if self._stopping.wait(governor.next_delay_s()):
                    return
                try:
                    self._spawn_child(slot)
                except ReproError:
                    # Spawn itself failed (not ready / died at startup):
                    # counts toward the breaker like any other crash.
                    governor.record_failure()
                    self._children[slot] = child

    def start(self) -> "MultiProcessServer":
        """Resolve the port, fork the children, begin supervising."""
        if self._started:
            return self
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            placeholder.bind((self.host, self.port))
            self.port = placeholder.getsockname()[1]
            self._placeholder = placeholder
            for slot in range(self.procs):
                self._spawn_child(slot)
        except BaseException:
            self._placeholder = None
            placeholder.close()
            self._terminate_children()
            raise
        # Children all hold the port now; the never-listening placeholder
        # only existed to reserve it (and to resolve port=0).
        self._placeholder = None
        placeholder.close()
        self._started = True
        self._supervisor = threading.Thread(
            target=self._supervise, name="mpserve-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def _terminate_children(self) -> None:
        for child in self._children:
            if child is not None and child.is_alive():
                child.terminate()
        deadline = time.monotonic() + 10.0
        for slot, child in enumerate(self._children):
            if child is None:
                continue
            child.join(timeout=max(0.1, deadline - time.monotonic()))
            if child.is_alive():
                child.kill()
                child.join(timeout=2.0)
            self._children[slot] = None

    def shutdown(self) -> None:
        """Stop supervising, SIGTERM every child, join them (idempotent)."""
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10)
            self._supervisor = None
        self._terminate_children()
        self._started = False

    def child_pids(self) -> list[int | None]:
        """Live child pids by slot (``None`` for a dead/unspawned slot)."""
        return [
            child.pid if child is not None and child.is_alive() else None
            for child in self._children
        ]

    def __enter__(self) -> "MultiProcessServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve_multiprocess(
    service_factory,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    procs: int = 2,
    workers: int = 32,
    admission_queue_depth: int | None = None,
    max_body_bytes: int | None = None,
    body_read_timeout_s: float | None = None,
) -> None:
    """Serve forever across ``procs`` processes (blocking); Ctrl-C stops."""
    front = MultiProcessServer(
        service_factory,
        host,
        port,
        procs=procs,
        workers=workers,
        verbose=True,
        admission_queue_depth=admission_queue_depth,
        max_body_bytes=max_body_bytes,
        body_read_timeout_s=body_read_timeout_s,
    )
    front.start()
    print(
        f"serving join discovery on http://{front.host}:{front.port} "
        f"across {procs} process(es)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        front.shutdown()
