"""Typed request/response surface of the :class:`DiscoveryService`.

Everything a serving boundary needs: an immutable :class:`SearchRequest`,
a :class:`SearchResponse` mirroring the library's
:class:`~repro.core.candidates.DiscoveryResult`, an :class:`IndexStats`
snapshot, and the :class:`ServiceError` envelope the HTTP layer returns on
failure.  Every type round-trips through plain dicts (``to_dict`` /
``from_dict``) so the JSON-over-HTTP server never touches internal
objects directly.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.errors import DiscoveryError
from repro.storage.schema import ColumnRef

__all__ = ["IndexStats", "SearchRequest", "SearchResponse", "ServiceError"]


class ServiceError(DiscoveryError):
    """Service-boundary failure with a stable machine-readable code.

    ``code`` is one of ``bad_request`` / ``not_found`` / ``not_indexed`` /
    ``timeout`` / ``payload_too_large`` / ``internal`` / ``overloaded`` /
    ``deadline_exceeded``; ``status`` is the matching HTTP status.
    ``to_dict`` renders the wire envelope
    ``{"error": {"code": ..., "message": ...}}``.  ``retry_after_s`` is
    non-``None`` only for retryable overload rejections, where the HTTP
    layer surfaces it as a ``Retry-After`` header.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        status: int = 400,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status
        self.retry_after_s = retry_after_s

    @classmethod
    def bad_request(cls, message: str) -> "ServiceError":
        """Malformed or invalid request payload (HTTP 400)."""
        return cls("bad_request", message, status=400)

    @classmethod
    def not_found(cls, message: str) -> "ServiceError":
        """Unknown database, table, column, or route (HTTP 404)."""
        return cls("not_found", message, status=404)

    @classmethod
    def not_indexed(cls, message: str) -> "ServiceError":
        """The service has no searchable index yet (HTTP 409)."""
        return cls("not_indexed", message, status=409)

    @classmethod
    def timeout(cls, message: str) -> "ServiceError":
        """The client fed the request too slowly (HTTP 408)."""
        return cls("timeout", message, status=408)

    @classmethod
    def payload_too_large(cls, message: str) -> "ServiceError":
        """Declared request body exceeds the server's cap (HTTP 413)."""
        return cls("payload_too_large", message, status=413)

    @classmethod
    def internal(cls, message: str) -> "ServiceError":
        """Unexpected server-side failure (HTTP 500)."""
        return cls("internal", message, status=500)

    @classmethod
    def overloaded(
        cls, message: str, *, retry_after_s: float = 1.0
    ) -> "ServiceError":
        """Admission control shed this request (HTTP 503, retryable)."""
        return cls("overloaded", message, status=503, retry_after_s=retry_after_s)

    @classmethod
    def deadline_exceeded(cls, message: str) -> "ServiceError":
        """The request's deadline expired before completion (HTTP 504)."""
        return cls("deadline_exceeded", message, status=504)

    def to_dict(self) -> dict[str, object]:
        """The wire envelope."""
        return {"error": {"code": self.code, "message": str(self)}}


def _parse_ref(value: object) -> ColumnRef:
    """Coerce a wire value (string or ref) into a :class:`ColumnRef`."""
    if isinstance(value, ColumnRef):
        return value
    if isinstance(value, str) and value:
        try:
            return ColumnRef.parse(value)
        except Exception as error:
            raise ServiceError.bad_request(
                f"cannot parse query ref {value!r}: {error}"
            ) from error
    raise ServiceError.bad_request(
        f"query must be a 'db.table.column' string or ColumnRef, got {value!r}"
    )


@dataclass(frozen=True)
class SearchRequest:
    """One top-k join-discovery request.

    ``query`` accepts a :class:`ColumnRef` or a ``"db.table.column"``
    string, normalized at construction (``"table.column"`` also works when
    the serving warehouse holds exactly one database); ``k`` and
    ``threshold`` fall back to the service configuration when ``None``.
    ``deadline_ms`` is this request's total time budget — when it expires
    before the probe runs, the service answers ``deadline_exceeded``
    (HTTP 504) instead of doing doomed work; ``None`` falls back to the
    service configuration's ``default_deadline_ms`` (0 = no deadline).
    """

    query: ColumnRef
    k: int | None = None
    threshold: float | None = None
    deadline_ms: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "query", _parse_ref(self.query))
        if self.k is not None and self.k <= 0:
            raise ServiceError.bad_request(f"k must be positive, got {self.k}")
        if self.threshold is not None and not -1.0 <= self.threshold <= 1.0:
            raise ServiceError.bad_request(
                f"threshold must be in [-1, 1], got {self.threshold}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ServiceError.bad_request(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SearchRequest":
        """Build a request from a decoded JSON body."""
        if not isinstance(payload, Mapping):
            raise ServiceError.bad_request("request body must be a JSON object")
        unknown = set(payload) - {"query", "k", "threshold", "deadline_ms"}
        if unknown:
            raise ServiceError.bad_request(
                f"unknown request fields: {sorted(unknown)}"
            )
        k = payload.get("k")
        if k is not None and (isinstance(k, bool) or not isinstance(k, int)):
            raise ServiceError.bad_request(f"k must be an integer, got {k!r}")
        threshold = payload.get("threshold")
        if threshold is not None and (
            isinstance(threshold, bool) or not isinstance(threshold, (int, float))
        ):
            raise ServiceError.bad_request(
                f"threshold must be a number, got {threshold!r}"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int)
        ):
            raise ServiceError.bad_request(
                f"deadline_ms must be an integer, got {deadline_ms!r}"
            )
        return cls(
            query=payload.get("query"),
            k=k,
            threshold=float(threshold) if threshold is not None else None,
            deadline_ms=deadline_ms,
        )

    def to_dict(self) -> dict[str, object]:
        """The wire form of this request."""
        payload: dict[str, object] = {"query": str(self.query)}
        if self.k is not None:
            payload["k"] = self.k
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload


@dataclass
class SearchResponse:
    """Ranked candidates for one request, with the timing breakdown."""

    query: ColumnRef | None
    candidates: list[JoinCandidate] = field(default_factory=list)
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)

    @classmethod
    def from_result(cls, result: DiscoveryResult) -> "SearchResponse":
        """Wrap a core :class:`DiscoveryResult` unchanged."""
        return cls(
            query=result.query, candidates=result.candidates, timing=result.timing
        )

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self) -> Iterator[JoinCandidate]:
        return iter(self.candidates)

    @property
    def refs(self) -> list[ColumnRef]:
        """Candidate refs in rank order."""
        return [candidate.ref for candidate in self.candidates]

    def describe(self) -> str:
        """Human-readable multi-line summary (same shape as the core result)."""
        return DiscoveryResult(
            query=self.query, candidates=self.candidates, timing=self.timing
        ).describe()

    def to_dict(self) -> dict[str, object]:
        """The wire form: query, ranked candidates, timing in seconds."""
        return {
            "query": str(self.query) if self.query is not None else None,
            "candidates": [
                {
                    "database": candidate.ref.database,
                    "table": candidate.ref.table,
                    "column": candidate.ref.column,
                    "ref": str(candidate.ref),
                    "score": candidate.score,
                }
                for candidate in self.candidates
            ],
            "timing": {
                "load_s": self.timing.load_s,
                "embed_s": self.timing.embed_s,
                "lookup_s": self.timing.lookup_s,
                "response_time_s": self.timing.response_time_s,
            },
        }


@dataclass(frozen=True)
class IndexStats:
    """A point-in-time snapshot of the service's index and traffic.

    ``caches`` reports embedding-pipeline cache effectiveness: the
    column-level :class:`~repro.core.profiles.EmbeddingCache` (when the
    engine has one) plus the encoder's value-tokenization and shared
    token-vector caches, each as ``{size, hits, misses, hit_rate}``.
    """

    backend: str
    dim: int
    threshold: float
    indexed_columns: int
    tables: int
    databases: int
    searches: int
    mutations: int
    caches: dict[str, object] = field(default_factory=dict)
    shards: int = 1
    quantized: bool = False
    graph: dict[str, object] | None = None
    #: Shard worker processes behind the query fan-out (0 = in-process).
    workers: int = 0
    #: Durable-store counters (``None`` when the service is in-memory only).
    durability: dict[str, object] | None = None
    #: Degraded-mode snapshot (tier, recent sheds, effective rerank) —
    #: ``None`` only for stats built by pre-degradation callers.
    degradation: dict[str, object] | None = None
    #: Deadline-expiry counters for the serving path.
    deadlines: dict[str, object] | None = None

    def to_dict(self) -> dict[str, object]:
        """The wire form of this snapshot."""
        payload: dict[str, object] = {
            "backend": self.backend,
            "dim": self.dim,
            "threshold": self.threshold,
            "indexed_columns": self.indexed_columns,
            "tables": self.tables,
            "databases": self.databases,
            "searches": self.searches,
            "mutations": self.mutations,
            "caches": dict(self.caches),
            "shards": self.shards,
            "quantized": self.quantized,
            "workers": self.workers,
        }
        if self.graph is not None:
            payload["graph"] = dict(self.graph)
        if self.durability is not None:
            payload["durability"] = dict(self.durability)
        if self.degradation is not None:
            payload["degradation"] = dict(self.degradation)
        if self.deadlines is not None:
            payload["deadlines"] = dict(self.deadlines)
        return payload
