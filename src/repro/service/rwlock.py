"""A writer-preferring read-write lock for the serving layer.

Searches only read index state and may run concurrently; incremental
mutations (add/drop/refresh) rewrite bucket postings and cached matrices
and must be exclusive.  A plain ``threading.Lock`` would serialize the hot
read path, so the service uses the classic condition-variable RW lock:
any number of readers *or* one writer, with waiting writers blocking new
readers so a steady query stream cannot starve mutations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writer preference."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter as reader."""
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the reader section, waking writers when the last one exits."""
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is completely free, then enter as writer."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave the writer section and wake all waiters."""
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def read(self):
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
