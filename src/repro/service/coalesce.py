"""Request coalescing: concurrent searches become index micro-batches.

The index layer is fastest when probed in blocks — one
``(q × dim) @ (dim × n)`` GEMM amortizes BLAS dispatch, thresholding, and
candidate verification across a whole query block (see
``ColumnarIndex.search_batch``) — but HTTP traffic arrives as single
requests on concurrent connections, which is exactly when that machinery
sat idle.  :class:`QueryCoalescer` closes the gap: requests in flight at
the same moment are collected into micro-batches (bounded by
``max_batch``, with a short ``max_wait_us`` fill window) and executed
through one batched callable; each caller blocks only for its own result.

The design is leader/follower with a sparse-traffic fast path:

* **fast path** — a request arriving at an **idle** coalescer executes
  immediately and alone, paying *zero* added latency: no queue entry, no
  wait window, no batching machinery.  Sparse traffic therefore behaves
  exactly like the uncoalesced path, and the fast-path thread returns
  its own result the moment it is computed — it never stays behind to
  serve anyone else's.
* **followers** — while any execution is in flight, later arrivals
  queue, each with its own pending slot, and wait.
* **leader election** — whenever the in-flight execution finishes, the
  waiting followers are woken; one finds the queue unowned, claims it,
  waits up to ``max_wait_us`` for the batch to fill (woken early at
  ``max_batch``), snaps one FIFO batch off the queue head, executes it,
  and resolves each entry (per-request error isolation: one bad query
  never fails its batchmates).  It then releases ownership — waking the
  next leader if the queue is still non-empty — and returns its own
  result once resolved.  FIFO batching bounds every request's wait by
  its arrival position, so later traffic can never starve it.

Under load the system self-clocks: while one batch executes, the next
accumulates, so batch size tracks instantaneous concurrency without any
tuning — the wait window only matters in the lull between the two
regimes.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import DeadlineExceededError

__all__ = ["QueryCoalescer"]

#: Marker for the urgent path: a request whose remaining deadline budget
#: is below the batching wait window executes alone instead of queueing.
_URGENT = object()


class _Pending:
    """One queued request awaiting its batch's execution.

    Resolution (``done`` + result/error) is written under the
    coalescer's condition lock and announced via ``notify_all``.
    """

    __slots__ = ("request", "done", "result", "error")

    def __init__(self, request: object) -> None:
        self.request = request
        self.done = False
        self.result: object | None = None
        self.error: BaseException | None = None


class QueryCoalescer:
    """Batch concurrent in-flight requests through one batched executor.

    Parameters
    ----------
    execute:
        ``execute(requests) -> outcomes``: runs a batch and returns one
        outcome per request *in order* — either a result object or an
        exception instance to raise to that caller (per-request error
        isolation).  Called from whichever caller thread leads a batch;
        must be thread-safe.
    execute_one:
        Optional ``execute_one(request) -> result`` used by the fast
        path (a request arriving at an idle coalescer).  Letting the
        owner supply its plain single-request path keeps fast-path cost
        *identical* to the uncoalesced path — no batch plumbing at all;
        exceptions propagate to the caller directly.  Defaults to
        ``execute([request])``.
    max_batch:
        Upper bound on requests per executed batch.
    max_wait_us:
        Fill window in microseconds: how long a leader with a non-full
        batch waits for stragglers before executing.  Never paid on the
        fast path, so it bounds *added* latency under load only.
    deadline_of:
        Optional ``deadline_of(request) -> float | None`` returning the
        request's absolute ``time.monotonic`` deadline.  With it set,
        the coalescer enforces deadlines at its boundaries: an already-
        expired submission raises :class:`DeadlineExceededError` without
        executing anything, a request whose remaining budget is below
        the ``max_wait_us`` window takes the **urgent** path (executes
        alone immediately — joining a batch could expire it in queue),
        and an entry that expires *while queued* is resolved with the
        deadline error at batch-snap time, never reaching the executor's
        GEMM path.
    """

    def __init__(
        self,
        execute,
        *,
        execute_one=None,
        max_batch: int = 32,
        max_wait_us: int = 500,
        deadline_of=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self._execute = execute
        self._execute_one = execute_one
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self._deadline_of = deadline_of
        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()
        # True while some thread owns execution: a fast-path request is
        # running, or an elected leader is filling/executing a batch.
        self._draining = False
        # Traffic counters (all mutated under the condition lock).
        self._requests = 0
        self._fastpath = 0
        self._urgent = 0
        self._expired = 0
        self._batches = 0
        self._coalesced = 0
        self._histogram: dict[int, int] = {}

    def __repr__(self) -> str:
        return (
            f"QueryCoalescer(max_batch={self.max_batch}, "
            f"max_wait_us={self.max_wait_us}, requests={self._requests}, "
            f"fastpath={self._fastpath}, batches={self._batches})"
        )

    # -- submission ---------------------------------------------------------------

    def submit(self, request: object) -> object:
        """Execute ``request``, possibly coalesced with concurrent ones.

        Blocks until this request's result is available; raises this
        request's error when the executor reports one.  Results are
        identical to executing the request alone — batching changes
        scheduling, never semantics.
        """
        deadline = (
            self._deadline_of(request) if self._deadline_of is not None else None
        )
        if deadline is not None:
            overrun = time.monotonic() - deadline
            if overrun >= 0:
                raise DeadlineExceededError(overrun_s=overrun)
        with self._cond:
            self._requests += 1
            if not self._draining and not self._queue:
                # Idle coalescer: run alone, right now.  _draining makes
                # concurrent arrivals queue; ownership is released (and a
                # leader elected among them) the moment we finish.
                self._draining = True
                self._fastpath += 1
                entry = None
            elif (
                deadline is not None
                and deadline - time.monotonic() <= self.max_wait_us / 1e6
            ):
                # Remaining budget is below the batching wait window:
                # queueing would likely expire this request, so it runs
                # alone, concurrently with whatever batch is in flight
                # (the executor's probe path is shared-lock safe).
                self._urgent += 1
                entry = _URGENT
            else:
                entry = _Pending(request)
                self._queue.append(entry)
                if len(self._queue) >= self.max_batch:
                    self._cond.notify_all()  # wake a filling leader early
        if entry is None:
            try:
                if self._execute_one is not None:
                    return self._execute_one(request)
                outcomes = self._execute([request])
                return self._unwrap(outcomes, 0)
            finally:
                self._release()
        if entry is _URGENT:
            # No ownership taken, so nothing to release.
            if self._execute_one is not None:
                return self._execute_one(request)
            return self._unwrap(self._execute([request]), 0)
        # Follower: wait until resolved, claiming leadership whenever
        # execution is unowned while our entry is still pending.
        while True:
            with self._cond:
                while not entry.done and self._draining:
                    self._cond.wait()
                if entry.done:
                    break
                self._draining = True
                batch = self._fill_batch_locked()
            try:
                self._run_batch(batch)
            finally:
                self._release()
        if entry.error is not None:
            raise entry.error
        return entry.result

    @staticmethod
    def _unwrap(outcomes: list, position: int) -> object:
        outcome = outcomes[position]
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def _release(self) -> None:
        """Hand ownership back and wake waiters (followers + next leader)."""
        with self._cond:
            self._draining = False
            self._cond.notify_all()

    # -- batch execution ----------------------------------------------------------

    def _fill_batch_locked(self) -> list[_Pending]:
        """Wait out the fill window, then snap one FIFO batch off the head.

        Caller holds the condition lock and owns ``_draining``.
        """
        if self.max_wait_us and len(self._queue) < self.max_batch:
            deadline = time.monotonic() + self.max_wait_us / 1e6
            while len(self._queue) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        count = min(len(self._queue), self.max_batch)
        batch = [self._queue.popleft() for _ in range(count)]
        if self._deadline_of is not None:
            # Entries that expired while queued are answered right here
            # with the deadline error — they never reach the executor,
            # so a doomed request costs the GEMM path nothing.
            now = time.monotonic()
            live: list[_Pending] = []
            expired = 0
            for entry in batch:
                entry_deadline = self._deadline_of(entry.request)
                if entry_deadline is not None and now >= entry_deadline:
                    entry.error = DeadlineExceededError(
                        overrun_s=now - entry_deadline
                    )
                    entry.done = True
                    expired += 1
                else:
                    live.append(entry)
            if expired:
                self._expired += expired
                self._cond.notify_all()  # wake the expired waiters now
            batch = live
        if batch:
            self._batches += 1
            self._coalesced += len(batch)
            self._histogram[len(batch)] = self._histogram.get(len(batch), 0) + 1
        return batch

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Execute one batch and resolve every entry (never raises)."""
        if not batch:
            return  # every snapped entry expired in queue
        try:
            outcomes = self._execute([entry.request for entry in batch])
            if len(outcomes) != len(batch):
                raise RuntimeError(
                    f"coalesce executor returned {len(outcomes)} outcomes "
                    f"for {len(batch)} requests"
                )
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            outcomes = [error] * len(batch)
        with self._cond:
            for entry, outcome in zip(batch, outcomes):
                if isinstance(outcome, BaseException):
                    entry.error = outcome
                else:
                    entry.result = outcome
                entry.done = True
            self._cond.notify_all()

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Machine-readable traffic snapshot (``/stats``, bench report).

        ``batch_histogram`` maps executed batch size → count (fast-path
        executions are counted separately — they never enter a batch).
        """
        with self._cond:
            mean = self._coalesced / self._batches if self._batches else 0.0
            return {
                "requests": self._requests,
                "fastpath": self._fastpath,
                "urgent": self._urgent,
                "expired": self._expired,
                "batches": self._batches,
                "coalesced_requests": self._coalesced,
                "mean_batch": round(mean, 2),
                "max_batch": self.max_batch,
                "max_wait_us": self.max_wait_us,
                "batch_histogram": {
                    str(size): count
                    for size, count in sorted(self._histogram.items())
                },
            }
