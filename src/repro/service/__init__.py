"""Serving layer: the recommended entry point for applications.

:class:`DiscoveryService` wraps the library core
(:class:`~repro.core.warpgate.WarpGate`) with what a deployed
join-discovery system needs: a typed request/response boundary,
incremental index mutation (``add_table`` / ``drop_table`` /
``refresh_column`` without a full re-index), batch search, a
writer-preferring RW lock for safe concurrent access, and a
dependency-free JSON-over-HTTP server (``python -m repro serve``).
"""

from repro.service.coalesce import QueryCoalescer
from repro.service.discovery import DiscoveryService
from repro.service.mpserve import MultiProcessServer, serve_multiprocess
from repro.service.qcache import QueryResultCache
from repro.service.rwlock import ReadWriteLock
from repro.service.server import DiscoveryHTTPServer, make_server, serve
from repro.service.types import IndexStats, SearchRequest, SearchResponse, ServiceError

__all__ = [
    "DiscoveryHTTPServer",
    "DiscoveryService",
    "IndexStats",
    "MultiProcessServer",
    "QueryCoalescer",
    "QueryResultCache",
    "ReadWriteLock",
    "SearchRequest",
    "SearchResponse",
    "ServiceError",
    "make_server",
    "serve",
    "serve_multiprocess",
]
