"""JSON-over-HTTP serving layer: ``python -m repro serve``.

A dependency-free (stdlib ``http.server``) front end for
:class:`~repro.service.discovery.DiscoveryService`.  Threaded: each
request runs on its own thread, and the service's RW lock keeps
concurrent searches and index mutations safe.

Routes
------
``GET  /healthz``        liveness + indexed column count
``GET  /stats``          :class:`IndexStats` snapshot
``POST /search``         one :class:`SearchRequest` body
``POST /search/batch``   ``{"requests": [...]}``, amortized
``POST /index/add``      ``{"database": ..., "table": {"name": ..., "columns": [...]}}``
``POST /index/drop``     ``{"database": ..., "table": ...}``
``POST /index/refresh``  ``{"ref": "db.table.column"}``

Failures return the :class:`ServiceError` envelope
``{"error": {"code": ..., "message": ...}}`` with a matching HTTP status.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError
from repro.service.discovery import DiscoveryService
from repro.service.types import SearchRequest, ServiceError
from repro.storage.column import Column
from repro.storage.table import Table

__all__ = ["DiscoveryHTTPServer", "make_server", "serve"]

_MAX_BODY_BYTES = 64 * 1024 * 1024
# A batch embeds under the scan mutex and probes under the shared read
# lock; capping its size bounds how long one request can occupy both.
_MAX_BATCH_REQUESTS = 256


def _table_from_payload(payload: object) -> Table:
    """Build a :class:`Table` from the ``/index/add`` wire format."""
    if not isinstance(payload, dict):
        raise ServiceError.bad_request("'table' must be a JSON object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ServiceError.bad_request("'table.name' must be a non-empty string")
    columns_payload = payload.get("columns")
    if not isinstance(columns_payload, list) or not columns_payload:
        raise ServiceError.bad_request("'table.columns' must be a non-empty list")
    columns = []
    for entry in columns_payload:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise ServiceError.bad_request(
                "each column must be {'name': str, 'values': list}"
            )
        values = entry.get("values")
        if not isinstance(values, list):
            raise ServiceError.bad_request(
                f"column {entry['name']!r} needs a 'values' list"
            )
        columns.append(Column(entry["name"], values))
    try:
        return Table(name, columns)
    except ReproError as error:
        raise ServiceError.bad_request(str(error)) from error


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`DiscoveryService`."""

    server: "DiscoveryHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, error: ServiceError) -> None:
        # An error can be sent before the request body was read (e.g. an
        # unknown route); under keep-alive the unread bytes would then be
        # parsed as the next request line, so drop the connection.
        self.close_connection = True
        self._send_json(error.status, error.to_dict())

    def _read_json(self) -> dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError as error:
            raise ServiceError.bad_request(
                "Content-Length header must be an integer"
            ) from error
        if length <= 0:
            raise ServiceError.bad_request("request body required")
        if length > _MAX_BODY_BYTES:
            raise ServiceError.bad_request(
                f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError.bad_request(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise ServiceError.bad_request("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceError as error:
            self._send_error_envelope(error)
        except ReproError as error:
            self._send_error_envelope(ServiceError.bad_request(str(error)))
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_envelope(ServiceError.internal(str(error)))
        else:
            self._send_json(status, payload)

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/healthz": self._route_healthz,
            "/stats": self._route_stats,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_envelope(
                ServiceError.not_found(f"no route GET {self.path}")
            )
            return
        self._dispatch(handler)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/search": self._route_search,
            "/search/batch": self._route_search_batch,
            "/index/add": self._route_index_add,
            "/index/drop": self._route_index_drop,
            "/index/refresh": self._route_index_refresh,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_envelope(
                ServiceError.not_found(f"no route POST {self.path}")
            )
            return
        self._dispatch(handler)

    def _route_healthz(self) -> tuple[int, dict[str, object]]:
        service = self.server.service
        return 200, {
            "status": "ok",
            "indexed": service.is_indexed,
            "indexed_columns": service.engine.indexed_count,
        }

    def _route_stats(self) -> tuple[int, dict[str, object]]:
        return 200, self.server.service.stats().to_dict()

    def _route_search(self) -> tuple[int, dict[str, object]]:
        request = SearchRequest.from_dict(self._read_json())
        response = self.server.service.search(request)
        return 200, response.to_dict()

    def _route_search_batch(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        requests_payload = payload.get("requests")
        if not isinstance(requests_payload, list):
            raise ServiceError.bad_request("'requests' must be a list")
        if len(requests_payload) > _MAX_BATCH_REQUESTS:
            raise ServiceError.bad_request(
                f"batch exceeds {_MAX_BATCH_REQUESTS} requests; split it"
            )
        requests = [SearchRequest.from_dict(entry) for entry in requests_payload]
        responses = self.server.service.search_many(requests)
        return 200, {"responses": [response.to_dict() for response in responses]}

    def _route_index_add(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        database = payload.get("database")
        if not isinstance(database, str) or not database:
            raise ServiceError.bad_request("'database' must be a non-empty string")
        table = _table_from_payload(payload.get("table"))
        stats = self.server.service.add_table(database, table)
        return 200, stats.to_dict()

    def _route_index_drop(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        database = payload.get("database")
        table = payload.get("table")
        if not isinstance(database, str) or not isinstance(table, str):
            raise ServiceError.bad_request("'database' and 'table' must be strings")
        stats = self.server.service.drop_table(database, table)
        return 200, stats.to_dict()

    def _route_index_refresh(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        ref = payload.get("ref")
        if not isinstance(ref, str) or not ref:
            raise ServiceError.bad_request("'ref' must be a 'db.table.column' string")
        stats = self.server.service.refresh_column(ref)
        return 200, stats.to_dict()


class DiscoveryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`DiscoveryService`."""

    daemon_threads = True
    # The socketserver default backlog (5) drops connections under bursts
    # of concurrent clients; the service is built for exactly that load.
    request_queue_size = 64

    def __init__(
        self,
        address: tuple[str, int],
        service: DiscoveryService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: DiscoveryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> DiscoveryHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return DiscoveryHTTPServer((host, port), service, verbose=verbose)


def serve(
    service: DiscoveryService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Serve forever (blocking); Ctrl-C shuts down cleanly."""
    server = make_server(service, host, port, verbose=True)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving join discovery on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
