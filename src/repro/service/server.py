"""JSON-over-HTTP serving layer: ``python -m repro serve``.

A dependency-free (stdlib ``http.server``) front end for
:class:`~repro.service.discovery.DiscoveryService`, built for sustained
concurrent traffic rather than thread-per-request churn:

* a **fixed worker pool** accepts connections from a bounded hand-off
  queue — no thread is ever spawned per request, and load beyond the
  pool waits in the listen backlog instead of fork-bombing the process;
* connections are **persistent** (HTTP/1.1 keep-alive): a client issues
  any number of requests over one socket, with an idle timeout so a
  silent connection returns its worker to the pool;
* ``POST /search`` routes through the service's request coalescer
  (:meth:`DiscoveryService.search_coalesced`), so single-query requests
  from concurrent connections execute as batched index probes;
* ``shutdown()`` is **clean and complete**: the accept loop stops, every
  worker is unblocked and joined, and in-flight sockets close — no
  daemon-thread leaks across tests.  The server is a context manager
  (``with make_server(...) as server:``) that starts serving on enter
  and tears all of that down on exit.

Routes
------
``GET  /healthz``        liveness; lock-free, never blocked by writers
``GET  /readyz``         readiness; 503 until indexed / while critical-degraded
``GET  /stats``          :class:`IndexStats` snapshot (+ admission counters)
``GET  /graph/stats``    join-graph counters (forces a graph sync)
``POST /search``         one :class:`SearchRequest` body (coalesced)
``POST /paths``          ``{"src": "db.t", "dst": "db.u", "max_hops": 3}``
``POST /search/batch``   ``{"requests": [...]}``, amortized
``POST /index/add``      ``{"database": ..., "table": {"name": ..., "columns": [...]}}``
``POST /index/drop``     ``{"database": ..., "table": ...}``
``POST /index/refresh``  ``{"ref": "db.table.column"}``

Failures return the :class:`ServiceError` envelope
``{"error": {"code": ..., "message": ...}}`` with a matching HTTP status.

Overload protection (see DESIGN.md "Overload protection & graceful
degradation"): accepted connections enter a **bounded admission queue**;
when it is full the connection is *shed* — a sub-millisecond ``503`` +
``Retry-After`` written straight from the accept path, never a silent
block — except health/readiness probes, which are recognized by peeking
the request line and answered inline even at saturation.  Per-request
work is bounded by the ``X-Deadline-Ms`` deadline (HTTP ``504`` on
expiry), a ``Content-Length`` cap (``413``), and an absolute body-read
budget (``408`` against slow-drip clients).
"""

from __future__ import annotations

import json
import math
import queue
import socket
import sys
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer

from repro.errors import ReproError
from repro.service.discovery import DiscoveryService
from repro.service.types import SearchRequest, ServiceError
from repro.storage.column import Column
from repro.storage.table import Table

__all__ = [
    "DiscoveryHTTPServer",
    "ThreadPerRequestHTTPServer",
    "make_server",
    "serve",
]

_MAX_BODY_BYTES = 64 * 1024 * 1024
# A batch embeds under the scan mutex and probes under the shared read
# lock; capping its size bounds how long one request can occupy both.
_MAX_BATCH_REQUESTS = 256
# Total wall-clock budget for reading one request body: a client may
# drip bytes, but never stretch a single read past this (slowloris).
_BODY_READ_TIMEOUT_S = 10.0
# Retry-After advertised on shed responses.
_SHED_RETRY_AFTER_S = 1.0


def _table_from_payload(payload: object) -> Table:
    """Build a :class:`Table` from the ``/index/add`` wire format."""
    if not isinstance(payload, dict):
        raise ServiceError.bad_request("'table' must be a JSON object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ServiceError.bad_request("'table.name' must be a non-empty string")
    columns_payload = payload.get("columns")
    if not isinstance(columns_payload, list) or not columns_payload:
        raise ServiceError.bad_request("'table.columns' must be a non-empty list")
    columns = []
    for entry in columns_payload:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise ServiceError.bad_request(
                "each column must be {'name': str, 'values': list}"
            )
        values = entry.get("values")
        if not isinstance(values, list):
            raise ServiceError.bad_request(
                f"column {entry['name']!r} needs a 'values' list"
            )
        columns.append(Column(entry["name"], values))
    try:
        return Table(name, columns)
    except ReproError as error:
        raise ServiceError.bad_request(str(error)) from error


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`DiscoveryService`."""

    server: "DiscoveryHTTPServer"
    protocol_version = "HTTP/1.1"
    # Responses are written as separate header/body segments; with Nagle
    # on, those interact with the client's delayed ACK into ~40ms stalls
    # per keep-alive round trip.  Serving sockets are latency-bound, not
    # throughput-bound, so TCP_NODELAY is the right default.
    disable_nagle_algorithm = True

    # -- plumbing ---------------------------------------------------------------

    def setup(self) -> None:
        # Idle keep-alive connections time out so they hand their pool
        # worker back instead of pinning it forever; handle_one_request
        # treats the timeout as an orderly connection close.
        self.timeout = self.server.keepalive_idle_s
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: dict[str, object],
        *,
        retry_after_s: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, error: ServiceError) -> None:
        # An error can be sent before the request body was read (e.g. an
        # unknown route); under keep-alive the unread bytes would then be
        # parsed as the next request line, so drop the connection.
        self.close_connection = True
        self._send_json(
            error.status, error.to_dict(), retry_after_s=error.retry_after_s
        )

    def send_error(self, code: int, message=None, explain=None) -> None:  # noqa: ARG002
        """Protocol-level failures speak the routes' JSON envelope.

        ``http.server`` calls this for malformed request lines, oversized
        headers, unsupported methods/versions — every path a garbage-byte
        client can reach before routing.  The stock implementation emits
        an HTML page (and, for a pre-parse failure, no status line at
        all); clients of a JSON API deserve the same envelope and a
        defined connection state everywhere, so this closes and answers
        in JSON.
        """
        self.close_connection = True
        # A pre-parse failure leaves request_version at HTTP/0.9, which
        # would suppress the status line entirely; the response we write
        # is self-contained, so pin the version we actually speak.
        self.request_version = "HTTP/1.1"
        codes = {
            400: "bad_request",
            404: "not_found",
            408: "timeout",
            413: "payload_too_large",
            414: "bad_request",
            501: "bad_request",
            505: "bad_request",
        }
        default = "internal" if code >= 500 else "bad_request"
        detail = message or self.responses.get(code, (f"HTTP {code}",))[0]
        try:
            self._send_json(
                code,
                {"error": {"code": codes.get(code, default), "message": detail}},
            )
        except OSError:
            pass  # client already gone; nothing to tell it

    def _read_body(self, length: int) -> bytes:
        """Read exactly ``length`` body bytes under an absolute time budget.

        The per-read socket timeout alone cannot stop a slow-drip client
        (each dripped byte resets it), so the read loop checks a wall
        deadline between chunks and never waits in one ``recv`` longer
        than the remaining budget.
        """
        deadline = time.monotonic() + self.server.body_read_timeout_s
        chunks: list[bytes] = []
        remaining = length
        sock = self.connection
        original_timeout = sock.gettimeout()
        try:
            while remaining > 0:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise ServiceError.timeout(
                        "request body arrived too slowly; "
                        f"budget is {self.server.body_read_timeout_s:.1f}s"
                    )
                sock.settimeout(min(1.0, budget))
                try:
                    # read1 = at most one recv: returns whatever arrived,
                    # so the deadline is re-checked per network delivery.
                    chunk = self.rfile.read1(min(remaining, 65536))
                except TimeoutError:
                    continue
                if not chunk:
                    raise ServiceError.bad_request(
                        "client closed the connection mid-body"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
        finally:
            sock.settimeout(original_timeout)
        return b"".join(chunks)

    def _read_json(self) -> dict[str, object]:
        raw = self.headers.get("Content-Length")
        try:
            length = int(raw if raw is not None else 0)
        except ValueError as error:
            raise ServiceError.bad_request(
                "Content-Length header must be an integer"
            ) from error
        if raw is not None and length < 0:
            raise ServiceError.bad_request(
                f"Content-Length must be non-negative, got {length}"
            )
        if length == 0:
            raise ServiceError.bad_request("request body required")
        if length > self.server.max_body_bytes:
            # Rejected on the *declared* size, before a single body byte
            # is read — an oversized upload costs the server nothing.
            raise ServiceError.payload_too_large(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte cap"
            )
        try:
            payload = json.loads(self._read_body(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError.bad_request(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise ServiceError.bad_request("request body must be a JSON object")
        return payload

    def _deadline_header_ms(self) -> int | None:
        """Parse the optional ``X-Deadline-Ms`` request header."""
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError as error:
            raise ServiceError.bad_request(
                "X-Deadline-Ms header must be an integer"
            ) from error
        if value <= 0:
            raise ServiceError.bad_request(
                f"X-Deadline-Ms must be positive, got {value}"
            )
        return value

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceError as error:
            self._send_error_envelope(error)
        except ReproError as error:
            self._send_error_envelope(ServiceError.bad_request(str(error)))
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_envelope(ServiceError.internal(str(error)))
        else:
            self._send_json(status, payload)

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/healthz": self._route_healthz,
            "/readyz": self._route_readyz,
            "/stats": self._route_stats,
            "/graph/stats": self._route_graph_stats,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_envelope(
                ServiceError.not_found(f"no route GET {self.path}")
            )
            return
        self._dispatch(handler)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/search": self._route_search,
            "/search/batch": self._route_search_batch,
            "/paths": self._route_paths,
            "/index/add": self._route_index_add,
            "/index/drop": self._route_index_drop,
            "/index/refresh": self._route_index_refresh,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_envelope(
                ServiceError.not_found(f"no route POST {self.path}")
            )
            return
        self._dispatch(handler)

    def _route_healthz(self) -> tuple[int, dict[str, object]]:
        # Deliberately lock-free: liveness probes must answer while a
        # writer holds the service's exclusive lock (long mutations,
        # compactions), so this reads only always-consistent scalars and
        # never calls stats() or search paths.
        service = self.server.service
        return 200, {
            "status": "ok",
            "indexed": service.is_indexed,
            "indexed_columns": service.engine.indexed_count,
        }

    def _route_readyz(self) -> tuple[int, dict[str, object]]:
        # Readiness, distinct from liveness: a live server is not ready
        # while it has nothing to serve (pre-open / durable recovery
        # still replaying) or while degraded-mode sits at its critical
        # tier — load balancers drain it; /healthz keeps it un-killed.
        # Same lock-free discipline as /healthz.
        ready, reason = self.server.service.readiness
        return (200 if ready else 503), {"ready": ready, "reason": reason}

    def _route_stats(self) -> tuple[int, dict[str, object]]:
        payload = self.server.service.stats().to_dict()
        admission = getattr(self.server, "admission_stats", None)
        if callable(admission):
            payload["admission"] = admission()
        return 200, payload

    def _route_graph_stats(self) -> tuple[int, dict[str, object]]:
        return 200, self.server.service.graph_stats()

    def _route_paths(self) -> tuple[int, dict[str, object]]:
        deadline_ms = self._deadline_header_ms()
        payload = self._read_json()
        src, dst = payload.get("src"), payload.get("dst")
        if not isinstance(src, str) or not isinstance(dst, str):
            raise ServiceError.bad_request("'src' and 'dst' must be 'db.table' strings")
        max_hops = payload.get("max_hops", 3)
        limit = payload.get("limit", 5)
        combiner = payload.get("combiner", "product")
        if not isinstance(max_hops, int) or isinstance(max_hops, bool):
            raise ServiceError.bad_request("'max_hops' must be an integer")
        if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
            raise ServiceError.bad_request("'limit' must be an integer or null")
        if not isinstance(combiner, str):
            raise ServiceError.bad_request("'combiner' must be a string")
        unknown = set(payload) - {"src", "dst", "max_hops", "limit", "combiner"}
        if unknown:
            raise ServiceError.bad_request(
                f"unknown field(s): {', '.join(sorted(unknown))}"
            )
        paths = self.server.service.find_paths(
            src,
            dst,
            max_hops=max_hops,
            limit=limit,
            combiner=combiner,
            deadline_ms=deadline_ms,
        )
        return 200, {
            "src": src,
            "dst": dst,
            "paths": [path.to_dict() for path in paths],
        }

    def _route_search(self) -> tuple[int, dict[str, object]]:
        deadline_ms = self._deadline_header_ms()
        request = SearchRequest.from_dict(self._read_json())
        if request.deadline_ms is None and deadline_ms is not None:
            # Body wins over header wins over the config default.
            request = replace(request, deadline_ms=deadline_ms)
        response = self.server.service.search_coalesced(request)
        return 200, response.to_dict()

    def _route_search_batch(self) -> tuple[int, dict[str, object]]:
        deadline_ms = self._deadline_header_ms()
        payload = self._read_json()
        requests_payload = payload.get("requests")
        if not isinstance(requests_payload, list):
            raise ServiceError.bad_request("'requests' must be a list")
        if len(requests_payload) > _MAX_BATCH_REQUESTS:
            raise ServiceError.bad_request(
                f"batch exceeds {_MAX_BATCH_REQUESTS} requests; split it"
            )
        requests = [SearchRequest.from_dict(entry) for entry in requests_payload]
        responses = self.server.service.search_many(requests, deadline_ms=deadline_ms)
        return 200, {"responses": [response.to_dict() for response in responses]}

    def _route_index_add(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        database = payload.get("database")
        if not isinstance(database, str) or not database:
            raise ServiceError.bad_request("'database' must be a non-empty string")
        table = _table_from_payload(payload.get("table"))
        stats = self.server.service.add_table(database, table)
        return 200, stats.to_dict()

    def _route_index_drop(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        database = payload.get("database")
        table = payload.get("table")
        if not isinstance(database, str) or not isinstance(table, str):
            raise ServiceError.bad_request("'database' and 'table' must be strings")
        stats = self.server.service.drop_table(database, table)
        return 200, stats.to_dict()

    def _route_index_refresh(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        ref = payload.get("ref")
        if not isinstance(ref, str) or not ref:
            raise ServiceError.bad_request("'ref' must be a 'db.table.column' string")
        stats = self.server.service.refresh_column(ref)
        return 200, stats.to_dict()


class DiscoveryHTTPServer(HTTPServer):
    """Worker-pool HTTP server bound to one :class:`DiscoveryService`.

    The accept loop (``serve_forever``, typically run by :meth:`start`)
    hands accepted sockets to a fixed pool of ``workers`` threads; each
    worker serves one persistent connection at a time (all of its
    keep-alive requests) and then takes the next.  Size the pool to the
    expected number of concurrent persistent connections — idle
    connections release their worker after ``keepalive_idle_s``.

    Lifecycle: ``start()`` → serve → ``shutdown()`` (joins the accept
    thread and every worker, closes in-flight and queued connections)
    → ``server_close()``.  Or simply::

        with make_server(service, port=0) as server:
            ...  # server is live here
        # fully torn down: no threads, no sockets
    """

    # The socketserver default backlog (5) drops connections under bursts
    # of concurrent clients; the service is built for exactly that load.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: DiscoveryService,
        *,
        verbose: bool = False,
        workers: int = 32,
        keepalive_idle_s: float = 5.0,
        reuse_port: bool = False,
        admission_queue_depth: int | None = None,
        max_body_bytes: int = _MAX_BODY_BYTES,
        body_read_timeout_s: float = _BODY_READ_TIMEOUT_S,
        shed_retry_after_s: float = _SHED_RETRY_AFTER_S,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if admission_queue_depth is not None and admission_queue_depth < 1:
            raise ValueError(
                f"admission_queue_depth must be >= 1, got {admission_queue_depth}"
            )
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if body_read_timeout_s <= 0:
            raise ValueError(
                f"body_read_timeout_s must be positive, got {body_read_timeout_s}"
            )
        # Must be set before super().__init__ binds the socket: the
        # SO_REUSEPORT flag lets N server processes share one listen
        # address, with the kernel load-balancing accepts across them
        # (the multi-process serving front, see repro.service.mpserve).
        self.allow_reuse_port = reuse_port
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.keepalive_idle_s = keepalive_idle_s
        self.max_body_bytes = max_body_bytes
        self.body_read_timeout_s = body_read_timeout_s
        self.shed_retry_after_s = shed_retry_after_s
        # Bounded admission queue: connections the pool has not picked up
        # yet.  When it is full the accept path *sheds* (fast 503 +
        # Retry-After, see _shed_connection) instead of blocking — the
        # overload answer is explicit and sub-millisecond, never a
        # client-invisible stall.
        self._connections: queue.Queue = queue.Queue(
            maxsize=(
                admission_queue_depth
                if admission_queue_depth is not None
                else 2 * workers
            )
        )
        self._active_lock = threading.Lock()
        self._active: set[socket.socket] = set()
        self._closed = False
        self._serving = threading.Event()
        self._serve_thread: threading.Thread | None = None
        # Admission/containment telemetry (shared with the accept path).
        self._admission_lock = threading.Lock()
        self._admitted = 0
        self._sheds = 0
        self._health_inline = 0
        self._connection_errors = 0
        self._queue_wait_total_s = 0.0
        self._queue_wait_max_s = 0.0
        # Workers spawn lazily on the first serve_forever() call — the
        # constructor (and make_server) only *binds*, per its contract.
        self._n_workers = workers
        self._workers: list[threading.Thread] = []

    # -- worker pool --------------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Spawn the fixed pool once serving actually begins (idempotent).

        Threads are started while the lock is held, so any worker a
        concurrent :meth:`shutdown` can observe in ``_workers`` is
        already joinable.
        """
        with self._active_lock:
            if self._workers or self._closed:
                return
            for index in range(self._n_workers):
                worker = threading.Thread(
                    target=self._worker, name=f"http-worker-{index}", daemon=True
                )
                worker.start()
                self._workers.append(worker)

    def process_request(self, request, client_address) -> None:
        """Admit an accepted connection or shed it (called by serve_forever).

        Admission control: the hand-off queue is bounded, and a full
        queue means the pool is saturated *and* a backlog of admitted
        connections is already waiting.  Queueing deeper would only
        manufacture doomed work, so the connection is answered ``503 +
        Retry-After`` right here on the accept thread — a fast fail the
        client can act on, instead of the silent open-ended stall this
        method used to be.  Health and readiness probes are recognized
        (request-line peek) and answered inline even while shedding.
        """
        if self._closed:
            self.shutdown_request(request)
            return
        try:
            self._connections.put_nowait((request, client_address, time.monotonic()))
        except queue.Full:
            self._shed_connection(request)

    def _shed_connection(self, request) -> None:
        """Answer a connection the admission queue rejected, then close it.

        Never touches the service's lock/GEMM paths: sheds must stay
        cheap precisely when the service is busiest.  The one exception
        is lock-free health state — ``/healthz`` and ``/readyz`` are
        always admitted (answered inline), so probes keep working while
        the service is saturated.
        """
        try:
            path = self._peek_health_path(request)
            if path == "/healthz":
                service = self.service
                payload: dict[str, object] = {
                    "status": "ok",
                    "indexed": service.is_indexed,
                    "indexed_columns": service.engine.indexed_count,
                }
                with self._admission_lock:
                    self._health_inline += 1
                self._respond_inline(request, 200, "OK", payload)
            elif path == "/readyz":
                ready, reason = self.service.readiness
                with self._admission_lock:
                    self._health_inline += 1
                self._respond_inline(
                    request,
                    200 if ready else 503,
                    "OK" if ready else "Service Unavailable",
                    {"ready": ready, "reason": reason},
                )
            else:
                with self._admission_lock:
                    self._sheds += 1
                self.service.degradation.record_shed()
                error = ServiceError.overloaded(
                    "admission queue is full; retry shortly",
                    retry_after_s=self.shed_retry_after_s,
                )
                self._respond_inline(
                    request,
                    503,
                    "Service Unavailable",
                    error.to_dict(),
                    retry_after_s=self.shed_retry_after_s,
                )
        finally:
            self.shutdown_request(request)

    @staticmethod
    def _peek_health_path(request) -> str | None:
        """Peek the request line of a to-be-shed connection for a probe.

        ``MSG_PEEK`` leaves the bytes in the kernel buffer, so this never
        corrupts the (discarded) stream; the timeout is tiny because a
        real prober writes its GET immediately — anything slower is
        treated as sheddable traffic.
        """
        try:
            request.settimeout(0.02)
            head = request.recv(32, socket.MSG_PEEK)
        except (OSError, ValueError):
            return None
        if head.startswith(b"GET /healthz"):
            return "/healthz"
        if head.startswith(b"GET /readyz"):
            return "/readyz"
        return None

    @staticmethod
    def _respond_inline(
        request,
        status: int,
        reason: str,
        payload: dict[str, object],
        *,
        retry_after_s: float | None = None,
    ) -> None:
        """Write one complete HTTP/1.1 response straight to the socket.

        Used from the accept path (no handler, no worker); a short send
        timeout keeps a slow or dead client from stalling the accept
        loop, and errors are swallowed — the connection is being closed
        either way.
        """
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if retry_after_s is not None:
            lines.append(f"Retry-After: {max(1, math.ceil(retry_after_s))}")
        data = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
        try:
            request.settimeout(0.5)
            request.sendall(data)
        except OSError:
            pass

    def _worker(self) -> None:
        while True:
            item = self._connections.get()
            if item is None:
                return
            request, client_address, enqueued_at = item
            wait_s = time.monotonic() - enqueued_at
            with self._admission_lock:
                self._admitted += 1
                self._queue_wait_total_s += wait_s
                if wait_s > self._queue_wait_max_s:
                    self._queue_wait_max_s = wait_s
            with self._active_lock:
                if self._closed:
                    self.shutdown_request(request)
                    continue
                self._active.add(request)
            try:
                self.finish_request(request, client_address)
            except Exception:  # noqa: BLE001 - connection-level failure
                self.handle_error(request, client_address)
            finally:
                with self._active_lock:
                    self._active.discard(request)
                self.shutdown_request(request)

    def handle_error(self, request, client_address) -> None:
        """Per-connection containment: count, stay quiet, never escalate.

        A client that vanishes mid-request (reset, broken pipe, timeout)
        is routine abuse-adjacent traffic — it must not traceback-spam
        the log or take the worker down.  Non-I/O failures are real bugs
        and keep the stock traceback.
        """
        error = sys.exc_info()[1]
        with self._admission_lock:
            self._connection_errors += 1
        if isinstance(error, (TimeoutError, OSError)):
            if self.verbose:
                print(f"connection error from {client_address}: {error!r}")
            return
        super().handle_error(request, client_address)

    def admission_stats(self) -> dict[str, object]:
        """Admission-control counters (merged into ``GET /stats``)."""
        with self._admission_lock:
            admitted = self._admitted
            mean_ms = (
                self._queue_wait_total_s / admitted * 1e3 if admitted else 0.0
            )
            return {
                "queue_depth": self._connections.maxsize,
                "queued_now": self._connections.qsize(),
                "admitted": admitted,
                "sheds": self._sheds,
                "health_inline": self._health_inline,
                "connection_errors": self._connection_errors,
                "queue_wait_mean_ms": round(mean_ms, 3),
                "queue_wait_max_ms": round(self._queue_wait_max_s * 1e3, 3),
            }

    # -- lifecycle ----------------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Accept loop; spawns the worker pool and is tracked so
        :meth:`shutdown` knows whether to stop it.

        The closed checks and the serving flag share one lock with
        shutdown()'s close transition, so the two cannot interleave into
        an unstoppable loop or a leaked pool: either shutdown closes
        first (this call returns before serving; _ensure_workers refuses
        to spawn once closed) or the spawned workers and the serving
        flag are visible to shutdown, which joins the pool and stops the
        loop — even one that has not reached the poll yet
        (``BaseServer.serve_forever`` re-checks its stop request every
        iteration).
        """
        self._ensure_workers()  # no-op once closed
        with self._active_lock:
            if self._closed:
                return
            self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    def start(self) -> "DiscoveryHTTPServer":
        """Run the accept loop on a background thread (idempotent).

        Waits until the loop is actually accepting before returning, so
        an immediate :meth:`shutdown` (or request) cannot race the
        thread's startup.
        """
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="http-accept", daemon=True
            )
            self._serve_thread.start()
            self._serving.wait(timeout=10)
        return self

    def shutdown(self) -> None:
        """Stop accepting, unblock and join every thread, close all sockets.

        Safe to call more than once, and safe whether or not the accept
        loop ever ran.  After it returns no server-owned thread is alive:
        the handler/worker threads have exited (idle keep-alive reads are
        unblocked by closing their sockets) and queued-but-unserved
        connections are closed rather than leaked.
        """
        with self._active_lock:
            if self._closed:
                return
            self._closed = True
        if self._serving.is_set():
            # Stops serve_forever wherever it runs — a thread spawned by
            # start() or one the caller started — and waits for it to exit.
            super().shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        # Unblock workers parked on idle keep-alive reads.  The accept
        # loop is stopped and _closed is set, so _active can only shrink.
        with self._active_lock:
            active = list(self._active)
        for connection in active:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for _ in self._workers:
            self._connections.put(None)
        for worker in self._workers:
            worker.join(timeout=10)
        # Close connections accepted but never picked up by a worker.
        # Drained stop sentinels are re-issued afterwards for any worker
        # that outlived its join timeout (e.g. one mid-request), so a
        # late finisher always finds a sentinel instead of blocking on
        # an empty queue forever.
        while True:
            try:
                item = self._connections.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                self.shutdown_request(item[0])
        for worker in self._workers:
            if worker.is_alive():
                self._connections.put(None)

    def __enter__(self) -> "DiscoveryHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
        self.server_close()


class ThreadPerRequestHTTPServer(ThreadingHTTPServer):
    """The pre-pool serving architecture, kept as the benchmark baseline.

    One thread is spawned per accepted connection (``ThreadingHTTPServer``
    semantics) and torn down with it — under per-request connections that
    is literally a thread per request.  The ``serve`` stage of the perf
    suite measures the worker-pool engine against this, so the comparison
    stays honest as both evolve.  Not used by ``python -m repro serve``.
    """

    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: DiscoveryService,
        *,
        verbose: bool = False,
        keepalive_idle_s: float = 5.0,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.keepalive_idle_s = keepalive_idle_s
        self.max_body_bytes = _MAX_BODY_BYTES
        self.body_read_timeout_s = _BODY_READ_TIMEOUT_S


def make_server(
    service: DiscoveryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
    workers: int = 32,
    keepalive_idle_s: float = 5.0,
    reuse_port: bool = False,
    admission_queue_depth: int | None = None,
    max_body_bytes: int = _MAX_BODY_BYTES,
    body_read_timeout_s: float = _BODY_READ_TIMEOUT_S,
) -> DiscoveryHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return DiscoveryHTTPServer(
        (host, port),
        service,
        verbose=verbose,
        workers=workers,
        keepalive_idle_s=keepalive_idle_s,
        reuse_port=reuse_port,
        admission_queue_depth=admission_queue_depth,
        max_body_bytes=max_body_bytes,
        body_read_timeout_s=body_read_timeout_s,
    )


def serve(
    service: DiscoveryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    workers: int = 32,
    admission_queue_depth: int | None = None,
    max_body_bytes: int = _MAX_BODY_BYTES,
    body_read_timeout_s: float = _BODY_READ_TIMEOUT_S,
) -> None:
    """Serve forever (blocking); Ctrl-C shuts down cleanly."""
    server = make_server(
        service,
        host,
        port,
        verbose=True,
        workers=workers,
        admission_queue_depth=admission_queue_depth,
        max_body_bytes=max_body_bytes,
        body_read_timeout_s=body_read_timeout_s,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"serving join discovery on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
