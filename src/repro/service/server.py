"""JSON-over-HTTP serving layer: ``python -m repro serve``.

A dependency-free (stdlib ``http.server``) front end for
:class:`~repro.service.discovery.DiscoveryService`, built for sustained
concurrent traffic rather than thread-per-request churn:

* a **fixed worker pool** accepts connections from a bounded hand-off
  queue — no thread is ever spawned per request, and load beyond the
  pool waits in the listen backlog instead of fork-bombing the process;
* connections are **persistent** (HTTP/1.1 keep-alive): a client issues
  any number of requests over one socket, with an idle timeout so a
  silent connection returns its worker to the pool;
* ``POST /search`` routes through the service's request coalescer
  (:meth:`DiscoveryService.search_coalesced`), so single-query requests
  from concurrent connections execute as batched index probes;
* ``shutdown()`` is **clean and complete**: the accept loop stops, every
  worker is unblocked and joined, and in-flight sockets close — no
  daemon-thread leaks across tests.  The server is a context manager
  (``with make_server(...) as server:``) that starts serving on enter
  and tears all of that down on exit.

Routes
------
``GET  /healthz``        liveness; lock-free, never blocked by writers
``GET  /stats``          :class:`IndexStats` snapshot
``GET  /graph/stats``    join-graph counters (forces a graph sync)
``POST /search``         one :class:`SearchRequest` body (coalesced)
``POST /paths``          ``{"src": "db.t", "dst": "db.u", "max_hops": 3}``
``POST /search/batch``   ``{"requests": [...]}``, amortized
``POST /index/add``      ``{"database": ..., "table": {"name": ..., "columns": [...]}}``
``POST /index/drop``     ``{"database": ..., "table": ...}``
``POST /index/refresh``  ``{"ref": "db.table.column"}``

Failures return the :class:`ServiceError` envelope
``{"error": {"code": ..., "message": ...}}`` with a matching HTTP status.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer

from repro.errors import ReproError
from repro.service.discovery import DiscoveryService
from repro.service.types import SearchRequest, ServiceError
from repro.storage.column import Column
from repro.storage.table import Table

__all__ = [
    "DiscoveryHTTPServer",
    "ThreadPerRequestHTTPServer",
    "make_server",
    "serve",
]

_MAX_BODY_BYTES = 64 * 1024 * 1024
# A batch embeds under the scan mutex and probes under the shared read
# lock; capping its size bounds how long one request can occupy both.
_MAX_BATCH_REQUESTS = 256


def _table_from_payload(payload: object) -> Table:
    """Build a :class:`Table` from the ``/index/add`` wire format."""
    if not isinstance(payload, dict):
        raise ServiceError.bad_request("'table' must be a JSON object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ServiceError.bad_request("'table.name' must be a non-empty string")
    columns_payload = payload.get("columns")
    if not isinstance(columns_payload, list) or not columns_payload:
        raise ServiceError.bad_request("'table.columns' must be a non-empty list")
    columns = []
    for entry in columns_payload:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise ServiceError.bad_request(
                "each column must be {'name': str, 'values': list}"
            )
        values = entry.get("values")
        if not isinstance(values, list):
            raise ServiceError.bad_request(
                f"column {entry['name']!r} needs a 'values' list"
            )
        columns.append(Column(entry["name"], values))
    try:
        return Table(name, columns)
    except ReproError as error:
        raise ServiceError.bad_request(str(error)) from error


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`DiscoveryService`."""

    server: "DiscoveryHTTPServer"
    protocol_version = "HTTP/1.1"
    # Responses are written as separate header/body segments; with Nagle
    # on, those interact with the client's delayed ACK into ~40ms stalls
    # per keep-alive round trip.  Serving sockets are latency-bound, not
    # throughput-bound, so TCP_NODELAY is the right default.
    disable_nagle_algorithm = True

    # -- plumbing ---------------------------------------------------------------

    def setup(self) -> None:
        # Idle keep-alive connections time out so they hand their pool
        # worker back instead of pinning it forever; handle_one_request
        # treats the timeout as an orderly connection close.
        self.timeout = self.server.keepalive_idle_s
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, error: ServiceError) -> None:
        # An error can be sent before the request body was read (e.g. an
        # unknown route); under keep-alive the unread bytes would then be
        # parsed as the next request line, so drop the connection.
        self.close_connection = True
        self._send_json(error.status, error.to_dict())

    def _read_json(self) -> dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError as error:
            raise ServiceError.bad_request(
                "Content-Length header must be an integer"
            ) from error
        if length <= 0:
            raise ServiceError.bad_request("request body required")
        if length > _MAX_BODY_BYTES:
            raise ServiceError.bad_request(
                f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError.bad_request(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise ServiceError.bad_request("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceError as error:
            self._send_error_envelope(error)
        except ReproError as error:
            self._send_error_envelope(ServiceError.bad_request(str(error)))
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_envelope(ServiceError.internal(str(error)))
        else:
            self._send_json(status, payload)

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/healthz": self._route_healthz,
            "/stats": self._route_stats,
            "/graph/stats": self._route_graph_stats,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_envelope(
                ServiceError.not_found(f"no route GET {self.path}")
            )
            return
        self._dispatch(handler)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        routes = {
            "/search": self._route_search,
            "/search/batch": self._route_search_batch,
            "/paths": self._route_paths,
            "/index/add": self._route_index_add,
            "/index/drop": self._route_index_drop,
            "/index/refresh": self._route_index_refresh,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_envelope(
                ServiceError.not_found(f"no route POST {self.path}")
            )
            return
        self._dispatch(handler)

    def _route_healthz(self) -> tuple[int, dict[str, object]]:
        # Deliberately lock-free: liveness probes must answer while a
        # writer holds the service's exclusive lock (long mutations,
        # compactions), so this reads only always-consistent scalars and
        # never calls stats() or search paths.
        service = self.server.service
        return 200, {
            "status": "ok",
            "indexed": service.is_indexed,
            "indexed_columns": service.engine.indexed_count,
        }

    def _route_stats(self) -> tuple[int, dict[str, object]]:
        return 200, self.server.service.stats().to_dict()

    def _route_graph_stats(self) -> tuple[int, dict[str, object]]:
        return 200, self.server.service.graph_stats()

    def _route_paths(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        src, dst = payload.get("src"), payload.get("dst")
        if not isinstance(src, str) or not isinstance(dst, str):
            raise ServiceError.bad_request("'src' and 'dst' must be 'db.table' strings")
        max_hops = payload.get("max_hops", 3)
        limit = payload.get("limit", 5)
        combiner = payload.get("combiner", "product")
        if not isinstance(max_hops, int) or isinstance(max_hops, bool):
            raise ServiceError.bad_request("'max_hops' must be an integer")
        if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
            raise ServiceError.bad_request("'limit' must be an integer or null")
        if not isinstance(combiner, str):
            raise ServiceError.bad_request("'combiner' must be a string")
        unknown = set(payload) - {"src", "dst", "max_hops", "limit", "combiner"}
        if unknown:
            raise ServiceError.bad_request(
                f"unknown field(s): {', '.join(sorted(unknown))}"
            )
        paths = self.server.service.find_paths(
            src, dst, max_hops=max_hops, limit=limit, combiner=combiner
        )
        return 200, {
            "src": src,
            "dst": dst,
            "paths": [path.to_dict() for path in paths],
        }

    def _route_search(self) -> tuple[int, dict[str, object]]:
        request = SearchRequest.from_dict(self._read_json())
        response = self.server.service.search_coalesced(request)
        return 200, response.to_dict()

    def _route_search_batch(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        requests_payload = payload.get("requests")
        if not isinstance(requests_payload, list):
            raise ServiceError.bad_request("'requests' must be a list")
        if len(requests_payload) > _MAX_BATCH_REQUESTS:
            raise ServiceError.bad_request(
                f"batch exceeds {_MAX_BATCH_REQUESTS} requests; split it"
            )
        requests = [SearchRequest.from_dict(entry) for entry in requests_payload]
        responses = self.server.service.search_many(requests)
        return 200, {"responses": [response.to_dict() for response in responses]}

    def _route_index_add(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        database = payload.get("database")
        if not isinstance(database, str) or not database:
            raise ServiceError.bad_request("'database' must be a non-empty string")
        table = _table_from_payload(payload.get("table"))
        stats = self.server.service.add_table(database, table)
        return 200, stats.to_dict()

    def _route_index_drop(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        database = payload.get("database")
        table = payload.get("table")
        if not isinstance(database, str) or not isinstance(table, str):
            raise ServiceError.bad_request("'database' and 'table' must be strings")
        stats = self.server.service.drop_table(database, table)
        return 200, stats.to_dict()

    def _route_index_refresh(self) -> tuple[int, dict[str, object]]:
        payload = self._read_json()
        ref = payload.get("ref")
        if not isinstance(ref, str) or not ref:
            raise ServiceError.bad_request("'ref' must be a 'db.table.column' string")
        stats = self.server.service.refresh_column(ref)
        return 200, stats.to_dict()


class DiscoveryHTTPServer(HTTPServer):
    """Worker-pool HTTP server bound to one :class:`DiscoveryService`.

    The accept loop (``serve_forever``, typically run by :meth:`start`)
    hands accepted sockets to a fixed pool of ``workers`` threads; each
    worker serves one persistent connection at a time (all of its
    keep-alive requests) and then takes the next.  Size the pool to the
    expected number of concurrent persistent connections — idle
    connections release their worker after ``keepalive_idle_s``.

    Lifecycle: ``start()`` → serve → ``shutdown()`` (joins the accept
    thread and every worker, closes in-flight and queued connections)
    → ``server_close()``.  Or simply::

        with make_server(service, port=0) as server:
            ...  # server is live here
        # fully torn down: no threads, no sockets
    """

    # The socketserver default backlog (5) drops connections under bursts
    # of concurrent clients; the service is built for exactly that load.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: DiscoveryService,
        *,
        verbose: bool = False,
        workers: int = 32,
        keepalive_idle_s: float = 5.0,
        reuse_port: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # Must be set before super().__init__ binds the socket: the
        # SO_REUSEPORT flag lets N server processes share one listen
        # address, with the kernel load-balancing accepts across them
        # (the multi-process serving front, see repro.service.mpserve).
        self.allow_reuse_port = reuse_port
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.keepalive_idle_s = keepalive_idle_s
        # Bounded hand-off: once the pool and this buffer are saturated
        # the accept loop stalls in process_request, new connections pile
        # into the kernel listen backlog, and past that the kernel
        # refuses them — overload backpressures clients instead of
        # accumulating accepted-but-never-served sockets in memory.
        self._connections: queue.Queue = queue.Queue(maxsize=2 * workers)
        self._active_lock = threading.Lock()
        self._active: set[socket.socket] = set()
        self._closed = False
        self._serving = threading.Event()
        self._serve_thread: threading.Thread | None = None
        # Workers spawn lazily on the first serve_forever() call — the
        # constructor (and make_server) only *binds*, per its contract.
        self._n_workers = workers
        self._workers: list[threading.Thread] = []

    # -- worker pool --------------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Spawn the fixed pool once serving actually begins (idempotent).

        Threads are started while the lock is held, so any worker a
        concurrent :meth:`shutdown` can observe in ``_workers`` is
        already joinable.
        """
        with self._active_lock:
            if self._workers or self._closed:
                return
            for index in range(self._n_workers):
                worker = threading.Thread(
                    target=self._worker, name=f"http-worker-{index}", daemon=True
                )
                worker.start()
                self._workers.append(worker)

    def process_request(self, request, client_address) -> None:
        """Hand an accepted connection to the pool (called by serve_forever).

        Blocks while the bounded hand-off is full (that *is* the
        backpressure), but wakes every 500 ms so a concurrent shutdown
        is never stalled behind a saturated pool.
        """
        while True:
            try:
                self._connections.put((request, client_address), timeout=0.5)
                return
            except queue.Full:
                if self._closed:
                    self.shutdown_request(request)
                    return

    def _worker(self) -> None:
        while True:
            item = self._connections.get()
            if item is None:
                return
            request, client_address = item
            with self._active_lock:
                if self._closed:
                    self.shutdown_request(request)
                    continue
                self._active.add(request)
            try:
                self.finish_request(request, client_address)
            except Exception:  # noqa: BLE001 - connection-level failure
                self.handle_error(request, client_address)
            finally:
                with self._active_lock:
                    self._active.discard(request)
                self.shutdown_request(request)

    # -- lifecycle ----------------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Accept loop; spawns the worker pool and is tracked so
        :meth:`shutdown` knows whether to stop it.

        The closed checks and the serving flag share one lock with
        shutdown()'s close transition, so the two cannot interleave into
        an unstoppable loop or a leaked pool: either shutdown closes
        first (this call returns before serving; _ensure_workers refuses
        to spawn once closed) or the spawned workers and the serving
        flag are visible to shutdown, which joins the pool and stops the
        loop — even one that has not reached the poll yet
        (``BaseServer.serve_forever`` re-checks its stop request every
        iteration).
        """
        self._ensure_workers()  # no-op once closed
        with self._active_lock:
            if self._closed:
                return
            self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    def start(self) -> "DiscoveryHTTPServer":
        """Run the accept loop on a background thread (idempotent).

        Waits until the loop is actually accepting before returning, so
        an immediate :meth:`shutdown` (or request) cannot race the
        thread's startup.
        """
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="http-accept", daemon=True
            )
            self._serve_thread.start()
            self._serving.wait(timeout=10)
        return self

    def shutdown(self) -> None:
        """Stop accepting, unblock and join every thread, close all sockets.

        Safe to call more than once, and safe whether or not the accept
        loop ever ran.  After it returns no server-owned thread is alive:
        the handler/worker threads have exited (idle keep-alive reads are
        unblocked by closing their sockets) and queued-but-unserved
        connections are closed rather than leaked.
        """
        with self._active_lock:
            if self._closed:
                return
            self._closed = True
        if self._serving.is_set():
            # Stops serve_forever wherever it runs — a thread spawned by
            # start() or one the caller started — and waits for it to exit.
            super().shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        # Unblock workers parked on idle keep-alive reads.  The accept
        # loop is stopped and _closed is set, so _active can only shrink.
        with self._active_lock:
            active = list(self._active)
        for connection in active:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for _ in self._workers:
            self._connections.put(None)
        for worker in self._workers:
            worker.join(timeout=10)
        # Close connections accepted but never picked up by a worker.
        # Drained stop sentinels are re-issued afterwards for any worker
        # that outlived its join timeout (e.g. one mid-request), so a
        # late finisher always finds a sentinel instead of blocking on
        # an empty queue forever.
        while True:
            try:
                item = self._connections.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                self.shutdown_request(item[0])
        for worker in self._workers:
            if worker.is_alive():
                self._connections.put(None)

    def __enter__(self) -> "DiscoveryHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
        self.server_close()


class ThreadPerRequestHTTPServer(ThreadingHTTPServer):
    """The pre-pool serving architecture, kept as the benchmark baseline.

    One thread is spawned per accepted connection (``ThreadingHTTPServer``
    semantics) and torn down with it — under per-request connections that
    is literally a thread per request.  The ``serve`` stage of the perf
    suite measures the worker-pool engine against this, so the comparison
    stays honest as both evolve.  Not used by ``python -m repro serve``.
    """

    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: DiscoveryService,
        *,
        verbose: bool = False,
        keepalive_idle_s: float = 5.0,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.keepalive_idle_s = keepalive_idle_s


def make_server(
    service: DiscoveryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
    workers: int = 32,
    keepalive_idle_s: float = 5.0,
    reuse_port: bool = False,
) -> DiscoveryHTTPServer:
    """Bind (but do not start) a server; ``port=0`` picks a free port."""
    return DiscoveryHTTPServer(
        (host, port),
        service,
        verbose=verbose,
        workers=workers,
        keepalive_idle_s=keepalive_idle_s,
        reuse_port=reuse_port,
    )


def serve(
    service: DiscoveryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    workers: int = 32,
) -> None:
    """Serve forever (blocking); Ctrl-C shuts down cleanly."""
    server = make_server(service, host, port, verbose=True, workers=workers)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving join discovery on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
