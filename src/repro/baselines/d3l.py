"""D3L baseline (Bogatu et al., ICDE 2020).

D3L scores column relatedness as an *ensemble of five evidence types*:

(i)   column-name similarity (q-gram sets of the normalized name);
(ii)  value-extent overlap (MinHash over distinct values);
(iii) word-embedding similarity of the column's values;
(iv)  format-pattern similarity (shape histograms of the values);
(v)   distribution similarity for numeric columns (profile vectors).

Each evidence produces a [0, 1] score; the final score averages the
evidences applicable to the column pair.  The averaging is D3L's strength
(robustness) and weakness (dilution): name and format evidence fire on many
non-joinable pairs, which is exactly the behaviour the paper observes —
better than Aurum, behind WarpGate, with a recall jump at large k on Spider
driven by evidence (i).

Every evidence is computed at query time against all indexed columns
(bounded by per-evidence LSH prefilters in the original; here the corpus
sizes make exact evidence scans feasible and *slower*, which matches D3L's
position as the slowest system in Table 2 — an ensemble simply does more
work per query).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.system import IndexReport, JoinDiscoverySystem
from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.embedding.encoder import ColumnEncoder
from repro.embedding.numeric import numeric_profile_vector
from repro.embedding.registry import get_model
from repro.index.minhash import MinHashSignature
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.text.formats import format_histogram
from repro.text.qgrams import qgram_set
from repro.text.similarity import cosine_of_counts, jaccard
from repro.text.tokenize import normalize_identifier
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import Sampler

__all__ = ["D3L"]


class _TextEmbeddingView:
    """GloVe stand-in: the trained word vectors *without* the OOV fallback.

    D3L scores its embedding evidence with text-trained word embeddings:
    natural-language tokens (cities, company words) have vectors, while
    codes, ids, and arbitrary digit strings are out of vocabulary and
    contribute nothing.  Wrapping the shared table-trained model with an
    in-vocabulary filter reproduces exactly that coverage profile, and the
    coverage difference — not the vector quality — is what separates D3L's
    evidence (iii) from WarpGate's encoder on key-like columns.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.dim = base.dim

    @property
    def is_trained(self) -> bool:
        return self.base.is_trained

    def embed_token(self, token: str) -> np.ndarray:
        if hasattr(self.base, "in_vocabulary") and not self.base.in_vocabulary(token):
            return np.zeros(self.dim)
        return self.base.embed_token(token)

    def embed_tokens(self, tokens: list[str]) -> np.ndarray:
        if not tokens:
            return np.zeros((0, self.dim))
        return np.stack([self.embed_token(token) for token in tokens])

    def idf(self, token: str) -> float:
        return self.base.idf(token)


@dataclass
class _ColumnProfile:
    """Everything D3L stores per column: one entry per evidence type."""

    ref: ColumnRef
    name_qgrams: frozenset[str]
    extent_signature: MinHashSignature | None
    embedding: np.ndarray | None
    format_histogram: Counter
    numeric_profile: np.ndarray | None


class D3L(JoinDiscoverySystem):
    """Five-evidence ensemble join discovery.

    The embedding evidence runs through :class:`_TextEmbeddingView`: the
    original D3L scores evidence (iii) with *text-trained* word embeddings
    (GloVe), which cover natural-language tokens but treat codes and ids as
    out of vocabulary — the coverage gap to WarpGate's table-pretrained
    encoder is exactly the comparison the paper draws (§3.1.1).
    """

    name = "d3l"

    def __init__(
        self,
        *,
        dim: int = 64,
        model_name: str = "webtable",
        name_threshold: float = 0.4,
        extent_threshold: float = 0.5,
        embedding_threshold: float = 0.7,
        format_threshold: float = 0.6,
        distribution_threshold: float = 0.6,
    ) -> None:
        super().__init__()
        self.dim = dim
        # Per-evidence candidate thresholds: the original backs each
        # evidence with its own LSH index, so a pair below every threshold
        # is never retrieved at all.  We reproduce that cutoff behaviour.
        self.thresholds = (
            name_threshold,
            extent_threshold,
            embedding_threshold,
            format_threshold,
            distribution_threshold,
        )
        self._encoder = ColumnEncoder(
            _TextEmbeddingView(get_model(model_name, dim=dim)),
            aggregation="mean",
            numeric_profile_weight=0.0,
        )
        self._profiles: dict[ColumnRef, _ColumnProfile] = {}

    # -- profiling -----------------------------------------------------------------

    def _profile(self, ref: ColumnRef, column: Column) -> _ColumnProfile:
        """Compute all five evidence representations for one column."""
        name_qgrams = qgram_set(normalize_identifier(ref.column), q=3)
        distinct = column.distinct_values
        extent_signature = (
            MinHashSignature.of(distinct) if distinct else None
        )
        embedding = self._encoder.encode(column)
        if not np.any(embedding):
            embedding = None
        formats = format_histogram(column.string_values, limit=500)
        numeric_profile = (
            numeric_profile_vector(column) if column.dtype.is_numeric else None
        )
        return _ColumnProfile(
            ref=ref,
            name_qgrams=name_qgrams,
            extent_signature=extent_signature,
            embedding=embedding,
            format_histogram=formats,
            numeric_profile=numeric_profile,
        )

    def index_corpus(
        self, connector: WarehouseConnector, *, sampler: Sampler | None = None
    ) -> IndexReport:
        """Full-scan profiling of every eligible column (as D3L does)."""
        self._connector = connector
        report = IndexReport(system=self.name)
        start = time.perf_counter()
        bytes_before = connector.stats.scanned_bytes
        simulated_before = connector.stats.simulated_seconds
        dollars_before = connector.meter.charged_dollars
        for ref in self.eligible_refs(connector):
            column, _measured, _simulated = self.load_column(ref, sampler)
            if len(column) == 0:
                report.columns_skipped += 1
                continue
            self._profiles[ref] = self._profile(ref, column)
            report.columns_indexed += 1
        report.wall_seconds = time.perf_counter() - start
        report.simulated_load_seconds = (
            connector.stats.simulated_seconds - simulated_before
        )
        report.scanned_bytes = connector.stats.scanned_bytes - bytes_before
        report.charged_dollars = connector.meter.charged_dollars - dollars_before
        self._indexed = True
        return report

    # -- evidence scoring -----------------------------------------------------------

    def _applicable_count(
        self, query: _ColumnProfile, candidate: _ColumnProfile
    ) -> int:
        """Number of evidence types defined for this pair (4 or 5)."""
        count = 0
        if query.name_qgrams and candidate.name_qgrams:
            count += 1
        if query.extent_signature is not None and candidate.extent_signature is not None:
            count += 1
        if query.embedding is not None and candidate.embedding is not None:
            count += 1
        if query.format_histogram and candidate.format_histogram:
            count += 1
        if query.numeric_profile is not None and candidate.numeric_profile is not None:
            count += 1
        return count

    def _evidence_scores(
        self, query: _ColumnProfile, candidate: _ColumnProfile
    ) -> list[float]:
        """Scores of every evidence whose LSH-style threshold the pair clears.

        An empty list means no evidence index would have surfaced the pair,
        so it is not a candidate at all — the behaviour that caps D3L's
        recall in Figure 4.
        """
        (
            name_threshold,
            extent_threshold,
            embedding_threshold,
            format_threshold,
            distribution_threshold,
        ) = self.thresholds
        scores: list[float] = []
        # (i) column-name q-gram Jaccard.
        if query.name_qgrams and candidate.name_qgrams:
            score = jaccard(query.name_qgrams, candidate.name_qgrams)
            if score >= name_threshold:
                scores.append(score)
        # (ii) value-extent MinHash Jaccard.
        if query.extent_signature is not None and candidate.extent_signature is not None:
            score = query.extent_signature.jaccard_estimate(candidate.extent_signature)
            if score >= extent_threshold:
                scores.append(score)
        # (iii) word-embedding cosine.
        if query.embedding is not None and candidate.embedding is not None:
            cosine = float(query.embedding @ candidate.embedding)
            if cosine >= embedding_threshold:
                scores.append(cosine)
        # (iv) format-pattern histogram cosine.
        if query.format_histogram and candidate.format_histogram:
            score = cosine_of_counts(query.format_histogram, candidate.format_histogram)
            if score >= format_threshold:
                scores.append(score)
        # (v) numeric distribution cosine (numeric pairs only).
        if query.numeric_profile is not None and candidate.numeric_profile is not None:
            cosine = float(query.numeric_profile @ candidate.numeric_profile)
            if cosine >= distribution_threshold:
                scores.append(cosine)
        return scores

    def score_pair(self, query: ColumnRef, candidate: ColumnRef) -> float:
        """Ensemble score between two profiled columns.

        Mean over all *applicable* evidence slots, with evidences below
        their retrieval threshold contributing zero — D3L's
        average-of-distances aggregation, where an evidence that did not
        retrieve the pair counts as maximal distance.
        """
        query_profile = self._profiles.get(query)
        candidate_profile = self._profiles.get(candidate)
        if query_profile is None or candidate_profile is None:
            return 0.0
        return self._evidence_mean(query_profile, candidate_profile)

    # -- search ------------------------------------------------------------------------

    def search(self, query: ColumnRef, k: int = 10) -> DiscoveryResult:
        """Profile the query column afresh, then rank by ensemble score.

        D3L re-reads the query column (load) and computes all five evidence
        representations (its "embed" analogue) before the ranking pass
        (lookup) — the extra work that makes it the slowest system in
        Table 2.
        """
        self._require_indexed()
        timing = TimingBreakdown()
        column, measured, simulated = self.load_column(query, None)
        timing.load_measured_s = measured
        timing.load_simulated_s = simulated

        profile_start = time.perf_counter()
        query_profile = self._profile(query, column)
        timing.embed_s = time.perf_counter() - profile_start

        lookup_start = time.perf_counter()
        scored = [
            (ref, self._evidence_mean(query_profile, profile))
            for ref, profile in self._profiles.items()
            if ref != query
        ]
        scored = [(ref, score) for ref, score in scored if score > 0.0]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        kept = self.drop_same_table(scored, query, k)
        timing.lookup_s = time.perf_counter() - lookup_start
        return DiscoveryResult(
            query=query,
            candidates=[JoinCandidate(ref, score) for ref, score in kept],
            timing=timing,
        )

    def _evidence_mean(
        self, query_profile: _ColumnProfile, candidate_profile: _ColumnProfile
    ) -> float:
        scores = self._evidence_scores(query_profile, candidate_profile)
        if not scores:
            return 0.0
        applicable = self._applicable_count(query_profile, candidate_profile)
        return sum(scores) / applicable

    @property
    def profile_count(self) -> int:
        """Number of profiled columns."""
        return len(self._profiles)
