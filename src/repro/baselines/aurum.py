"""Aurum baseline (Fernandez et al., ICDE 2018).

Aurum profiles every column with a MinHash signature, then materializes an
*enterprise knowledge graph*: nodes are column profiles, weighted edges link
columns whose estimated Jaccard similarity clears a threshold.  Discovery
queries are answered from the graph alone — which is why the paper measures
Aurum orders of magnitude faster per query (Table 2: no data loading, no
inference; just neighbour retrieval) and why its effectiveness tops out
early (Figure 4: relationships below the syntactic threshold simply are not
edges; the paper also notes Aurum "does not support top-k search", so we
rank neighbours by stored edge weight and truncate).
"""

from __future__ import annotations

import time

import networkx as nx

from repro.core.system import IndexReport, JoinDiscoverySystem
from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.index.minhash import MinHashIndex, MinHashSignature
from repro.storage.schema import ColumnRef
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import Sampler

__all__ = ["Aurum"]


class Aurum(JoinDiscoverySystem):
    """Syntactic profile-graph join discovery.

    Parameters
    ----------
    edge_threshold:
        Minimum estimated Jaccard for an edge in the knowledge graph
        (Aurum's default content-similarity threshold is high — it links
        near-duplicate extents).
    n_perm:
        MinHash permutations per profile.
    """

    name = "aurum"

    def __init__(self, *, edge_threshold: float = 0.7, n_perm: int = 128) -> None:
        super().__init__()
        if not 0.0 <= edge_threshold <= 1.0:
            raise ValueError(
                f"edge_threshold must be in [0, 1], got {edge_threshold}"
            )
        self.edge_threshold = edge_threshold
        self.n_perm = n_perm
        self._minhash_index = MinHashIndex(
            n_perm=n_perm, n_bands=32, threshold=edge_threshold
        )
        self.graph = nx.Graph()

    # -- indexing: profile columns, then build the knowledge graph ------------------

    def index_corpus(
        self, connector: WarehouseConnector, *, sampler: Sampler | None = None
    ) -> IndexReport:
        """Two-step Aurum pipeline: profile signatures, then graph edges."""
        self._connector = connector
        report = IndexReport(system=self.name)
        start = time.perf_counter()
        bytes_before = connector.stats.scanned_bytes
        simulated_before = connector.stats.simulated_seconds
        dollars_before = connector.meter.charged_dollars

        signatures: dict[ColumnRef, MinHashSignature] = {}
        for ref in self.eligible_refs(connector):
            column, _measured, _simulated = self.load_column(ref, sampler)
            distinct = column.distinct_values
            if not distinct:
                report.columns_skipped += 1
                continue
            signature = MinHashSignature.of(distinct, self.n_perm)
            signatures[ref] = signature
            self._minhash_index.add(ref, signature)
            self.graph.add_node(ref)
            report.columns_indexed += 1

        # Relationship edges: for each profile, link LSH neighbours whose
        # estimated Jaccard clears the threshold.
        for ref, signature in signatures.items():
            for neighbor, estimate in self._minhash_index.query(
                signature, None, exclude=ref
            ):
                if not self.graph.has_edge(ref, neighbor):
                    self.graph.add_edge(ref, neighbor, weight=estimate)

        report.wall_seconds = time.perf_counter() - start
        report.simulated_load_seconds = (
            connector.stats.simulated_seconds - simulated_before
        )
        report.scanned_bytes = connector.stats.scanned_bytes - bytes_before
        report.charged_dollars = connector.meter.charged_dollars - dollars_before
        report.notes["edges"] = self.graph.number_of_edges()
        report.notes["edge_threshold"] = self.edge_threshold
        self._indexed = True
        return report

    # -- search: pure graph neighbourhood retrieval -------------------------------------

    def search(self, query: ColumnRef, k: int = 10) -> DiscoveryResult:
        """Neighbours of the query node, ordered by edge weight.

        No warehouse scan, no inference: this is the architectural reason
        Aurum's per-query latency is near zero in Table 2.
        """
        self._require_indexed()
        timing = TimingBreakdown()
        lookup_start = time.perf_counter()
        if query in self.graph:
            neighbors = [
                (neighbor, float(self.graph.edges[query, neighbor]["weight"]))
                for neighbor in self.graph.neighbors(query)
            ]
            neighbors.sort(key=lambda pair: (-pair[1], str(pair[0])))
        else:
            neighbors = []
        kept = self.drop_same_table(neighbors, query, k)
        timing.lookup_s = time.perf_counter() - lookup_start
        return DiscoveryResult(
            query=query,
            candidates=[JoinCandidate(ref, score) for ref, score in kept],
            timing=timing,
        )

    # -- Aurum-specific introspection ---------------------------------------------------

    def how_similar(self, left: ColumnRef, right: ColumnRef) -> float:
        """Estimated Jaccard between two profiled columns (0 if unprofiled)."""
        try:
            left_signature = self._minhash_index.signature_of(left)
            right_signature = self._minhash_index.signature_of(right)
        except KeyError:
            return 0.0
        return left_signature.jaccard_estimate(right_signature)

    @property
    def edge_count(self) -> int:
        """Edges in the knowledge graph."""
        return self.graph.number_of_edges()
