"""Baseline join-discovery systems the paper compares against.

* :class:`Aurum` — syntactic MinHash profiles linked in a relationship
  graph (Fernandez et al., ICDE 2018);
* :class:`D3L` — five-evidence ensemble: column names, value extents,
  word embeddings, format patterns, numeric distributions (Bogatu et al.,
  ICDE 2020).

Both implement the same :class:`JoinDiscoverySystem` interface as WarpGate,
so the evaluation harness treats all three uniformly.
"""

from repro.baselines.aurum import Aurum
from repro.baselines.base import IndexReport, JoinDiscoverySystem
from repro.baselines.d3l import D3L

__all__ = ["Aurum", "D3L", "IndexReport", "JoinDiscoverySystem"]
