"""Compatibility alias: the system interface lives in :mod:`repro.core.system`.

Both the baselines and WarpGate implement the same contract; keeping the
definition in core avoids an import cycle while this module preserves the
``repro.baselines.base`` import path used throughout the tests and docs.
"""

from repro.core.system import IndexReport, JoinDiscoverySystem

__all__ = ["IndexReport", "JoinDiscoverySystem"]
